"""Quickstart: bootstrap EarthQube and run one of each query type.

Builds a small synthetic BigEarthNet archive, trains MiLaN, and exercises
the public API end to end:

    python examples/quickstart.py
"""

from repro import (
    ArchiveConfig,
    EarthQube,
    EarthQubeConfig,
    LabelOperator,
    MiLaNConfig,
    QuerySpec,
    TrainConfig,
)
from repro.geo import BoundingBox, Rectangle


def main() -> None:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=400, seed=1),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=15, triplets_per_epoch=1024, batch_size=64),
    )
    print("Bootstrapping EarthQube (archive + data tier + MiLaN) ...")
    system = EarthQube.bootstrap(config, verbose=True)
    print("\nSystem:", system.describe(), "\n")

    # 1. Attribute search: summer images with coniferous forest.
    spec = QuerySpec(
        seasons=("Summer",),
        labels=("Coniferous forest",),
        label_operator=LabelOperator.SOME,
        limit=5,
    )
    response = system.search(spec)
    print(f"Query [{spec.describe()}]: {response.total_matches} matches "
          f"(plan: {response.plan})")
    for doc in response:
        props = doc["properties"]
        print(f"  {doc['name']}: {props['country']}, labels={props['labels']}")

    # 2. Spatial search over Finland.
    finland = Rectangle(BoundingBox(west=20.6, south=59.8, east=31.5, north=70.1))
    spatial = system.search(QuerySpec(shape=finland, limit=3))
    print(f"\nSpatial query over Finland: {spatial.total_matches} matches")

    # 3. Content-based image retrieval from the first result.
    if response.names:
        query_name = response.names[0]
        similar = system.similar_images(query_name, k=5)
        query_labels = set(system.archive.get(query_name).labels)
        print(f"\nImages similar to {query_name} (labels: {sorted(query_labels)}):")
        for result in similar.results:
            neighbor_labels = set(system.archive.get(str(result.item_id)).labels)
            shared = query_labels & neighbor_labels
            print(f"  d={result.distance:3d}  {result.item_id}  "
                  f"shared labels: {sorted(shared) or '-'}")

    # 4. Label statistics, the result panel's bar chart.
    stats = system.statistics_for(response.documents)
    print("\nLabel statistics of the first search:")
    for label, count, color in stats.as_rows()[:5]:
        print(f"  {count:3d}  {color}  {label}")


if __name__ == "__main__":
    main()
