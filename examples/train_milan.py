"""Train MiLaN from the pieces (no EarthQube facade) and evaluate retrieval.

Shows the library's lower-level API: archive generation, feature extraction,
triplet training with the three losses, binarization, indexing, and a
train/test retrieval evaluation against the hashing baselines:

    python examples/train_milan.py
"""

import numpy as np

from repro import ArchiveConfig, FeatureExtractor, MiLaNConfig, MiLaNHasher, TrainConfig
from repro.baselines import ITQHashing, RandomHyperplaneLSH
from repro.bigearthnet import SyntheticArchive
from repro.core.similarity import shares_label_matrix
from repro.index import LinearScanIndex
from repro.metrics import mean_average_precision


def evaluate(name, codes_db, codes_q, labels_db, labels_q, num_bits):
    index = LinearScanIndex(num_bits)
    index.build(list(range(codes_db.shape[0])), codes_db)
    similar = shares_label_matrix(labels_q, labels_db)
    ranked = []
    for q in range(codes_q.shape[0]):
        results = index.search_knn(codes_q[q], 10)
        ranked.append(np.array([float(similar[q, r.item_id]) for r in results]))
    score = mean_average_precision(ranked, k=10)
    print(f"  {name:<22} mAP@10 = {score:.3f}")
    return score


def main() -> None:
    print("Generating archive ...")
    archive = SyntheticArchive.generate(ArchiveConfig(num_patches=700, seed=3))
    extractor = FeatureExtractor()
    features = extractor.extract_many(archive.patches)
    labels = archive.label_matrix()

    train_idx, test_idx = archive.split(0.85, seed=0)
    print(f"Split: {len(train_idx)} database/train, {len(test_idx)} queries")

    num_bits = 64
    print(f"\nTraining MiLaN ({num_bits} bits) ...")
    hasher = MiLaNHasher(
        MiLaNConfig(num_bits=num_bits, hidden_sizes=(256, 128)),
        TrainConfig(epochs=25, triplets_per_epoch=1536, batch_size=64,
                    log_every=5, seed=0),
    )
    hasher.fit(features[train_idx], labels[train_idx])
    print("Loss history (total):",
          [round(v, 3) for v in hasher.history.components["total"][::5]])

    print("\nRetrieval quality, test queries against the train database:")
    milan_db = hasher.hash_packed(features[train_idx])
    milan_q = hasher.hash_packed(features[test_idx])
    evaluate("MiLaN", milan_db, milan_q, labels[train_idx], labels[test_idx], num_bits)

    lsh = RandomHyperplaneLSH(num_bits, seed=0).fit(features[train_idx])
    evaluate("LSH (data-independent)", lsh.hash_packed(features[train_idx]),
             lsh.hash_packed(features[test_idx]),
             labels[train_idx], labels[test_idx], num_bits)

    itq = ITQHashing(num_bits, iterations=40, seed=0).fit(features[train_idx])
    evaluate("ITQ (shallow learned)", itq.hash_packed(features[train_idx]),
             itq.hash_packed(features[test_idx]),
             labels[train_idx], labels[test_idx], num_bits)

    # Diagnostics the three losses are responsible for.
    from repro.core.binarize import bit_entropy, quantization_error
    continuous = hasher.hash_continuous(features[train_idx])
    bits = hasher.hash_bits(features[train_idx])
    print(f"\nCode diagnostics: bit entropy = {bit_entropy(bits):.3f} "
          f"(1.0 = balanced), quantization error = "
          f"{quantization_error(continuous):.3f}")


if __name__ == "__main__":
    main()
