"""Demo scenario 3 — query-by-new-example + automatic labeling.

A visitor uploads a freshly acquired (unlabeled) Sentinel-2 image; EarthQube
hashes it on the fly, retrieves semantically similar archive images, and the
neighbours' labels vote for an automatic annotation (paper, Section 4):

    python examples/query_by_new_example.py
"""

from repro import ArchiveConfig, EarthQube, EarthQubeConfig, MiLaNConfig, TrainConfig
from repro.workloads import run_query_by_new_example


def main() -> None:
    system = EarthQube.bootstrap(EarthQubeConfig(
        archive=ArchiveConfig(num_patches=600, seed=55),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=15, triplets_per_epoch=1024, batch_size=64),
    ), verbose=True)

    for true_labels in (
        ("Coniferous forest", "Water bodies"),
        ("Sea and ocean", "Beaches, dunes, sands"),
        ("Non-irrigated arable land", "Pastures"),
    ):
        result = run_query_by_new_example(system, labels=true_labels, k=10)
        print(f"\nUploaded image with (hidden) labels: {list(true_labels)}")
        print(f"  neighbours found: {len(result.neighbor_names)}")
        print("  neighbour label votes:")
        for label, count, _ in result.statistics.as_rows()[:6]:
            marker = " <-- true label" if label in true_labels else ""
            print(f"    {count:3d}  {label}{marker}")
        print(f"  automatic annotation: {result.notes['predicted_labels']}")
        recovered = result.notes["recovered_labels"]
        print(f"  recovered {len(recovered)}/{len(true_labels)} true labels")


if __name__ == "__main__":
    main()
