"""Demo scenario 1 — label-based exploration (paper, Section 4).

A visitor searches for industrial areas adjacent to inland water bodies to
detect possible water pollution by industrial waste, then inspects the label
statistics view to discover co-occurring land-cover classes:

    python examples/label_exploration.py
"""

from repro import ArchiveConfig, EarthQube, EarthQubeConfig, MiLaNConfig, TrainConfig
from repro.workloads import run_label_exploration
from repro.workloads.scenarios import AGRICULTURE_NATURAL_LABEL


def main() -> None:
    system = EarthQube.bootstrap(EarthQubeConfig(
        archive=ArchiveConfig(num_patches=500, seed=21),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=10, triplets_per_epoch=768, batch_size=64),
    ), verbose=True)

    result = run_label_exploration(system)
    print(f"\nScenario: {result.scenario}")
    print(f"Selected labels ({result.notes['operator']}): "
          f"{result.notes['selected_labels']}")
    print(f"Matches across the 10 countries: {result.total_matches}")

    print("\nLabel statistics (the bar chart of Figure 2-4):")
    for label, count, color in result.statistics.as_rows()[:10]:
        bar = "#" * max(1, count * 40 // max(1, result.statistics.bars[0].count))
        print(f"  {count:4d} {color} {bar:<40} {label}")

    agriculture = result.notes["agriculture_cooccurrence"]
    print(f"\nThe paper's observation — '{AGRICULTURE_NATURAL_LABEL[:40]}...' "
          f"co-occurs in {agriculture} of the retrieved images"
          + (" (possible irrigation from polluted waters)." if agriculture else "."))

    # Per-country breakdown of the retrieval.
    by_country: dict[str, int] = {}
    for doc in system.documents_for(result.returned_names):
        country = doc["properties"]["country"]
        by_country[country] = by_country.get(country, 0) + 1
    print("\nReturned page by country:")
    for country, count in sorted(by_country.items(), key=lambda kv: -kv[1]):
        print(f"  {count:3d}  {country}")


if __name__ == "__main__":
    main()
