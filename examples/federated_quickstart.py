"""Federated quickstart: three independent archives behind one facade.

Bootstraps three EarthQube nodes (think: three AgoraEO member archives,
each operated independently — one even runs its own serving tier), joins
them into a :class:`~repro.federation.FederatedEarthQube`, and runs
federated search, CBIR, and statistics.  Then it breaks a node on purpose
to show partial results and the circuit breaker:

    python examples/federated_quickstart.py
"""

from repro import (
    ArchiveConfig,
    EarthQube,
    EarthQubeConfig,
    FederationConfig,
    MiLaNConfig,
    QuerySpec,
    ServingConfig,
    TrainConfig,
)


def bootstrap_node(seed: int, *, serving: bool = False) -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=150, seed=seed),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(96,)),
        train=TrainConfig(epochs=6, triplets_per_epoch=512, batch_size=64,
                          seed=seed),
        serving=ServingConfig(enabled=serving, num_shards=2),
    )
    return EarthQube.bootstrap(config, store_images=False)


def main() -> None:
    print("Bootstrapping three independent archive nodes ...")
    systems = {
        "vienna": bootstrap_node(1, serving=True),   # gateway-backed node
        "berlin": bootstrap_node(2),
        "milan": bootstrap_node(3),
    }
    federation = EarthQube.federate(
        systems, FederationConfig(node_timeout_s=10.0))

    # Membership + capabilities (what GET /federation/nodes serves).
    print("\nFederation members:")
    for node in federation.nodes():
        caps = node["capabilities"]
        print(f"  {node['name']}: {caps['corpus_size']} patches, "
              f"{caps['num_bits']}-bit codes, "
              f"serving={'on' if caps['serving_enabled'] else 'off'}, "
              f"breaker={node['health']['state']}")

    # 1. Federated attribute search: one query, every archive answers.
    spec = QuerySpec(seasons=("Summer",), limit=5)
    federated = federation.search(spec)
    print(f"\nSearch [{spec.describe()}]: "
          f"{federated.value.total_matches} matches across "
          f"{len(federated.meta.answered)} nodes "
          f"(answered: {federated.meta.answered})")
    for name in federated.value.names:
        print(f"  {name}")   # namespaced node/patch ids

    # 2. Federated CBIR: resolve the query at its owning node, scatter the
    #    code everywhere, merge deterministically.
    query = federated.value.names[0]
    similar = federation.similar_images(query, k=8)
    print(f"\nSimilar to {query}:")
    for result in similar.value.results[:8]:
        print(f"  {result.item_id}  (distance {result.distance})")

    # 3. Statistics summed across archives.
    stats = federation.statistics_for(federated.value.names)
    print(f"\nTop labels across the federation: {stats.value.dominant(3)}")

    # 4. Fault isolation: break one node and query again.
    print("\nBreaking node 'berlin' (simulated outage) ...")

    def outage(*args, **kwargs):
        raise ConnectionError("archive unreachable")

    federation.registry.get("berlin").query_code = outage
    degraded = federation.similar_images(query, k=8)
    meta = degraded.meta.as_dict()
    print(f"  answered={meta['answered']}, failed={meta['failed']}")
    print(f"  still returned {len(degraded.value.results)} merged results")

    # Repeated failures eject the node (circuit breaker opens).
    for _ in range(3):
        federation.similar_images(query, k=4)
    ejected = federation.similar_images(query, k=4)
    print(f"  after repeated failures: skipped={ejected.meta.as_dict()['skipped']}")

    print("\nPer-node latency series:")
    for node, summary in federation.metrics_snapshot()["per_node_latency"].items():
        print(f"  {node}: count={summary['count']}, p95={summary['p95_ms']}ms")

    federation.close()
    systems["vienna"].disable_serving()


if __name__ == "__main__":
    main()
