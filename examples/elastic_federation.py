"""Elastic federation: kill a node mid-flight and nobody notices.

Bootstraps one full-corpus EarthQube, replicates it R=2 across three
elastic federation members, then walks the whole churn lifecycle:

1. verify the federation answers byte-identically to the single system,
2. declare a member dead mid-run — queries keep answering, byte-identical,
   from the surviving replicas, while the survivors re-replicate its shard,
3. rejoin the node through snapshot shard handoff and verify again,
4. write through an outage: the missed replica catches up from the hint
   log and the anti-entropy scanner certifies all copies converged.

Run it with::

    python examples/elastic_federation.py
"""

from repro import (
    ArchiveConfig,
    EarthQube,
    EarthQubeConfig,
    FederatedEarthQube,
    FederationConfig,
    MiLaNConfig,
    QuerySpec,
    TrainConfig,
)


def bootstrap_oracle() -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=120, seed=7),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(96,)),
        train=TrainConfig(epochs=6, triplets_per_epoch=512, batch_size=64,
                          seed=7),
    )
    return EarthQube.bootstrap(config, store_images=False)


def check_identity(oracle: EarthQube, federation: FederatedEarthQube,
                   names: "list[str]") -> bool:
    for name in names:
        response = federation.similar_images(name, k=8)
        if response.value != oracle.similar_images(name, k=8):
            return False
        if not response.meta.coverage_complete:
            return False
    spec = QuerySpec(seasons=("summer",), limit=10)
    return federation.search(spec).value.documents \
        == oracle.search(spec).documents


def main() -> None:
    print("Bootstrapping the oracle system (120 patches) ...")
    oracle = bootstrap_oracle()
    names = oracle.archive.names[:10]

    print("Replicating into an R=2 federation of alpha/beta/gamma ...")
    federation = FederatedEarthQube.replicate(
        oracle, ["alpha", "beta", "gamma"],
        FederationConfig(elastic=True, replication_factor=2))

    print("\nPlacement after replication:")
    for entry in federation.nodes():
        placement = entry["placement"]
        print(f"  {entry['name']}: "
              f"{entry['capabilities']['corpus_size']} copies, "
              f"{placement['ownership_share']:.0%} of the ring")

    print(f"\nBaseline identity vs the oracle: "
          f"{'OK' if check_identity(oracle, federation, names) else 'FAIL'}")

    # ------------------------------------------------------------------ #
    # Kill a node. Reads fall back to the surviving replica of every
    # partition; the survivors immediately re-replicate its shard so the
    # federation is back at R=2 without the dead member.
    # ------------------------------------------------------------------ #
    print("\nDeclaring beta dead mid-flight ...")
    summary = federation.node_died("beta")
    print(f"  re-replicated {summary['patches']} patches "
          f"({summary['bytes']} bytes) from the survivors; "
          f"lost: {summary['lost'] or 'nothing'}")
    print(f"  identity with beta gone: "
          f"{'OK' if check_identity(oracle, federation, names) else 'FAIL'}")

    # ------------------------------------------------------------------ #
    # Rejoin. The returning node starts as an empty clone, receives its
    # shard via seq-stamped snapshot handoff, replays any writes that
    # raced the transfer, and only then flips into the placement ring.
    # ------------------------------------------------------------------ #
    print("\nRejoining beta through shard handoff ...")
    summary = federation.join_node("beta")
    print(f"  shipped {summary['patches']} patches "
          f"({summary['bytes']} bytes) in {summary['shipments']} shipment(s)")
    print(f"  identity after rejoin: "
          f"{'OK' if check_identity(oracle, federation, names) else 'FAIL'}")

    # ------------------------------------------------------------------ #
    # Write through an outage: deletes that miss a down replica are
    # parked in the hint log and replayed when the node heals; the
    # read-repair scanner then certifies every replica group converged.
    # ------------------------------------------------------------------ #
    print("\nWriting through a soft outage on gamma ...")
    gamma = federation.registry.get("gamma")
    real_delete = gamma.delete_image
    gamma.delete_image = lambda name: (_ for _ in ()).throw(
        RuntimeError("gamma is down"))
    victim = names[-1]
    summary = federation.delete_image(victim)
    oracle.delete_image(victim)
    print(f"  delete applied on {summary['nodes']}, "
          f"hinted for {summary['hinted'] or 'nobody'}")
    gamma.delete_image = real_delete
    replayed = federation.flush_hints("gamma")
    print(f"  gamma healed: {replayed} hinted write(s) replayed")
    scan = federation.repairer.scan()
    print(f"  anti-entropy scan: {scan['groups']} replica groups, "
          f"{scan['divergent_groups']} divergent")
    print(f"  identity after the repaired outage: "
          f"{'OK' if check_identity(oracle, federation, names[:-1]) else 'FAIL'}")

    federation.close()


if __name__ == "__main__":
    main()
