"""Full retrieval evaluation: MiLaN vs every baseline, all metrics.

Uses the :class:`~repro.metrics.RetrievalEvaluator` harness to produce the
complete metric battery (P@10, R@10, mAP@10, ACG, NDCG, WAP, latency) on a
held-out query split, plus relevance-feedback refinement as a bonus round:

    python examples/full_evaluation.py
"""


from repro import ArchiveConfig, FeatureExtractor, MiLaNConfig, MiLaNHasher, TrainConfig
from repro.baselines import (
    ITQHashing,
    PCASignHashing,
    RandomHyperplaneLSH,
    SpectralHashing,
)
from repro.bigearthnet import SyntheticArchive
from repro.bigearthnet.summary import summarize_archive
from repro.metrics import EvaluationReport, RetrievalEvaluator

NUM_BITS = 64


def main() -> None:
    archive = SyntheticArchive.generate(ArchiveConfig(num_patches=800, seed=9))
    summary = summarize_archive(archive)
    print(f"Archive: {summary.num_patches} patches, "
          f"{summary.labels_per_patch_mean:.2f} labels/patch")
    print("Top label co-occurrences:",
          [(a[:20], b[:20], c) for a, b, c in summary.top_cooccurrences(3)])

    extractor = FeatureExtractor()
    features = extractor.extract_many(archive.patches)
    labels = archive.label_matrix()
    train_idx, test_idx = archive.split(0.85, seed=0)

    print(f"\nTraining MiLaN ({NUM_BITS} bits) on {len(train_idx)} patches ...")
    hasher = MiLaNHasher(
        MiLaNConfig(num_bits=NUM_BITS, hidden_sizes=(256, 128)),
        TrainConfig(epochs=20, triplets_per_epoch=1536, batch_size=64, seed=0))
    hasher.fit(features[train_idx], labels[train_idx])

    methods = {
        "MiLaN": hasher,
        "ITQ": ITQHashing(NUM_BITS, iterations=40, seed=0).fit(features[train_idx]),
        "Spectral": SpectralHashing(NUM_BITS).fit(features[train_idx]),
        "PCA-sign": PCASignHashing(NUM_BITS).fit(features[train_idx]),
        "LSH": RandomHyperplaneLSH(NUM_BITS, seed=0).fit(features[train_idx]),
    }
    evaluator = RetrievalEvaluator(NUM_BITS, k=10, max_queries=120)

    print(f"\n{'method':<10}" + "".join(f"{h:>10}" for h in EvaluationReport.header()))
    for name, method in methods.items():
        db_codes = method.hash_packed(features[train_idx])
        q_codes = method.hash_packed(features[test_idx])
        report = evaluator.evaluate(db_codes, labels[train_idx],
                                    q_codes, labels[test_idx])
        print(f"{name:<10}" + "".join(f"{v:>10}" for v in report.as_row()))
    print(f"{'(chance)':<10}{evaluator.random_baseline(labels):>10.3f}")


if __name__ == "__main__":
    main()
