"""Relevance-feedback refinement: sharpening a CBIR query interactively.

The demo's interaction loop invites a natural extension: after a similarity
search, mark good/bad results and re-query.  This example runs two Rocchio
feedback rounds (relevant = results sharing the query's labels) and reports
precision@10 per round:

    python examples/relevance_feedback.py
"""

import numpy as np

from repro import ArchiveConfig, EarthQube, EarthQubeConfig, MiLaNConfig, TrainConfig
from repro.core.similarity import shares_label_matrix
from repro.earthqube import RelevanceFeedbackSession


def precision_of(system, similar_matrix, query_row, names) -> float:
    rows = [system.archive.index_of(n) for n in names]
    if not rows:
        return 0.0
    return float(np.mean([similar_matrix[query_row, r] for r in rows]))


def main() -> None:
    system = EarthQube.bootstrap(EarthQubeConfig(
        archive=ArchiveConfig(num_patches=500, seed=77),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=12, triplets_per_epoch=1024, batch_size=64),
    ), verbose=True)
    labels = system.archive.label_matrix()
    similar = shares_label_matrix(labels)

    improved = 0
    evaluated = 0
    for query_row in range(0, len(system.archive), 50):
        session = RelevanceFeedbackSession.from_archive_image(
            system.cbir, system.features, query_row)
        response = session.search(k=10)
        names = [n for n in response.names
                 if n != system.archive.names[query_row]]
        p0 = precision_of(system, similar, query_row, names)

        history = [p0]
        for _ in range(2):
            rows = [system.archive.index_of(n) for n in names]
            relevant = [n for n, r in zip(names, rows) if similar[query_row, r]]
            irrelevant = [n for n, r in zip(names, rows) if not similar[query_row, r]]
            if not relevant or not irrelevant:
                break  # already saturated
            response = session.refine(relevant, irrelevant, k=10)
            names = [n for n in response.names
                     if n != system.archive.names[query_row]]
            history.append(precision_of(system, similar, query_row, names))

        query_name = system.archive.names[query_row]
        print(f"{query_name}: precision@10 per round: "
              + " -> ".join(f"{p:.2f}" for p in history))
        if len(history) > 1:
            evaluated += 1
            improved += history[-1] >= history[0]

    if evaluated:
        print(f"\nFeedback helped or held precision on {improved}/{evaluated} "
              f"queries that had mixed first-round results.")


if __name__ == "__main__":
    main()
