"""Demo scenario 2 — spatial exploration + query-by-existing-example.

A visitor draws a rectangle over the southwestern tip of Portugal, renders
the matching images, picks one, and retrieves similar images across all 10
countries (paper, Section 4):

    python examples/spatial_query_by_example.py
"""

from repro import ArchiveConfig, EarthQube, EarthQubeConfig, MiLaNConfig, TrainConfig
from repro.workloads import run_spatial_query_by_example
from repro.workloads.scenarios import SW_PORTUGAL


def main() -> None:
    system = EarthQube.bootstrap(EarthQubeConfig(
        archive=ArchiveConfig(num_patches=600, seed=33),
        milan=MiLaNConfig(num_bits=64, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=12, triplets_per_epoch=1024, batch_size=64),
    ), verbose=True)

    box = SW_PORTUGAL.box
    print(f"\nGeospatial query: rectangle "
          f"({box.west}, {box.south}) .. ({box.east}, {box.north})")
    result = run_spatial_query_by_example(system, k=10)

    print(f"Images in SW Portugal: {result.total_matches} "
          f"({result.notes['rendered']} rendered on the map)")
    query_doc = system.documents_for([result.query_name])[0]
    print(f"\nSelected query image: {result.query_name}")
    print(f"  labels: {query_doc['properties']['labels']}")

    print(f"\nTop similar images (Hamming radius used: "
          f"{result.notes['radius_used']}):")
    query_labels = set(query_doc["properties"]["labels"])
    for doc in system.documents_for(result.neighbor_names):
        props = doc["properties"]
        shared = query_labels & set(props["labels"])
        print(f"  {doc['name']}  {props['country']:<12} "
              f"shared: {sorted(shared) or '-'}")

    print(f"\nNeighbor countries: {result.notes['neighbor_countries']}")
    print("(CBIR reaches beyond the spatial query: similar content is found "
          "wherever it occurs.)")

    # Map view: cluster the spatial results at a country-level zoom.
    response = system.search(__import__("repro").QuerySpec(shape=SW_PORTUGAL))
    clusters = system.markers_for(response, zoom=6)
    print(f"\nMap view at zoom 6: {len(clusters)} marker cluster group(s)")
    for cluster in clusters[:5]:
        print(f"  ({cluster.lon:.2f}, {cluster.lat:.2f})  x{cluster.count}")


if __name__ == "__main__":
    main()
