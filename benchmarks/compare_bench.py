"""Diff freshly generated ``BENCH_*.json`` reports against committed baselines.

The repo commits one baseline JSON per benchmark (``BENCH_*.json`` at the
repo root); CI regenerates the same reports in ``--smoke`` mode and this
script compares the two, so a change that silently craters throughput
fails the pipeline instead of landing.

Two kinds of comparison:

* **throughput** — every numeric leaf whose key looks like a rate
  (``qps``, ``*_per_second``) or a win (``speedup``): fresh must not fall
  more than ``--threshold`` percent (default 25) below the baseline.
  Throughput is machine- and corpus-size-dependent, so these leaves are
  only compared when both reports ran the *same* benchmark configuration
  (the ``config`` sections match); otherwise they are reported as skipped.
* **invariants** — boolean leaves named ``identical*`` or
  ``*_correct`` must never flip from true to false, whatever the
  configuration: byte-identity and ordering checks hold at every scale.

Exit code 0 = no regressions (skips allowed), 1 = at least one regression.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py --smoke \
        --out fresh/BENCH_observability.json
    python benchmarks/compare_bench.py --fresh fresh --baseline . --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Numeric leaves treated as throughput (higher is better).
_RATE_KEYS = ("qps",)
_RATE_SUFFIXES = ("_per_second", "speedup")

#: Boolean leaves treated as must-not-flip invariants.
_INVARIANT_PREFIXES = ("identical",)
_INVARIANT_SUFFIXES = ("_correct", "identical_to_oracle",
                       "identical_to_rebuild", "identical_results")


def _is_rate_key(key: str) -> bool:
    return key in _RATE_KEYS or key.endswith(_RATE_SUFFIXES)


def _is_invariant_key(key: str) -> bool:
    return key.startswith(_INVARIANT_PREFIXES) or \
        key.endswith(_INVARIANT_SUFFIXES)


def _leaves(node, path: str = "") -> "dict[str, object]":
    """Flatten a JSON tree into ``{dotted.path: leaf}``."""
    out: "dict[str, object]" = {}
    if isinstance(node, dict):
        for key, value in node.items():
            out.update(_leaves(value, f"{path}.{key}" if path else str(key)))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            out.update(_leaves(value, f"{path}[{i}]"))
    else:
        out[path] = node
    return out


def compare_report(name: str, baseline: dict, fresh: dict, *,
                   threshold_pct: float) -> "tuple[list, list, list]":
    """Compare one benchmark pair; returns (regressions, ok, skipped)."""
    regressions, ok, skipped = [], [], []
    comparable = baseline.get("config") == fresh.get("config")
    baseline_leaves = _leaves(baseline)
    fresh_leaves = _leaves(fresh)
    for path, base_value in sorted(baseline_leaves.items()):
        leaf_key = path.rsplit(".", 1)[-1]
        fresh_value = fresh_leaves.get(path)
        if _is_invariant_key(leaf_key) and base_value is True:
            if fresh_value is False:
                regressions.append(
                    f"{name}: invariant {path} flipped true -> false")
            else:
                ok.append(f"{name}: invariant {path} holds")
            continue
        if not _is_rate_key(leaf_key):
            continue
        if not isinstance(base_value, (int, float)) or \
                not isinstance(fresh_value, (int, float)):
            skipped.append(f"{name}: {path} missing from fresh report")
            continue
        if not comparable:
            skipped.append(
                f"{name}: {path} (configs differ: baseline vs smoke run)")
            continue
        if base_value <= 0:
            continue
        drop_pct = 100.0 * (base_value - fresh_value) / base_value
        if drop_pct > threshold_pct:
            regressions.append(
                f"{name}: {path} regressed {drop_pct:.1f}% "
                f"({base_value} -> {fresh_value}, "
                f"threshold {threshold_pct:g}%)")
        else:
            ok.append(f"{name}: {path} {base_value} -> {fresh_value} "
                      f"({-drop_pct:+.1f}%)")
    return regressions, ok, skipped


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json reports against baselines")
    parser.add_argument("--baseline", default=".",
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--fresh", required=True,
                        help="directory holding freshly generated reports")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="maximum tolerated qps/speedup drop, percent "
                             "(default 25)")
    parser.add_argument("--smoke", action="store_true",
                        help="fresh reports come from --smoke runs: "
                             "throughput leaves with mismatched configs are "
                             "skipped rather than failed")
    parser.add_argument("--require", nargs="*", default=None,
                        help="benchmark names that must be present fresh "
                             "(default: every committed baseline)")
    args = parser.parse_args(argv)

    baseline_dir, fresh_dir = Path(args.baseline), Path(args.fresh)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"compare_bench: no BENCH_*.json baselines in {baseline_dir}",
              file=sys.stderr)
        return 1

    all_regressions, compared = [], 0
    for baseline_path in baselines:
        name = baseline_path.stem
        fresh_path = fresh_dir / baseline_path.name
        if not fresh_path.exists():
            if args.require is not None and name not in args.require:
                print(f"compare_bench: {name}: no fresh report, skipped")
                continue
            if args.require is None:
                print(f"compare_bench: {name}: no fresh report, skipped")
                continue
            all_regressions.append(f"{name}: required fresh report missing")
            continue
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
        if not args.smoke and baseline.get("config") != fresh.get("config"):
            print(f"compare_bench: {name}: configs differ outside --smoke "
                  f"mode; throughput comparison skipped")
        regressions, ok, skipped = compare_report(
            name, baseline, fresh, threshold_pct=args.threshold)
        compared += 1
        for line in ok:
            print(f"compare_bench: ok: {line}")
        for line in skipped:
            print(f"compare_bench: skip: {line}")
        for line in regressions:
            print(f"compare_bench: REGRESSION: {line}", file=sys.stderr)
        all_regressions.extend(regressions)

    if args.require:
        missing = [name for name in args.require
                   if not (fresh_dir / f"{name}.json").exists()]
        for name in missing:
            if f"{name}: required fresh report missing" not in all_regressions:
                all_regressions.append(
                    f"{name}: required fresh report missing")

    print(f"compare_bench: {compared} report(s) compared, "
          f"{len(all_regressions)} regression(s)")
    return 1 if all_regressions else 0


if __name__ == "__main__":
    raise SystemExit(main())
