"""Mutable-corpus churn: tombstoned deletion vs full index rebuild.

The AgoraEO archive is a *living* one — new acquisitions flow in, revoked
or superseded patches flow out.  This benchmark measures what the
tombstone lifecycle buys on that workload, per index backend (packed
linear scan, Multi-Index Hashing, sharded scatter-gather):

* **tombstone** — the lifecycle path: ``remove()`` marks the row dead
  (O(1)) and the next query masks it out; one churn event costs a
  tombstone plus one query on the dirty index;
* **rebuild** — the only correct alternative without tombstones: rebuild
  the whole index on the surviving corpus after every deletion, then
  query.

The sweep interleaves deletes and adds until the index reaches 10% and
then 50% dead rows, reporting per-event latency for both paths, query
latency on the tombstoned index before/after ``compact()``, and the cost
of compaction itself.  Every measured ranking is checked **byte-identical**
against an index rebuilt from scratch on the surviving corpus before any
timing is reported; a mismatch aborts the run.

The headline (and the CI smoke assertion) is the 10% point: the default
lifecycle compacts at 25% dead, so 10% is the steady-state tombstone
regime, while 50% shows the degraded extreme that ``compact()`` repairs
(its query latency converges back to the rebuilt index's).

The JSON report lands in ``--out`` (default ``BENCH_mutability.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_mutability.py
    PYTHONPATH=src python benchmarks/bench_mutability.py --smoke
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.index import LinearScanIndex, MultiIndexHashing
from repro.serving.sharding import CodeQuery, ShardedHammingIndex

NUM_BITS = 128
WORDS = NUM_BITS // 64
K = 10
NUM_QUERIES = 16
QUERY_REPEATS = 5
TIMED_EVENT_SAMPLES = 30
REBUILD_SAMPLES = 5
DEAD_FRACTIONS = [0.1, 0.5]
SIZES = [10_000, 25_000]
SMOKE_SIZES = [12_000]


def clustered_codes(n: int, rng: np.random.Generator) -> np.ndarray:
    """Cluster-structured packed codes (what a trained hasher emits)."""
    num_centers = max(8, n // 200)
    centers = rng.integers(0, np.iinfo(np.uint64).max,
                           size=(num_centers, WORDS), dtype=np.uint64)
    assignment = rng.integers(0, num_centers, size=n)
    codes = centers[assignment].copy()
    flips = rng.integers(0, NUM_BITS, size=(n, 6))
    for column in range(flips.shape[1]):
        word, bit = np.divmod(flips[:, column], 64)
        codes[np.arange(n), word] ^= np.uint64(1) << bit.astype(np.uint64)
    return codes


def make_index(backend: str):
    if backend == "linear":
        return LinearScanIndex(NUM_BITS)
    if backend == "mih":
        return MultiIndexHashing(NUM_BITS, 4)
    return ShardedHammingIndex(NUM_BITS, 4)


def run_knn(backend: str, index, queries: np.ndarray) -> list:
    if backend == "sharded":
        batches = index.search_batch(
            [CodeQuery(code=query, k=K) for query in queries])
    elif backend == "mih":
        batches = index.search_knn_batch(queries, K)
    else:
        batches = index.search_knn_batch(queries, K)
    return [[(r.item_id, r.distance) for r in results] for results in batches]


def time_queries(backend: str, index, queries: np.ndarray) -> float:
    """Mean ms per batch of NUM_QUERIES kNN queries."""
    run_knn(backend, index, queries)  # warm-up (fold pending, prime pools)
    start = time.perf_counter()
    for _ in range(QUERY_REPEATS):
        run_knn(backend, index, queries)
    return (time.perf_counter() - start) / QUERY_REPEATS * 1e3


def build_on(backend: str, ids, codes):
    index = make_index(backend)
    index.build(ids, codes)
    return index


def pick_victim(state: dict, rng: np.random.Generator) -> str:
    """O(1) random live item (swap-remove on the unordered pick list)."""
    pool = state["pool"]
    position = int(rng.integers(len(pool)))
    victim = pool[position]
    pool[position] = pool[-1]
    pool.pop()
    return victim


def surviving_corpus(state: dict) -> "tuple[list, np.ndarray]":
    """Ids + codes of the live corpus in insertion order.

    ``state['codes']`` is an insertion-ordered dict (delete + re-add moves
    an id to the end), which is exactly the surviving row order of the
    tombstoned index — the order a from-scratch rebuild must use.
    """
    ids = list(state["codes"].keys())
    return ids, np.stack(list(state["codes"].values()))


def churn_to_fraction(backend: str, index, state: dict, target: float,
                      rng: np.random.Generator) -> dict:
    """Interleave delete/add events until ``index.dead_fraction >= target``.

    Each event deletes one live item and adds one fresh code (live corpus
    size stays constant, dead rows accumulate).  A sampled subset of
    events is timed end to end as *delete-and-query* — make one deletion
    visible, answer one query — for both paths:

    * tombstone: ``remove()`` + ``add()`` + one kNN on the dirty index;
    * rebuild: gather the surviving corpus, rebuild from scratch, one kNN
      (what correctness would cost without the tombstone lifecycle).
    """
    live = len(state["pool"])
    expected_events = max(1, int(live * target / (1.0 - target))
                          - index.dead_count)
    sample_every = max(1, expected_events // TIMED_EVENT_SAMPLES)
    tombstone_samples: list[float] = []
    rebuild_samples: list[float] = []
    events = 0
    while index.dead_fraction < target:
        victim = pick_victim(state, rng)
        fresh_name = f"fresh{state['serial']}"
        state["serial"] += 1
        fresh_code = clustered_codes(1, rng)[0]

        if events % sample_every == 0:
            start = time.perf_counter()
            index.remove(victim)
            index.add(fresh_name, fresh_code)
            run_knn(backend, index, state["queries"][:1])
            tombstone_samples.append(time.perf_counter() - start)
        else:
            index.remove(victim)
            index.add(fresh_name, fresh_code)
        del state["codes"][victim]
        state["codes"][fresh_name] = fresh_code
        state["pool"].append(fresh_name)

        # The rebuild baseline is sampled sparsely — rebuilding after
        # EVERY delete at full size would dominate the benchmark itself.
        if (events % (sample_every * 5) == 0
                and len(rebuild_samples) < REBUILD_SAMPLES):
            start = time.perf_counter()
            ids, codes = surviving_corpus(state)
            rebuilt = build_on(backend, ids, codes)
            run_knn(backend, rebuilt, state["queries"][:1])
            rebuild_samples.append(time.perf_counter() - start)
            if backend == "sharded":
                rebuilt.close()
        events += 1
    tombstone_ms = float(np.mean(tombstone_samples)) * 1e3
    rebuild_ms = float(np.mean(rebuild_samples)) * 1e3
    return {
        "events": events,
        "tombstone_event_ms": tombstone_ms,
        "rebuild_event_ms": rebuild_ms,
        "speedup_vs_rebuild": rebuild_ms / tombstone_ms,
    }


def verify_identical(backend: str, index, state: dict) -> None:
    """Tombstoned results must equal a from-scratch rebuild, byte for byte."""
    ids, codes = surviving_corpus(state)
    oracle = build_on(backend, ids, codes)
    got = run_knn(backend, index, state["queries"])
    want = run_knn(backend, oracle, state["queries"])
    if backend == "sharded":
        oracle.close()
    if got != want:
        raise SystemExit(
            f"ORACLE MISMATCH: {backend} tombstoned results differ from "
            f"a from-scratch rebuild on the surviving corpus")


def bench_backend(backend: str, n: int, rng: np.random.Generator) -> dict:
    codes = clustered_codes(n, rng)
    ids = [f"p{i}" for i in range(n)]
    queries = clustered_codes(NUM_QUERIES, rng)
    index = build_on(backend, ids, codes)
    state = {
        "pool": list(ids),
        "codes": {name: codes[i] for i, name in enumerate(ids)},
        "queries": queries,
        "serial": 0,
    }
    row = {"fractions": {}}
    for fraction in DEAD_FRACTIONS:
        churn = churn_to_fraction(backend, index, state, fraction, rng)
        verify_identical(backend, index, state)
        tombstoned_ms = time_queries(backend, index, queries)

        start = time.perf_counter()
        ids_now, codes_now = surviving_corpus(state)
        rebuilt = build_on(backend, ids_now, codes_now)
        rebuild_ms = (time.perf_counter() - start) * 1e3
        rebuilt_ms = time_queries(backend, rebuilt, queries)
        if backend == "sharded":
            rebuilt.close()

        start = time.perf_counter()
        index.compact()
        compact_ms = (time.perf_counter() - start) * 1e3
        verify_identical(backend, index, state)
        compacted_ms = time_queries(backend, index, queries)

        row["fractions"][str(fraction)] = {
            "churn_events": churn["events"],
            "identical_to_rebuild": True,  # verify_identical aborts otherwise
            "delete_and_query": {
                "tombstone_ms": round(churn["tombstone_event_ms"], 3),
                "rebuild_ms": round(churn["rebuild_event_ms"], 3),
                "speedup": round(churn["speedup_vs_rebuild"], 2),
            },
            "query_batch_ms": {
                "tombstoned": round(tombstoned_ms, 3),
                "compacted": round(compacted_ms, 3),
                "rebuilt": round(rebuilt_ms, 3),
            },
            "compact_ms": round(compact_ms, 3),
            "full_rebuild_ms": round(rebuild_ms, 3),
        }
    if backend == "sharded":
        index.close()
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus for CI")
    parser.add_argument("--out", default="BENCH_mutability.json")
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else SIZES
    rng = np.random.default_rng(29)

    report = {"config": {"num_bits": NUM_BITS, "k": K,
                         "num_queries": NUM_QUERIES,
                         "dead_fractions": DEAD_FRACTIONS,
                         "sizes": sizes, "smoke": args.smoke},
              "sizes": {}}
    worst_steady = float("inf")
    worst_overall = float("inf")
    for n in sizes:
        row = {}
        for backend in ("linear", "mih", "sharded"):
            print(f"[bench_mutability] n={n} backend={backend} ...",
                  flush=True)
            row[backend] = bench_backend(backend, n, rng)
            for fraction, cell in row[backend]["fractions"].items():
                speedup = cell["delete_and_query"]["speedup"]
                worst_overall = min(worst_overall, speedup)
                if float(fraction) <= 0.25:  # the pre-compaction regime
                    worst_steady = min(worst_steady, speedup)
        report["sizes"][str(n)] = row
    report["headline"] = {
        "min_tombstone_vs_rebuild_speedup_steady_state": round(worst_steady, 2),
        "min_tombstone_vs_rebuild_speedup_overall": round(worst_overall, 2),
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report["headline"], indent=2))
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
