"""E12: the label -> ASCII-char mapping of the data tier.

"To improve the performance of label-based filtering, we map each
(potentially multi-word) CLC label to an ASCII character, thereby avoiding
the manipulation of long strings."  We evaluate all three operators over the
archive's label sets through both paths (full strings vs. single chars) and
through the store (char-equality index vs. $all+$size fallback for
*Exactly*).  Expected shape: the char path wins on every operator, most
visibly on *Exactly*.
"""

import pytest

from repro.bigearthnet import SyntheticArchive
from repro.bigearthnet.labels import LabelCharCodec
from repro.config import ArchiveConfig
from repro.earthqube import LabelFilter, LabelOperator, QuerySpec
from repro.earthqube.ingest import metadata_document
from repro.earthqube.search import SearchService
from repro.store.database import Database

N_DOCS = 20_000


@pytest.fixture(scope="module")
def label_sets():
    archive = SyntheticArchive.generate(
        ArchiveConfig(num_patches=N_DOCS, seed=2), with_pixels=False)
    codec = LabelCharCodec()
    names = [list(p.labels) for p in archive]
    chars = [codec.encode(p.labels) for p in archive]
    selection = list(archive[0].labels)
    return names, chars, selection, codec


@pytest.fixture(scope="module")
def search_setup():
    archive = SyntheticArchive.generate(
        ArchiveConfig(num_patches=5_000, seed=3), with_pixels=False)
    codec = LabelCharCodec()
    db = Database.earthqube_schema()
    metadata = db["metadata"]
    for patch in archive:
        metadata.insert_one(metadata_document(patch, codec))
    service = SearchService(db, codec)
    return service, tuple(archive[0].labels)


@pytest.mark.parametrize("operator", list(LabelOperator))
def test_filter_over_label_strings(benchmark, label_sets, operator):
    """Naive path: set algebra over full multi-word label strings."""
    names, _, selection, codec = label_sets
    label_filter = LabelFilter(selection, operator, codec)
    benchmark.group = f"E12 {operator.value} over {N_DOCS} docs"
    count = benchmark(lambda: sum(label_filter.matches_names(n) for n in names))
    assert count >= 0


@pytest.mark.parametrize("operator", list(LabelOperator))
def test_filter_over_char_codec(benchmark, label_sets, operator):
    """Paper's path: single-character set algebra."""
    names, chars, selection, codec = label_sets
    label_filter = LabelFilter(selection, operator, codec)
    benchmark.group = f"E12 {operator.value} over {N_DOCS} docs"
    count = benchmark(lambda: sum(label_filter.matches_chars(c) for c in chars))
    # Both paths agree (also asserted pairwise in the unit tests).
    expected = sum(label_filter.matches_names(n) for n in names)
    assert count == expected


def test_exactly_through_store_with_codec(benchmark, search_setup):
    """Store path: *Exactly* as one indexed char-string equality."""
    service, selection = search_setup
    spec = QuerySpec(labels=selection, label_operator=LabelOperator.EXACTLY)
    benchmark.group = "E12 Exactly through the store"
    response = benchmark(lambda: service.search(spec, use_codec=True))
    assert response.plan == "hash_index:properties.label_chars"


def test_exactly_through_store_without_codec(benchmark, search_setup):
    """Store fallback: *Exactly* as $all + $size over label arrays."""
    service, selection = search_setup
    spec = QuerySpec(labels=selection, label_operator=LabelOperator.EXACTLY)
    benchmark.group = "E12 Exactly through the store"
    with_codec = service.search(spec, use_codec=True)
    response = benchmark(lambda: service.search(spec, use_codec=False))
    assert sorted(response.names) == sorted(with_codec.names)
