"""E1 (Figure 1): content-based image retrieval in EarthQube.

The paper's Figure 1 shows a beach query returning visually similar beaches.
We reproduce the behaviour: a query image's top-k neighbours share its CLC
labels far more often than chance, and the query itself is answered at
interactive latency.  Run with ``-s`` to see the retrieval table.
"""

import numpy as np

from repro.core.similarity import shares_label_matrix

from .conftest import print_table


def test_fig1_query_latency(benchmark, bench_system):
    """Latency of one query-by-existing-example (k=10) through the system."""
    name = bench_system.archive.names[0]
    result = benchmark(lambda: bench_system.similar_images(name, k=10))
    assert len(result.names) > 0


def test_fig1_retrieval_is_semantic(benchmark, bench_system):
    """Precision@10 of CBIR vs. the random-pair baseline, over 50 queries."""
    system = bench_system
    labels = system.archive.label_matrix()
    similar = shares_label_matrix(labels)
    query_rows = list(range(0, len(system.archive), len(system.archive) // 50))

    def run_queries():
        precisions = []
        for q in query_rows:
            result = system.similar_images(system.archive.names[q], k=10)
            rows = [system.archive.index_of(n) for n in result.names]
            if rows:
                precisions.append(float(np.mean([similar[q, r] for r in rows])))
        return float(np.mean(precisions))

    precision = benchmark.pedantic(run_queries, rounds=1, iterations=1)
    random_baseline = float(similar.mean())

    # The Figure-1 style table for one concrete query.
    q = query_rows[0]
    query_name = system.archive.names[q]
    query_labels = set(system.archive[q].labels)
    rows = []
    for r in system.similar_images(query_name, k=5).results:
        neighbor = system.archive.get(str(r.item_id))
        rows.append([r.item_id, r.distance,
                     ", ".join(sorted(query_labels & set(neighbor.labels))) or "-"])
    print_table(f"Figure 1 reproduction: neighbours of {query_name} "
                f"(labels: {sorted(query_labels)})",
                ["neighbour", "hamming", "shared labels"], rows)
    print(f"precision@10 over {len(query_rows)} queries: {precision:.3f} "
          f"(random-pair baseline: {random_baseline:.3f})")

    assert precision > random_baseline + 0.15, \
        "CBIR must clearly beat random co-labeling"
