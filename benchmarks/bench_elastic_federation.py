"""Elastic-federation benchmark: replication, churn, and byte-identity.

Standalone script (not a pytest-benchmark suite): it bootstraps one
full-corpus oracle EarthQube, replicates it into an R-way elastic
federation (``FederatedEarthQube.replicate``), and measures the
robustness machinery end to end:

1. **identity check** — the replicated federation must answer ``search``,
   ``similar_images``, ``similar_images_batch``, and ``statistics_for``
   byte-identically to the oracle (the script *fails* if it does not),
2. **kill sweep** — each member in turn is declared dead (``node_died``)
   mid-sweep; every query issued during the outage must stay
   byte-identical and coverage-complete (``availability`` is the fraction
   that did — the acceptance bar is 1.0), and the report records how many
   patches/bytes the survivors re-replicated,
3. **rejoin sweep** — the dead node rejoins through snapshot shard
   handoff (``join_node``); queries after the flip must again match the
   oracle, and the handoff volume/latency is recorded,
4. **replication overhead** — read throughput of the same corpus at R=1
   vs R=2 (one-of-R scatter should not pay for the extra copies).

The JSON report is written to ``--out`` (default stdout).

Usage::

    PYTHONPATH=src python benchmarks/bench_elastic_federation.py
    PYTHONPATH=src python benchmarks/bench_elastic_federation.py --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    FederationConfig,
    IndexConfig,
    MiLaNConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube, QuerySpec
from repro.federation import FederatedEarthQube

NODE_NAMES = ["alpha", "beta", "gamma"]


def bootstrap_oracle(*, patches: int, epochs: int) -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=patches, seed=7),
        milan=MiLaNConfig(num_bits=32, hidden_sizes=(48,)),
        train=TrainConfig(epochs=epochs, triplets_per_epoch=256,
                          batch_size=64, seed=7),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
    )
    return EarthQube.bootstrap(config, store_images=False)


def replicate(oracle: EarthQube, *, replication: int) -> FederatedEarthQube:
    return FederatedEarthQube.replicate(
        oracle, list(NODE_NAMES),
        FederationConfig(elastic=True, replication_factor=replication))


def sweep_identical(oracle: EarthQube, federation: FederatedEarthQube,
                    names: "list[str]", *, k: int = 10) -> "tuple[bool, int]":
    """Run the full query sweep; returns (all byte-identical, query count).

    Coverage losses count as identity failures too: the acceptance bar is
    "every query answers from R-1 surviving replicas as if nothing died".
    """
    checks = 0
    for name in names:
        response = federation.similar_images(name, k=k)
        if response.value != oracle.similar_images(name, k=k) or \
                not response.meta.coverage_complete:
            return False, checks
        checks += 1
    batch = federation.similar_images_batch(names, k=k)
    if batch.value != oracle.similar_images_batch(names, k=k):
        return False, checks
    checks += 1
    spec = QuerySpec(limit=10, skip=2)
    merged = federation.search(spec).value
    direct = oracle.search(spec)
    if merged.documents != direct.documents or \
            merged.total_matches != direct.total_matches:
        return False, checks
    checks += 1
    stats = federation.statistics_for(names)
    if stats.value != oracle.statistics_for(names):
        return False, checks
    checks += 1
    return True, checks


def time_reads(federation: FederatedEarthQube, names: "list[str]",
               *, k: int = 10) -> dict:
    started = time.perf_counter()
    for name in names:
        federation.similar_images(name, k=k)
    elapsed = time.perf_counter() - started
    return {"queries": len(names),
            "single_mean_ms": round(elapsed / len(names) * 1e3, 3),
            "single_qps": round(len(names) / elapsed, 1)}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--replication", type=int, default=2,
                        help="replication factor for the churn sweeps")
    args = parser.parse_args(argv)

    patches = 48 if args.smoke else 150
    epochs = 2 if args.smoke else 6
    queries = 12 if args.smoke else 32

    print(f"[bench] bootstrapping the oracle ({patches} patches) ...",
          file=sys.stderr)
    oracle = bootstrap_oracle(patches=patches, epochs=epochs)
    query_names = oracle.archive.names[:queries]

    report: dict = {
        "benchmark": "elastic_federation",
        "config": {
            "smoke": args.smoke,
            "patches": patches,
            "nodes": len(NODE_NAMES),
            "replication_factor": args.replication,
            "queries": queries,
        },
    }

    print(f"[bench] replicating into {len(NODE_NAMES)} nodes "
          f"(R={args.replication}) ...", file=sys.stderr)
    started = time.perf_counter()
    federation = replicate(oracle, replication=args.replication)
    report["replicate_seconds"] = round(time.perf_counter() - started, 3)

    try:
        print("[bench] baseline identity sweep ...", file=sys.stderr)
        identical, checks = sweep_identical(oracle, federation, query_names)
        report["identical_baseline"] = identical
        report["baseline_checks"] = checks
        if not identical:
            print("BASELINE IDENTITY FAILED", file=sys.stderr)
            return 1

        kill_sweep: dict = {}
        outage_queries = outage_identical = 0
        for victim in NODE_NAMES:
            print(f"[bench] killing {victim} mid-sweep ...", file=sys.stderr)
            started = time.perf_counter()
            died = federation.node_died(victim)
            rereplicate_ms = round((time.perf_counter() - started) * 1e3, 3)

            identical, checks = sweep_identical(oracle, federation,
                                                query_names)
            outage_queries += checks + (0 if identical else 1)
            outage_identical += checks

            print(f"[bench] rejoining {victim} ...", file=sys.stderr)
            started = time.perf_counter()
            joined = federation.join_node(victim)
            join_ms = round((time.perf_counter() - started) * 1e3, 3)
            rejoined_identical, _ = sweep_identical(oracle, federation,
                                                    query_names)
            kill_sweep[victim] = {
                "identical_during_outage": identical,
                "identical_after_rejoin": rejoined_identical,
                "lost_patches": len(died["lost"]),
                "rereplicated_patches": died["patches"],
                "rereplicated_bytes": died["bytes"],
                "rereplicate_ms": rereplicate_ms,
                "join_shipped_patches": joined["patches"],
                "join_shipped_bytes": joined["bytes"],
                "join_ms": join_ms,
            }
        report["kill_sweep"] = kill_sweep
        availability = (outage_identical / outage_queries
                        if outage_queries else 0.0)
        report["availability_during_outages"] = round(availability, 4)

        print("[bench] replicated-read throughput (R=2) ...", file=sys.stderr)
        report["reads_replicated"] = time_reads(federation, query_names)
    finally:
        federation.close()

    print("[bench] replicated-read throughput (R=1) ...", file=sys.stderr)
    single = replicate(oracle, replication=1)
    try:
        identical, _ = sweep_identical(oracle, single, query_names)
        report["identical_r1"] = identical
        report["reads_r1"] = time_reads(single, query_names)
    finally:
        single.close()

    all_identical = (
        report["identical_baseline"] and report["identical_r1"]
        and all(entry["identical_during_outage"]
                and entry["identical_after_rejoin"]
                for entry in kill_sweep.values()))
    report["headline"] = {
        "identical_everywhere": all_identical,
        "availability_during_outages": report["availability_during_outages"],
        "join_ms_mean": round(
            sum(e["join_ms"] for e in kill_sweep.values()) / len(kill_sweep),
            3),
    }

    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"[bench] report written to {args.out}", file=sys.stderr)
    else:
        print(payload)
    if not all_identical or availability < 1.0:
        print("ELASTIC IDENTITY / AVAILABILITY CHECK FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
