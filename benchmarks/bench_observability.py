"""Observability-tier benchmark: tracing overhead at several sample rates.

Standalone script (not a pytest-benchmark suite): it stands up an
instrumented MIH index over a synthetic packed-code corpus and drives the
same kNN query stream through ``Observability.request`` at different
sampling configurations:

1. **no_obs** — the bare query loop with no request wrapper at all (the
   pre-observability baseline),
2. **rate sweep** — ``ObsConfig(sample_rate=r)`` for each ``r`` in
   ``--rates`` (default 0.0 / 0.1 / 1.0) with cost counters *off* (the
   tracing-only configuration), so the sweep covers the sampled-out fast
   path, the default light sampling, and full tracing,
3. **cost-counter sweep** — the same rates with ``cost_tracking`` and the
   workload store *on*, reporting the qps overhead the typed operator
   counters add over tracing alone at each rate.

Every configuration runs the *identical* stream best-of ``--trials`` (the
minimum wall time is the least noisy estimator for a fixed workload), and
result checksums are compared across configurations — tracing and cost
accounting are observe-only, so any divergence aborts the run.

The headline numbers are ``overhead_pct_at_default_sampling`` (the qps
cost of the default 10% sampling relative to the sampled-out rate-0.0
loop) and ``overhead_pct_cost_counters_at_full_tracing`` (what the
counters add over tracing alone at 100% sampling).  ``--smoke`` asserts
both stay below 10%.

A final **prediction check** measures per-unit operator costs with the
calibration runner (:mod:`repro.obs.calibrate`), then asks whether the
calibrated cost model ranks linear-scan vs. MIH filtered kNN correctly at
1% and 50% filter selectivity — predicted cost from the measured counters
against measured wall time.  The JSON report is written to ``--out``
(default: stdout).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.config import ObsConfig
from repro.index import LinearScanIndex, MultiIndexHashing, pack_bits
from repro.obs import Observability, measure
from repro.obs.calibrate import predict_cost_ns, run_calibration

DEFAULT_RATES = (0.0, 0.1, 1.0)
PREDICT_SELECTIVITIES = (0.01, 0.5)


def random_packed_codes(num_items: int, num_bits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bits = (rng.random((num_items, num_bits)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


def run_stream(index: MultiIndexHashing, stream: np.ndarray, k: int,
               obs: "Observability | None") -> "tuple[float, int]":
    """One pass over the stream; returns (wall seconds, result checksum).

    The checksum folds every returned (item_id, distance) pair, so a
    tracing configuration that perturbed retrieval in any way would show
    up as a cross-configuration mismatch.
    """
    checksum = 0
    if obs is None:
        start = time.perf_counter()
        for query in stream:
            for result in index.search_knn(query, k):
                checksum ^= hash((result.item_id, result.distance))
        return time.perf_counter() - start, checksum
    start = time.perf_counter()
    for query in stream:
        with obs.request("similar", k=k):
            for result in index.search_knn(query, k):
                checksum ^= hash((result.item_id, result.distance))
    return time.perf_counter() - start, checksum


def best_of(trials: int, index: MultiIndexHashing, stream: np.ndarray,
            k: int, obs: "Observability | None") -> "tuple[float, int]":
    best, checksum = float("inf"), None
    for _ in range(trials):
        elapsed, digest = run_stream(index, stream, k, obs)
        best = min(best, elapsed)
        assert checksum is None or digest == checksum, \
            "result checksum changed between trials"
        checksum = digest
    return best, checksum


def prediction_check(items: int, bits: int, k: int, seed: int, *,
                     queries: int = 16, trials: int = 3) -> dict:
    """Does the calibrated cost model rank linear vs. MIH correctly?

    For each selectivity in :data:`PREDICT_SELECTIVITIES`, runs the same
    filtered kNN stream through both backends, then compares the
    measured-wall-time winner against the winner predicted by pricing
    each backend's measured cost counters with the calibrated units.
    """
    codes = random_packed_codes(items, bits, seed + 5)
    rng = np.random.default_rng(seed + 6)
    stream = codes[rng.integers(0, items, queries)]
    linear = LinearScanIndex(bits)
    linear.build(list(range(items)), codes)
    mih = MultiIndexHashing(bits)
    mih.build(list(range(items)), codes)

    calibration = run_calibration(
        corpus_sizes=(max(items // 25, 500), max(items // 5, 1000)),
        num_bits=bits, num_queries=16, seed=seed + 7)
    units = calibration["units"]

    def run(index) -> "tuple[float, dict]":
        best = float("inf")
        for _ in range(trials):
            start = time.perf_counter()
            for query in stream:
                index.search_knn(query, k, allowed=allowed)
            best = min(best, time.perf_counter() - start)
        with measure() as ledger:
            for query in stream:
                index.search_knn(query, k, allowed=allowed)
        return best, ledger.report()["costs"]

    report: dict = {"items": items, "queries": queries,
                    "calibration_units": units, "selectivities": {}}
    all_correct = True
    for selectivity in PREDICT_SELECTIVITIES:
        allowed = rng.random(items) < selectivity
        linear_s, linear_costs = run(linear)
        mih_s, mih_costs = run(mih)
        predicted = {"linear": predict_cost_ns(units, linear_costs),
                     "mih": predict_cost_ns(units, mih_costs)}
        measured_winner = "linear" if linear_s <= mih_s else "mih"
        predicted_winner = min(predicted, key=predicted.get)
        correct = measured_winner == predicted_winner
        all_correct = all_correct and correct
        report["selectivities"][f"{selectivity:g}"] = {
            "allowed_rows": int(allowed.sum()),
            "measured_ms_per_query": {
                "linear": round(linear_s / queries * 1e3, 4),
                "mih": round(mih_s / queries * 1e3, 4)},
            "predicted_us_per_stream": {
                name: round(value / 1e3, 2)
                for name, value in predicted.items()},
            "costs": {"linear": linear_costs, "mih": mih_costs},
            "measured_winner": measured_winner,
            "predicted_winner": predicted_winner,
            "ordering_correct": correct,
        }
        print(f"[bench_observability] predict sel={selectivity:g}: measured "
              f"{measured_winner}, predicted {predicted_winner} "
              f"({'ok' if correct else 'MISMATCH'})", file=sys.stderr)
    report["ordering_correct"] = all_correct
    return report


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--items", type=int, default=20_000,
                        help="corpus size (packed random codes)")
    parser.add_argument("--bits", type=int, default=128)
    parser.add_argument("--queries", type=int, default=1_000,
                        help="length of the query stream")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--tables", type=int, default=4,
                        help="MIH substring tables")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=list(DEFAULT_RATES),
                        help="trace sample rates to sweep")
    parser.add_argument("--trials", type=int, default=3,
                        help="runs per configuration (best-of)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--workload-out", type=str, default=None,
                        help="also save the workload profile recorded during "
                             "the full-sampling cost run as a JSON sidecar")
    parser.add_argument("--predict-items", type=int, default=50_000,
                        help="corpus size for the calibrated linear-vs-MIH "
                             "prediction check (0 disables it)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs; asserts "
                             "the <10%% sampling and cost-counter overhead "
                             "bounds and the prediction-ordering check")
    args = parser.parse_args(argv)

    if args.smoke:
        args.items, args.queries = 4_000, 400
        args.trials = 3
        args.predict_items = min(args.predict_items, 8_000)

    codes = random_packed_codes(args.items, args.bits, args.seed)
    stream = codes[np.random.default_rng(args.seed + 1)
                   .integers(0, args.items, args.queries)]
    index = MultiIndexHashing(args.bits, num_tables=args.tables)
    index.build(list(range(args.items)), codes)
    print(f"[bench_observability] corpus={args.items} bits={args.bits} "
          f"queries={args.queries} k={args.k} trials={args.trials}",
          file=sys.stderr)

    # Warm caches (BLAS, table lookups) before any timed pass.
    run_stream(index, stream[:32], args.k, None)

    baseline_s, baseline_sum = best_of(args.trials, index, stream, args.k,
                                       None)
    baseline_qps = args.queries / baseline_s
    print(f"[bench_observability] no_obs: {baseline_qps:.1f} qps",
          file=sys.stderr)

    rows = {}
    cost_rows = {}
    for rate in args.rates:
        obs = Observability(ObsConfig(sample_rate=rate,
                                      slow_threshold_ms=1e9,
                                      cost_tracking=False,
                                      workload_enabled=False),
                            component="bench")
        elapsed, digest = best_of(args.trials, index, stream, args.k, obs)
        assert digest == baseline_sum, \
            f"tracing at rate {rate} changed retrieval results"
        qps = args.queries / elapsed
        stats = obs.tracer.stats()
        rows[f"{rate:g}"] = {
            "sample_rate": rate,
            "qps": round(qps, 1),
            "wall_seconds": round(elapsed, 4),
            "overhead_pct_vs_no_obs":
                round(100.0 * (baseline_qps - qps) / baseline_qps, 2),
            "requests_sampled": stats["requests_sampled"],
            "identical_results": True,
        }
        print(f"[bench_observability] rate={rate:g}: {qps:.1f} qps "
              f"({rows[f'{rate:g}']['requests_sampled']} traced)",
              file=sys.stderr)

        # Same rate with cost counters + the workload store on: what do
        # the typed operator counters add over tracing alone?
        obs_costs = Observability(ObsConfig(sample_rate=rate,
                                            slow_threshold_ms=1e9,
                                            cost_tracking=True,
                                            workload_enabled=True),
                                  component="bench")
        cost_elapsed, cost_digest = best_of(args.trials, index, stream,
                                            args.k, obs_costs)
        assert cost_digest == baseline_sum, \
            f"cost tracking at rate {rate} changed retrieval results"
        cost_qps = args.queries / cost_elapsed
        workload = obs_costs.workload.describe()
        cost_rows[f"{rate:g}"] = {
            "sample_rate": rate,
            "qps": round(cost_qps, 1),
            "wall_seconds": round(cost_elapsed, 4),
            "overhead_pct_vs_tracing_only":
                round(100.0 * (qps - cost_qps) / qps, 2),
            "workload_recorded": workload["recorded_total"],
            "identical_results": True,
        }
        print(f"[bench_observability] rate={rate:g}+costs: {cost_qps:.1f} "
              f"qps ({workload['recorded_total']} profiled)",
              file=sys.stderr)

    zero = rows.get("0") or min(rows.values(), key=lambda r: r["sample_rate"])
    default = rows.get("0.1")
    full = rows.get("1") or max(rows.values(), key=lambda r: r["sample_rate"])
    cost_full = cost_rows.get("1") or max(cost_rows.values(),
                                          key=lambda r: r["sample_rate"])

    def overhead_vs_zero(row: "dict | None") -> "float | None":
        if row is None:
            return None
        return round(100.0 * (zero["qps"] - row["qps"]) / zero["qps"], 2)

    prediction = None
    if args.predict_items:
        prediction = prediction_check(args.predict_items, args.bits, args.k,
                                      args.seed)

    report = {
        "config": {"items": args.items, "bits": args.bits,
                   "queries": args.queries, "k": args.k,
                   "tables": args.tables, "trials": args.trials,
                   "seed": args.seed, "smoke": args.smoke},
        "no_obs": {"qps": round(baseline_qps, 1),
                   "wall_seconds": round(baseline_s, 4)},
        "rates": rows,
        "cost_tracking": cost_rows,
        "prediction": prediction,
        "headline": {
            "overhead_pct_sampled_out": zero["overhead_pct_vs_no_obs"],
            "overhead_pct_at_default_sampling": overhead_vs_zero(default),
            "overhead_pct_at_full_tracing": overhead_vs_zero(full),
            "overhead_pct_cost_counters_at_full_tracing":
                cost_full["overhead_pct_vs_tracing_only"],
            "prediction_ordering_correct":
                None if prediction is None
                else prediction["ordering_correct"],
        },
    }

    if args.workload_out:
        # The workload profile from the last (highest-rate) cost run: a
        # fully populated per-family histogram sidecar for CI artifacts.
        obs_costs.workload.save(args.workload_out)
        print(f"[bench_observability] workload profile -> "
              f"{args.workload_out}", file=sys.stderr)

    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[bench_observability] report -> {args.out}", file=sys.stderr)
    else:
        print(text)

    if args.smoke:
        if default is not None:
            overhead = report["headline"]["overhead_pct_at_default_sampling"]
            assert overhead < 10.0, \
                f"default 10% sampling must cost <10% qps, " \
                f"measured {overhead}%"
        cost_overhead = \
            report["headline"]["overhead_pct_cost_counters_at_full_tracing"]
        assert cost_overhead < 10.0, \
            f"cost counters must add <10% qps over tracing at 100% " \
            f"sampling, measured {cost_overhead}%"
        if prediction is not None:
            assert prediction["ordering_correct"], \
                "calibrated cost model mis-ranked linear vs MIH: " \
                f"{prediction['selectivities']}"
        print(f"[bench_observability] smoke ok: default-sampling "
              f"{report['headline']['overhead_pct_at_default_sampling']}%, "
              f"cost counters {cost_overhead}% (< 10% bounds), "
              f"prediction ordering "
              f"{report['headline']['prediction_ordering_correct']}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
