"""Observability-tier benchmark: tracing overhead at several sample rates.

Standalone script (not a pytest-benchmark suite): it stands up an
instrumented MIH index over a synthetic packed-code corpus and drives the
same kNN query stream through ``Observability.request`` at different
sampling configurations:

1. **no_obs** — the bare query loop with no request wrapper at all (the
   pre-observability baseline),
2. **rate sweep** — ``ObsConfig(sample_rate=r)`` for each ``r`` in
   ``--rates`` (default 0.0 / 0.1 / 1.0), so the sweep covers the
   sampled-out fast path, the default light sampling, and full tracing.

Every configuration runs the *identical* stream best-of ``--trials`` (the
minimum wall time is the least noisy estimator for a fixed workload), and
result checksums are compared across configurations — tracing is
observe-only, so any divergence aborts the run.

The headline number is ``overhead_pct_at_default_sampling``: the qps cost
of the default 10% sampling relative to the sampled-out (rate 0.0) loop.
The acceptance bound asserted by ``--smoke`` is that this stays below 10%.
The JSON report is written to ``--out`` (default: stdout).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.config import ObsConfig
from repro.index import MultiIndexHashing, pack_bits
from repro.obs import Observability

DEFAULT_RATES = (0.0, 0.1, 1.0)


def random_packed_codes(num_items: int, num_bits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bits = (rng.random((num_items, num_bits)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


def run_stream(index: MultiIndexHashing, stream: np.ndarray, k: int,
               obs: "Observability | None") -> "tuple[float, int]":
    """One pass over the stream; returns (wall seconds, result checksum).

    The checksum folds every returned (item_id, distance) pair, so a
    tracing configuration that perturbed retrieval in any way would show
    up as a cross-configuration mismatch.
    """
    checksum = 0
    if obs is None:
        start = time.perf_counter()
        for query in stream:
            for result in index.search_knn(query, k):
                checksum ^= hash((result.item_id, result.distance))
        return time.perf_counter() - start, checksum
    start = time.perf_counter()
    for query in stream:
        with obs.request("similar", k=k):
            for result in index.search_knn(query, k):
                checksum ^= hash((result.item_id, result.distance))
    return time.perf_counter() - start, checksum


def best_of(trials: int, index: MultiIndexHashing, stream: np.ndarray,
            k: int, obs: "Observability | None") -> "tuple[float, int]":
    best, checksum = float("inf"), None
    for _ in range(trials):
        elapsed, digest = run_stream(index, stream, k, obs)
        best = min(best, elapsed)
        assert checksum is None or digest == checksum, \
            "result checksum changed between trials"
        checksum = digest
    return best, checksum


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--items", type=int, default=20_000,
                        help="corpus size (packed random codes)")
    parser.add_argument("--bits", type=int, default=128)
    parser.add_argument("--queries", type=int, default=1_000,
                        help="length of the query stream")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--tables", type=int, default=4,
                        help="MIH substring tables")
    parser.add_argument("--rates", type=float, nargs="+",
                        default=list(DEFAULT_RATES),
                        help="trace sample rates to sweep")
    parser.add_argument("--trials", type=int, default=3,
                        help="runs per configuration (best-of)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs; asserts "
                             "the <10%% default-sampling overhead bound")
    args = parser.parse_args(argv)

    if args.smoke:
        args.items, args.queries = 4_000, 400
        args.trials = 3

    codes = random_packed_codes(args.items, args.bits, args.seed)
    stream = codes[np.random.default_rng(args.seed + 1)
                   .integers(0, args.items, args.queries)]
    index = MultiIndexHashing(args.bits, num_tables=args.tables)
    index.build(list(range(args.items)), codes)
    print(f"[bench_observability] corpus={args.items} bits={args.bits} "
          f"queries={args.queries} k={args.k} trials={args.trials}",
          file=sys.stderr)

    # Warm caches (BLAS, table lookups) before any timed pass.
    run_stream(index, stream[:32], args.k, None)

    baseline_s, baseline_sum = best_of(args.trials, index, stream, args.k,
                                       None)
    baseline_qps = args.queries / baseline_s
    print(f"[bench_observability] no_obs: {baseline_qps:.1f} qps",
          file=sys.stderr)

    rows = {}
    for rate in args.rates:
        obs = Observability(ObsConfig(sample_rate=rate,
                                      slow_threshold_ms=1e9),
                            component="bench")
        elapsed, digest = best_of(args.trials, index, stream, args.k, obs)
        assert digest == baseline_sum, \
            f"tracing at rate {rate} changed retrieval results"
        qps = args.queries / elapsed
        stats = obs.tracer.stats()
        rows[f"{rate:g}"] = {
            "sample_rate": rate,
            "qps": round(qps, 1),
            "wall_seconds": round(elapsed, 4),
            "overhead_pct_vs_no_obs":
                round(100.0 * (baseline_qps - qps) / baseline_qps, 2),
            "requests_sampled": stats["requests_sampled"],
            "identical_results": True,
        }
        print(f"[bench_observability] rate={rate:g}: {qps:.1f} qps "
              f"({rows[f'{rate:g}']['requests_sampled']} traced)",
              file=sys.stderr)

    zero = rows.get("0") or min(rows.values(), key=lambda r: r["sample_rate"])
    default = rows.get("0.1")
    full = rows.get("1") or max(rows.values(), key=lambda r: r["sample_rate"])

    def overhead_vs_zero(row: "dict | None") -> "float | None":
        if row is None:
            return None
        return round(100.0 * (zero["qps"] - row["qps"]) / zero["qps"], 2)

    report = {
        "config": {"items": args.items, "bits": args.bits,
                   "queries": args.queries, "k": args.k,
                   "tables": args.tables, "trials": args.trials,
                   "seed": args.seed, "smoke": args.smoke},
        "no_obs": {"qps": round(baseline_qps, 1),
                   "wall_seconds": round(baseline_s, 4)},
        "rates": rows,
        "headline": {
            "overhead_pct_sampled_out": zero["overhead_pct_vs_no_obs"],
            "overhead_pct_at_default_sampling": overhead_vs_zero(default),
            "overhead_pct_at_full_tracing": overhead_vs_zero(full),
        },
    }

    text = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[bench_observability] report -> {args.out}", file=sys.stderr)
    else:
        print(text)

    if args.smoke and default is not None:
        overhead = report["headline"]["overhead_pct_at_default_sampling"]
        assert overhead < 10.0, \
            f"default 10% sampling must cost <10% qps, measured {overhead}%"
        print(f"[bench_observability] smoke ok: default-sampling overhead "
              f"{overhead}% (< 10% bound)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
