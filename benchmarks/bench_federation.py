"""Federation-tier benchmark: scatter-gather across N EarthQube nodes.

Standalone script (not a pytest-benchmark suite): it bootstraps a pool of
small independent EarthQube nodes and measures the
:class:`~repro.federation.FederatedEarthQube` facade:

1. **identity check** — a 1-node federation must answer ``search``,
   ``similar_images``, and ``similar_images_batch`` byte-identically to
   the direct system call (the report records it, and the script *fails*
   if it does not hold),
2. **node-count sweep** — single-query latency and batch throughput at
   1/2/4/8 nodes (corpus grows with the federation; scatter-gather keeps
   per-query wall clock near the slowest node, not the node sum),
3. **injected-latency sweep** — every node's code-query path is wrapped
   with an artificial delay; federated latency should track ``~ 1x`` the
   injected delay (parallel fan-out), not ``nodes x delay`` (sequential).

The JSON report is written to ``--out`` (default stdout).

Usage::

    PYTHONPATH=src python benchmarks/bench_federation.py
    PYTHONPATH=src python benchmarks/bench_federation.py --smoke   # tiny CI run
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    FederationConfig,
    IndexConfig,
    MiLaNConfig,
    ServingConfig,
    TrainConfig,
)
from repro.earthqube import EarthQube, QuerySpec
from repro.federation import FederatedEarthQube


def bootstrap_node(seed: int, *, patches: int, epochs: int,
                   num_bits: int, serving: bool) -> EarthQube:
    config = EarthQubeConfig(
        archive=ArchiveConfig(num_patches=patches, seed=seed),
        milan=MiLaNConfig(num_bits=num_bits, hidden_sizes=(48,)),
        train=TrainConfig(epochs=epochs, triplets_per_epoch=256,
                          batch_size=64, seed=seed),
        index=IndexConfig(hamming_radius=2, mih_tables=4),
        serving=ServingConfig(enabled=serving, num_shards=2,
                              batch_max_delay_ms=0.5),
    )
    return EarthQube.bootstrap(config, store_images=False)


def make_federation(systems: "list[EarthQube]", count: int,
                    ) -> FederatedEarthQube:
    return FederatedEarthQube(
        {f"node{i}": system for i, system in enumerate(systems[:count])},
        FederationConfig(node_timeout_s=30.0))


def check_identity(system: EarthQube) -> dict:
    """1-node federated responses must equal the direct system calls."""
    federation = make_federation([system], 1)
    try:
        names = system.archive.names[:8]
        spec = QuerySpec(limit=10, skip=2)
        checks = {
            "search": federation.search(spec).value == system.search(spec),
            "similar_images": all(
                federation.similar_images(name, k=7).value
                == system.similar_images(name, k=7)
                for name in names[:4]),
            "similar_images_radius": (
                federation.similar_images(names[0], k=None, radius=3).value
                == system.similar_images(names[0], k=None, radius=3)),
            "similar_images_batch": (
                federation.similar_images_batch(names, k=5).value
                == system.similar_images_batch(names, k=5)),
        }
    finally:
        federation.close()
    return checks


def inject_latency(federation: FederatedEarthQube, delay_s: float) -> None:
    """Wrap every node's code-query paths with an artificial delay."""
    for node in federation.registry:
        real_single, real_batch = node.query_code, node.query_codes_batch

        def slow_single(code, *, k=None, radius=None, _real=real_single):
            time.sleep(delay_s)
            return _real(code, k=k, radius=radius)

        def slow_batch(codes, *, k=None, radius=None, _real=real_batch):
            time.sleep(delay_s)
            return _real(codes, k=k, radius=radius)

        node.query_code = slow_single
        node.query_codes_batch = slow_batch


def time_queries(federation: FederatedEarthQube, names: "list[str]",
                 k: int) -> dict:
    started = time.perf_counter()
    for name in names:
        response = federation.similar_images(name, k=k)
        assert response.meta.complete, response.meta.as_dict()
    single_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    federation.similar_images_batch(names, k=k)
    batch_elapsed = time.perf_counter() - started
    return {
        "queries": len(names),
        "single_mean_ms": round(single_elapsed / len(names) * 1e3, 3),
        "single_qps": round(len(names) / single_elapsed, 1),
        "batch_total_ms": round(batch_elapsed * 1e3, 3),
        "batch_qps": round(len(names) / batch_elapsed, 1),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--nodes", type=int, nargs="+", default=[1, 2, 4, 8],
                        help="node counts to sweep")
    parser.add_argument("--delay-ms", type=float, default=20.0,
                        help="injected per-node latency for the latency sweep")
    args = parser.parse_args(argv)

    patches = 48 if args.smoke else 200
    epochs = 2 if args.smoke else 6
    queries = 8 if args.smoke else 32
    node_counts = sorted(set(args.nodes))
    max_nodes = max(node_counts)

    print(f"[bench] bootstrapping {max_nodes} nodes "
          f"({patches} patches each) ...", file=sys.stderr)
    systems = [bootstrap_node(100 + i, patches=patches, epochs=epochs,
                              num_bits=32, serving=(i % 2 == 0))
               for i in range(max_nodes)]

    report: dict = {
        "benchmark": "federation",
        "config": {
            "smoke": args.smoke,
            "patches_per_node": patches,
            "node_counts": node_counts,
            "queries": queries,
            "injected_delay_ms": args.delay_ms,
        },
    }

    print("[bench] identity check (1-node federated == direct) ...",
          file=sys.stderr)
    identity = check_identity(systems[0])
    report["identity_1node"] = identity
    if not all(identity.values()):
        print(f"IDENTITY CHECK FAILED: {identity}", file=sys.stderr)
        return 1

    query_names = systems[0].archive.names[:queries]
    sweep: dict = {}
    for count in node_counts:
        print(f"[bench] node-count sweep: {count} node(s) ...", file=sys.stderr)
        federation = make_federation(systems, count)
        try:
            entry = time_queries(federation, query_names, k=10)
            entry["total_corpus"] = sum(
                node["capabilities"]["corpus_size"]
                for node in federation.nodes())
            sweep[str(count)] = entry
        finally:
            federation.close()
    report["node_sweep"] = sweep

    delay_s = args.delay_ms / 1e3
    latency_sweep: dict = {}
    for count in node_counts:
        print(f"[bench] injected-latency sweep: {count} node(s) ...",
              file=sys.stderr)
        federation = make_federation(systems, count)
        try:
            inject_latency(federation, delay_s)
            started = time.perf_counter()
            runs = 3
            for _ in range(runs):
                response = federation.similar_images(query_names[0], k=10)
                assert response.meta.complete
            observed_ms = (time.perf_counter() - started) / runs * 1e3
            latency_sweep[str(count)] = {
                "observed_ms": round(observed_ms, 3),
                "injected_ms": args.delay_ms,
                "sequential_equivalent_ms": round(args.delay_ms * count, 3),
                "parallel_efficiency": round(
                    args.delay_ms * count / observed_ms, 2),
            }
        finally:
            federation.close()
    report["injected_latency_sweep"] = latency_sweep

    widest = latency_sweep[str(max_nodes)]
    report["headline"] = {
        "identity_ok": all(identity.values()),
        "scatter_gather_speedup_at_widest": widest["parallel_efficiency"],
    }

    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"[bench] report written to {args.out}", file=sys.stderr)
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
