"""E3/E4/E5: the paper's three demonstration scenarios, end to end.

Each scenario is benchmarked as one full visitor flow against the
bootstrapped system (the bootstrap itself is session-scoped and excluded
from timings).
"""

from repro.workloads import (
    run_label_exploration,
    run_query_by_new_example,
    run_spatial_query_by_example,
)

from .conftest import print_table


def test_scenario1_label_exploration(benchmark, bench_system):
    """E3: industrial areas adjacent to inland waters, 10 countries."""
    result = benchmark(lambda: run_label_exploration(bench_system))
    assert result.total_matches > 0
    assert result.statistics is not None
    print_table("Scenario 1: label exploration",
                ["metric", "value"],
                [["matches", result.total_matches],
                 ["distinct labels in stats", len(result.statistics)],
                 ["agriculture co-occurrence",
                  result.notes["agriculture_cooccurrence"]]])


def test_scenario2_spatial_qbe(benchmark, bench_system):
    """E4: SW-Portugal rectangle, render, then query-by-existing-example."""
    result = benchmark(lambda: run_spatial_query_by_example(bench_system, k=10))
    assert result.query_name is not None
    assert len(result.neighbor_names) > 0
    print_table("Scenario 2: spatial + query-by-example",
                ["metric", "value"],
                [["images in SW Portugal", result.total_matches],
                 ["rendered", result.notes["rendered"]],
                 ["neighbours", len(result.neighbor_names)],
                 ["neighbour countries", len(result.notes["neighbor_countries"])]])


def test_scenario3_query_by_new_example(benchmark, bench_system):
    """E5: upload an unlabeled image, search, auto-label from neighbours."""
    result = benchmark(lambda: run_query_by_new_example(bench_system, k=10))
    assert len(result.neighbor_names) > 0
    recovered = result.notes["recovered_labels"]
    print_table("Scenario 3: query-by-new-example",
                ["metric", "value"],
                [["neighbours", len(result.neighbor_names)],
                 ["true labels", ", ".join(result.notes["true_labels"])],
                 ["predicted", ", ".join(result.notes["predicted_labels"]) or "-"],
                 ["recovered", ", ".join(recovered) or "-"]])
    # The automatic-labeling sketch must recover at least one true label.
    assert len(recovered) >= 1
