"""Filtered-similarity pushdown: pre-filter masks vs naive post-filtering.

EarthQube's combined queries join metadata constraints with content-based
similarity.  This benchmark sweeps **filter selectivity x corpus size** and
measures, for every index backend (packed linear scan, Multi-Index
Hashing, sharded scatter-gather):

* **prefilter** — the pushdown: the allowed-row mask rides into the index,
  which gathers/verifies only allowed rows (cost scales with the allowed
  subset);
* **naive_postfilter** — the client-side baseline: unfiltered kNN
  over-fetched by doubling (k, 2k, 4k, ...) until ``k`` allowed survivors
  emerge, re-running the full search each round with no selectivity
  estimate.

Every measured ranking is checked **byte-identical** against a brute-force
filter-then-rank oracle before any timing is reported; a mismatch aborts
the run.  A second section measures the columnar metadata engine itself:
multi-condition document queries through the mask-intersecting planner vs
the same queries forced through a sequential scan.

The JSON report lands in ``--out`` (default ``BENCH_filtered_search.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_filtered_search.py
    PYTHONPATH=src python benchmarks/bench_filtered_search.py --smoke
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.index import LinearScanIndex, MultiIndexHashing
from repro.index.hamming import hamming_distances_to_query
from repro.serving.sharding import CodeQuery, ShardedHammingIndex
from repro.store import Collection

NUM_BITS = 128
WORDS = NUM_BITS // 64
K = 10
NUM_QUERIES = 32
SIZES = [10_000, 50_000]
SELECTIVITIES = [0.01, 0.05, 0.2]
SMOKE_SIZES = [6_000]
SMOKE_SELECTIVITIES = [0.01, 0.2]


# --------------------------------------------------------------------- #
# Corpus / oracle
# --------------------------------------------------------------------- #

def clustered_codes(n: int, rng: np.random.Generator) -> np.ndarray:
    """Cluster-structured packed codes (what a trained hasher emits).

    Uniform random codes have no near neighbors, which pushes every MIH
    kNN into the degenerate exhaustive regime regardless of filtering.
    """
    num_centers = max(8, n // 200)
    centers = rng.integers(0, np.iinfo(np.uint64).max, size=(num_centers, WORDS),
                           dtype=np.uint64)
    assignment = rng.integers(0, num_centers, size=n)
    codes = centers[assignment].copy()
    flips = rng.integers(0, NUM_BITS, size=(n, 6))
    for column in range(flips.shape[1]):
        word, bit = np.divmod(flips[:, column], 64)
        codes[np.arange(n), word] ^= np.uint64(1) << bit.astype(np.uint64)
    return codes


def oracle_filtered_knn(codes: np.ndarray, query: np.ndarray,
                        mask: np.ndarray, k: int) -> list:
    """Brute-force filter-then-rank ground truth."""
    distances = hamming_distances_to_query(codes, query)
    rows = np.flatnonzero(mask)
    order = np.lexsort((rows, distances[rows]))[:k]
    return [(int(row), int(distances[row])) for row in rows[order]]


# --------------------------------------------------------------------- #
# Backends under test
# --------------------------------------------------------------------- #

def build_backends(codes: np.ndarray) -> dict:
    ids = list(range(codes.shape[0]))
    linear = LinearScanIndex(NUM_BITS)
    linear.build(ids, codes)
    mih = MultiIndexHashing(NUM_BITS, 4)
    mih.build(ids, codes)
    sharded = ShardedHammingIndex(NUM_BITS, 4)
    sharded.build(ids, codes)
    return {"linear": linear, "mih": mih, "sharded": sharded}


def prefilter_search(backend_name: str, backend, query: np.ndarray,
                     mask: np.ndarray) -> list:
    if backend_name == "sharded":
        results = backend.search_batch(
            [CodeQuery(code=query, k=K, allowed=mask, filter_key="bench")])[0]
    else:
        results = backend.search_knn(query, K, allowed=mask)
    return [(int(r.item_id), r.distance) for r in results]


def naive_postfilter_search(backend_name: str, backend, query: np.ndarray,
                            mask: np.ndarray, allowed_rows: set) -> list:
    """The baseline: doubling over-fetch with client-side screening."""
    n = len(backend)
    fetch = K
    while True:
        if backend_name == "sharded":
            results = backend.search_batch([CodeQuery(code=query, k=fetch)])[0]
        else:
            results = backend.search_knn(query, fetch)
        kept = [(int(r.item_id), r.distance) for r in results
                if int(r.item_id) in allowed_rows]
        if len(kept) >= K or fetch >= n:
            return kept[:K]
        fetch = min(n, fetch * 2)


def timed(fn, repeats: int = 2) -> float:
    """Best-of-N wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------- #
# Similarity sweep
# --------------------------------------------------------------------- #

def sweep_similarity(sizes, selectivities, rng) -> dict:
    report: dict = {}
    for n in sizes:
        codes = clustered_codes(n, rng)
        backends = build_backends(codes)
        query_rows = rng.integers(0, n, size=NUM_QUERIES)
        queries = codes[query_rows]
        size_report: dict = {}
        for selectivity in selectivities:
            mask = rng.random(n) < selectivity
            if not mask.any():
                mask[rng.integers(0, n)] = True
            allowed_rows = set(np.flatnonzero(mask).tolist())
            oracles = [oracle_filtered_knn(codes, query, mask, K)
                       for query in queries]
            cell: dict = {"allowed_rows": int(mask.sum())}
            for backend_name, backend in backends.items():
                pre = [prefilter_search(backend_name, backend, query, mask)
                       for query in queries]
                naive = [naive_postfilter_search(backend_name, backend, query,
                                                 mask, allowed_rows)
                         for query in queries]
                identical = pre == oracles and naive == oracles
                if not identical:
                    raise SystemExit(
                        f"ranking mismatch vs oracle: backend={backend_name} "
                        f"n={n} selectivity={selectivity}")
                pre_s = timed(lambda: [
                    prefilter_search(backend_name, backend, query, mask)
                    for query in queries])
                naive_s = timed(lambda: [
                    naive_postfilter_search(backend_name, backend, query,
                                            mask, allowed_rows)
                    for query in queries])
                cell[backend_name] = {
                    "prefilter_ms_per_query": round(pre_s / NUM_QUERIES * 1e3, 4),
                    "naive_postfilter_ms_per_query":
                        round(naive_s / NUM_QUERIES * 1e3, 4),
                    "speedup": round(naive_s / pre_s, 2),
                    "identical_to_oracle": identical,
                }
            size_report[str(selectivity)] = cell
        backends["sharded"].close()
        report[str(n)] = size_report
    return report


# --------------------------------------------------------------------- #
# Columnar metadata sweep
# --------------------------------------------------------------------- #

_SEASONS = ["Winter", "Spring", "Summer", "Autumn"]
_LABELS = [f"label_{i}" for i in range(12)]


def build_metadata_collection(n: int, rng: np.random.Generator) -> Collection:
    collection = Collection("bench", primary_key="name")
    collection.create_index("properties.season")
    collection.create_index("properties.labels")
    collection.create_date_column("properties.acquisition_date")
    documents = []
    for i in range(n):
        day = int(rng.integers(0, 364))
        documents.append({
            "name": f"patch_{i}",
            "properties": {
                "season": _SEASONS[int(rng.integers(0, 4))],
                "labels": [_LABELS[int(label)] for label in
                           rng.choice(12, size=int(rng.integers(1, 4)),
                                      replace=False)],
                "acquisition_date":
                    f"2017-{1 + day // 31:02d}-{1 + day % 28:02d}",
            },
        })
    collection.insert_many(documents)
    return collection


def sweep_metadata(sizes, rng) -> dict:
    query = {"properties.season": "Summer",
             "properties.labels": {"$in": ["label_1", "label_2"]},
             "properties.acquisition_date": {"$gte": "2017-03-01",
                                             "$lte": "2017-06-30"}}
    report: dict = {}
    for n in sizes:
        collection = build_metadata_collection(n, rng)
        planned = collection.find(query)
        scanned = collection.find(query, hint="scan")
        if planned.documents != scanned.documents:
            raise SystemExit(f"columnar plan changed results at n={n}")
        planned_s = timed(lambda: collection.find(query), repeats=3)
        scanned_s = timed(lambda: collection.find(query, hint="scan"),
                          repeats=3)
        report[str(n)] = {
            "plan": planned.plan,
            "matches": planned.total_matches,
            "candidates_examined": planned.candidates_examined,
            "columnar_ms": round(planned_s * 1e3, 3),
            "scan_ms": round(scanned_s * 1e3, 3),
            "speedup": round(scanned_s / planned_s, 2),
            "identical_to_scan": True,
        }
    return report


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_filtered_search.json",
                        help="JSON report path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--seed", type=int, default=20220711)
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else SIZES
    selectivities = SMOKE_SELECTIVITIES if args.smoke else SELECTIVITIES
    rng = np.random.default_rng(args.seed)

    similarity = sweep_similarity(sizes, selectivities, rng)
    metadata = sweep_metadata(sizes, rng)

    largest = str(max(sizes))
    most_selective = str(min(selectivities))
    headline_cell = similarity[largest][most_selective]
    report = {
        "config": {"num_bits": NUM_BITS, "k": K, "num_queries": NUM_QUERIES,
                   "sizes": sizes, "selectivities": selectivities,
                   "seed": args.seed, "smoke": args.smoke},
        "similarity": similarity,
        "metadata": metadata,
        "headline": {
            "corpus": int(largest),
            "selectivity": float(most_selective),
            "prefilter_speedup_by_backend": {
                backend: headline_cell[backend]["speedup"]
                for backend in ("linear", "mih", "sharded")},
            "min_prefilter_speedup": min(
                headline_cell[backend]["speedup"]
                for backend in ("linear", "mih", "sharded")),
            "columnar_metadata_speedup_at_largest":
                metadata[largest]["speedup"],
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[bench_filtered_search] n={largest} selectivity={most_selective}: "
          f"prefilter speedups "
          f"{report['headline']['prefilter_speedup_by_backend']} "
          f"(all rankings oracle-identical); columnar metadata "
          f"x{report['headline']['columnar_metadata_speedup_at_largest']}; "
          f"report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
