"""E7: storage cost — "high efficiency in both storage cost and search
retrieval speed".

Bytes per image for each representation level, and the packing throughput.
Expected shape: 128-bit codes are ~65x smaller than the float feature
vectors and ~4 orders of magnitude smaller than the pixels.
"""


from repro.index.codes import pack_bits, storage_bytes

from .conftest import print_table


def test_storage_accounting(benchmark, bench_archive, bench_features, bench_hasher):
    """Per-image storage of pixels vs. float features vs. binary codes."""
    n = len(bench_archive)
    pixel_bytes = bench_archive[0].storage_bytes()
    feature_bytes = bench_features[0].nbytes
    code_bytes_128 = storage_bytes(1, 128)
    code_bytes_64 = storage_bytes(1, 64)

    bits = bench_hasher.hash_bits(bench_features)
    packed = benchmark(lambda: pack_bits(bits))
    assert packed.shape[0] == n

    rows = [
        ["raw pixels (S2+S1)", pixel_bytes, f"{pixel_bytes / code_bytes_128:,.0f}x"],
        ["float features (130-d f64)", feature_bytes,
         f"{feature_bytes / code_bytes_128:.1f}x"],
        ["binary code (128 bits)", code_bytes_128, "1x"],
        ["binary code (64 bits)", code_bytes_64,
         f"{code_bytes_64 / code_bytes_128:.1f}x"],
    ]
    print_table("E7: storage per image (bytes)",
                ["representation", "bytes/image", "vs 128-bit code"], rows)
    print(f"whole archive ({n} images): "
          f"pixels {n * pixel_bytes / 1e6:.1f} MB, "
          f"features {n * feature_bytes / 1e3:.0f} KB, "
          f"128-bit codes {storage_bytes(n, 128) / 1e3:.0f} KB")

    assert code_bytes_128 * 60 < feature_bytes, \
        "codes must be >=60x smaller than float features"
    assert code_bytes_128 * 1000 < pixel_bytes, \
        "codes must be >=1000x smaller than pixels"


def test_inmemory_hash_table_footprint(benchmark, bench_system):
    """The paper's in-memory name->code table: build cost for the archive."""
    names = bench_system.archive.names
    codes = bench_system.hasher.hash_packed(bench_system.features)

    def build_table():
        return {name: codes[i] for i, name in enumerate(names)}

    table = benchmark(build_table)
    assert len(table) == len(names)
