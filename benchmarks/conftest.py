"""Shared benchmark fixtures.

Everything expensive is session-scoped and sized so the full benchmark run
finishes in minutes on a laptop CPU while still showing the paper's claimed
orderings.  Quality-oriented benches print their measurement tables (run
with ``-s`` to see them); EXPERIMENTS.md records the reference outcomes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bigearthnet import SyntheticArchive
from repro.config import (
    ArchiveConfig,
    EarthQubeConfig,
    IndexConfig,
    MiLaNConfig,
    TrainConfig,
)
from repro.core import MiLaNHasher
from repro.earthqube import EarthQube
from repro.features import FeatureExtractor
from repro.index import pack_bits

BENCH_PATCHES = 500


def train_config(epochs: int = 12) -> TrainConfig:
    return TrainConfig(epochs=epochs, triplets_per_epoch=1024, batch_size=64, seed=0)


def milan_config(num_bits: int = 64) -> MiLaNConfig:
    return MiLaNConfig(num_bits=num_bits, hidden_sizes=(128, 64))


@pytest.fixture(scope="session")
def bench_archive() -> SyntheticArchive:
    return SyntheticArchive.generate(ArchiveConfig(num_patches=BENCH_PATCHES, seed=17))


@pytest.fixture(scope="session")
def bench_extractor() -> FeatureExtractor:
    return FeatureExtractor()


@pytest.fixture(scope="session")
def bench_features(bench_archive, bench_extractor) -> np.ndarray:
    return bench_extractor.extract_many(bench_archive.patches)


@pytest.fixture(scope="session")
def bench_labels(bench_archive) -> np.ndarray:
    return bench_archive.label_matrix()


@pytest.fixture(scope="session")
def hashers_by_bits(bench_features, bench_labels) -> dict[int, MiLaNHasher]:
    """MiLaN hashers trained at each code length for the bits sweep (E9)."""
    out: dict[int, MiLaNHasher] = {}
    for bits in (16, 32, 64, 128):
        hasher = MiLaNHasher(milan_config(bits), train_config())
        out[bits] = hasher.fit(bench_features, bench_labels)
    return out


@pytest.fixture(scope="session")
def bench_hasher(hashers_by_bits) -> MiLaNHasher:
    """The default 64-bit hasher used by most benches."""
    return hashers_by_bits[64]


@pytest.fixture(scope="session")
def bench_system(bench_archive, bench_hasher, bench_extractor,
                 bench_features) -> EarthQube:
    """A bootstrapped system reusing the session's trained hasher."""
    from repro.bigearthnet.labels import LabelCharCodec
    from repro.earthqube.cbir import CBIRService
    from repro.earthqube.ingest import ingest_archive
    from repro.store.database import Database

    config = EarthQubeConfig(
        archive=bench_archive.config,
        milan=bench_hasher.milan_config,
        train=bench_hasher.train_config,
        index=IndexConfig(hamming_radius=2, mih_tables=4),
    )
    codec = LabelCharCodec()
    db = Database.earthqube_schema()
    ingest_archive(db, bench_archive, codec)
    cbir = CBIRService(bench_hasher, bench_extractor, config.index)
    cbir.build(bench_archive.names, bench_features)
    return EarthQube(config, bench_archive, db, codec, bench_extractor,
                     bench_hasher, cbir, bench_features)


def random_packed_codes(num_items: int, num_bits: int, seed: int = 0) -> np.ndarray:
    """Synthetic packed codes for pure index-speed benches (E6/E8): retrieval
    *speed* does not depend on code semantics, only on their distribution."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((num_items, num_bits)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Uniform measurement-table printer for the quality benches."""
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
