"""E13: MiLaN vs. classic hashing baselines at equal bit budgets.

The reason deep hashing exists: learned codes should beat data-independent
LSH and shallow PCA/ITQ on label-based retrieval, approaching the float-
feature upper bound at a fraction of its cost.  Expected shape:
float kNN >= MiLaN > ITQ >= PCA-sign > LSH.
"""

import numpy as np
import pytest

from repro.baselines import (
    BruteForceFeatureIndex,
    ITQHashing,
    PCASignHashing,
    RandomHyperplaneLSH,
    SpectralHashing,
)
from repro.core.similarity import shares_label_matrix
from repro.index import LinearScanIndex
from repro.metrics import mean_average_precision

from .conftest import print_table

NUM_BITS = 64


@pytest.fixture(scope="module")
def baseline_codes(bench_features, bench_hasher):
    lsh = RandomHyperplaneLSH(NUM_BITS, seed=0).fit(bench_features)
    pca = PCASignHashing(NUM_BITS).fit(bench_features)
    itq = ITQHashing(NUM_BITS, iterations=40, seed=0).fit(bench_features)
    spectral = SpectralHashing(NUM_BITS).fit(bench_features)
    return {
        "MiLaN (deep)": bench_hasher.hash_packed(bench_features),
        "ITQ": itq.hash_packed(bench_features),
        "Spectral": spectral.hash_packed(bench_features),
        "PCA-sign": pca.hash_packed(bench_features),
        "LSH": lsh.hash_packed(bench_features),
    }


def _map_for_codes(codes, labels):
    index = LinearScanIndex(NUM_BITS)
    index.build(list(range(codes.shape[0])), codes)
    similar = shares_label_matrix(labels)
    ranked = []
    for q in range(0, codes.shape[0], codes.shape[0] // 60):
        results = [r for r in index.search_knn(codes[q], 11) if r.item_id != q][:10]
        ranked.append(np.array([float(similar[q, r.item_id]) for r in results]))
    return mean_average_precision(ranked, k=10)


def _map_for_floats(features, labels):
    index = BruteForceFeatureIndex()
    index.build(list(range(len(features))), features)
    similar = shares_label_matrix(labels)
    ranked = []
    for q in range(0, len(features), len(features) // 60):
        results = [r for r in index.search_knn(features[q], 11) if r.item_id != q][:10]
        ranked.append(np.array([float(similar[q, r.item_id]) for r in results]))
    return mean_average_precision(ranked, k=10)


def test_baseline_quality_table(benchmark, baseline_codes, bench_features, bench_labels):
    """The E13 comparison table."""
    def run():
        rows = [["float kNN (upper bound)",
                 f"{_map_for_floats(bench_features, bench_labels):.3f}"]]
        for name, codes in baseline_codes.items():
            rows.append([name, f"{_map_for_codes(codes, bench_labels):.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"E13: retrieval quality at {NUM_BITS} bits",
                ["method", "mAP@10"], rows)

    scores = {name: float(value) for name, value in rows}
    assert scores["MiLaN (deep)"] > scores["LSH"], "learned codes must beat LSH"
    assert scores["MiLaN (deep)"] >= scores["PCA-sign"] - 0.02
    random_rate = float(shares_label_matrix(bench_labels).mean())
    assert all(score > random_rate for score in scores.values())


@pytest.mark.parametrize("method", ["MiLaN (deep)", "ITQ", "Spectral",
                                    "PCA-sign", "LSH"])
def test_baseline_search_latency(benchmark, baseline_codes, method):
    """All binary methods share the same per-query search cost."""
    codes = baseline_codes[method]
    index = LinearScanIndex(NUM_BITS)
    index.build(list(range(codes.shape[0])), codes)
    benchmark.group = "E13 per-query latency (64-bit scan)"
    benchmark(lambda: index.search_knn(codes[0], 10))
