"""E8: the "small Hamming radius" design choice.

Sweeps the search radius r over 0..6 on the trained 64-bit codes and
reports, per radius: latency (pytest-benchmark), number of verified results,
and recall of the true Hamming top-10.  Expected shape: recall rises with r
while the candidate set (and bucket-enumeration cost for the naive table)
explodes — which is exactly why the demo uses a *small* radius plus MIH.
"""

import numpy as np
import pytest

from repro.index import LinearScanIndex, MultiIndexHashing

from .conftest import print_table

RADII = [0, 1, 2, 4, 6]


@pytest.fixture(scope="module")
def radius_setup(bench_hasher, bench_features, bench_archive):
    codes = bench_hasher.hash_packed(bench_features)
    ids = list(range(len(bench_archive)))
    mih = MultiIndexHashing(64, num_tables=4)
    mih.build(ids, codes)
    scan = LinearScanIndex(64)
    scan.build(ids, codes)
    return codes, mih, scan


@pytest.mark.parametrize("radius", RADII)
def test_mih_radius_latency(benchmark, radius_setup, radius):
    codes, mih, _ = radius_setup
    benchmark.group = "E8 radius sweep (MIH, 64 bits)"
    benchmark(lambda: mih.search_radius(codes[0], radius))


def test_radius_recall_tradeoff(benchmark, radius_setup):
    """Recall of the true top-10 and result counts per radius."""
    codes, mih, scan = radius_setup
    queries = range(0, codes.shape[0], codes.shape[0] // 40)

    def sweep():
        out = []
        for radius in RADII:
            recalls, counts = [], []
            for q in queries:
                true_top = {r.item_id for r in scan.search_knn(codes[q], 10)}
                within = mih.search_radius(codes[q], radius)
                found = {r.item_id for r in within}
                recalls.append(len(true_top & found) / len(true_top))
                counts.append(len(within))
            out.append([radius, f"{np.mean(recalls):.3f}", f"{np.mean(counts):.1f}"])
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E8: Hamming radius vs recall of true top-10",
                ["radius", "recall@10", "mean results"], rows)

    recalls_by_radius = [float(r[1]) for r in rows]
    assert recalls_by_radius == sorted(recalls_by_radius), \
        "recall must be monotone in the radius"
    counts_by_radius = [float(r[2]) for r in rows]
    assert counts_by_radius[-1] >= counts_by_radius[0], \
        "result count must grow with the radius"
