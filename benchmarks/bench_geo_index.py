"""E11: the data tier's geohash 2D index vs. a collection scan.

"To improve query performance, we index the location attribute using
MongoDB's built-in 2D geohashing index."  We measure the same rectangle
query against the metadata collection with and without the geohash index at
growing collection sizes.  Expected shape: the indexed path examines a small
candidate set and stays fast; the scan path grows linearly.
"""

import pytest

from repro.bigearthnet import SyntheticArchive
from repro.bigearthnet.labels import LabelCharCodec
from repro.config import ArchiveConfig
from repro.earthqube.ingest import metadata_document
from repro.geo import BoundingBox, Rectangle
from repro.store import Collection

from .conftest import print_table

SIZES = [1_000, 5_000, 20_000]
QUERY = Rectangle(BoundingBox(west=12.0, south=47.0, east=13.5, north=48.5))


def _metadata_docs(n: int) -> list[dict]:
    archive = SyntheticArchive.generate(
        ArchiveConfig(num_patches=n, seed=n), with_pixels=False)
    codec = LabelCharCodec()
    return [metadata_document(p, codec) for p in archive]


@pytest.fixture(scope="module")
def geo_collections():
    """Per size: (indexed collection, unindexed collection)."""
    out = {}
    for n in SIZES:
        docs = _metadata_docs(n)
        indexed = Collection("meta_indexed", primary_key="name")
        indexed.create_geo_index("location", precision=4)
        indexed.insert_many(docs)
        plain = Collection("meta_plain", primary_key="name")
        plain.insert_many(docs)
        out[n] = (indexed, plain)
    return out


@pytest.mark.parametrize("n", SIZES)
def test_spatial_query_with_geo_index(benchmark, geo_collections, n):
    indexed, _ = geo_collections[n]
    benchmark.group = f"E11 spatial query @ N={n}"
    result = benchmark(
        lambda: indexed.find({"location": {"$geoIntersects": QUERY}}))
    assert result.plan == "geo_index:location"


@pytest.mark.parametrize("n", SIZES)
def test_spatial_query_collection_scan(benchmark, geo_collections, n):
    _, plain = geo_collections[n]
    benchmark.group = f"E11 spatial query @ N={n}"
    result = benchmark(
        lambda: plain.find({"location": {"$geoIntersects": QUERY}}))
    assert result.plan == "scan"


def test_geo_index_prunes_candidates(benchmark, geo_collections):
    """Identical results; far fewer candidates examined."""
    def run():
        rows = []
        for n in SIZES:
            indexed, plain = geo_collections[n]
            with_index = indexed.find({"location": {"$geoIntersects": QUERY}})
            without = plain.find({"location": {"$geoIntersects": QUERY}})
            assert sorted(d["name"] for d in with_index) == \
                   sorted(d["name"] for d in without)
            rows.append([n, len(with_index), with_index.candidates_examined,
                         without.candidates_examined])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E11: geohash index candidate pruning",
                ["collection size", "matches", "candidates (indexed)",
                 "candidates (scan)"], rows)
    for n, _, indexed_candidates, scan_candidates in rows:
        assert indexed_candidates < scan_candidates / 5, \
            f"index must prune most of the {n} documents"
