"""Serving-tier benchmark: throughput/latency vs the unsharded baseline.

Standalone script (not a pytest-benchmark suite): it stands up the serving
primitives over a synthetic packed-code corpus — retrieval speed does not
depend on code semantics — and measures:

1. **baseline** — sequential single-threaded kNN over one monolithic
   ``LinearScanIndex`` (the pre-serving query path),
2. **shard sweep** — sequential kNN through ``ShardedHammingIndex`` at
   several shard counts (scatter-gather parallelism; wins scale with
   physical cores),
3. **batch sweep** — concurrent clients submitting through the
   ``MicroBatcher`` at several batch sizes (query coalescing +
   within-batch single-flight dedup),
4. **cache sweep** — the full cache -> batcher -> shards pipeline under
   query streams with different reuse levels (interactive portals are
   dominated by repeated queries).

The headline number is ``speedup_concurrent_vs_baseline``: the best
full-pipeline concurrent throughput over the single-threaded baseline on
the same stream.  The JSON report is written to ``--out`` (default
stdout).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # tiny CI run
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.index import LinearScanIndex, pack_bits
from repro.serving import (
    CodeQuery,
    LatencyHistogram,
    MicroBatcher,
    QueryResultCache,
    ShardedHammingIndex,
    canonical_code_key,
)


def random_packed_codes(num_items: int, num_bits: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    bits = (rng.random((num_items, num_bits)) < 0.5).astype(np.uint8)
    return pack_bits(bits)


def make_stream(codes: np.ndarray, length: int, distinct_fraction: float,
                seed: int) -> np.ndarray:
    """A query stream with controlled reuse.

    ``distinct_fraction`` of the stream positions introduce a new query;
    the rest re-ask a previously seen one (uniformly).  A warmed cache
    therefore converges to a hit ratio of ``1 - distinct_fraction``.
    """
    rng = np.random.default_rng(seed)
    num_distinct = max(1, int(round(length * distinct_fraction)))
    pool = rng.integers(0, codes.shape[0], num_distinct)
    first_uses = set(rng.choice(length, size=num_distinct, replace=False).tolist())
    stream, used = [], 0
    for position in range(length):
        if position in first_uses or used == 0:
            stream.append(pool[min(used, num_distinct - 1)])
            used = min(used + 1, num_distinct)
        else:
            stream.append(pool[rng.integers(0, used)])
    return codes[np.asarray(stream)]


def run_baseline(index: LinearScanIndex, stream: np.ndarray, k: int) -> dict:
    """Sequential single-threaded scan: one query at a time, no serving."""
    histogram = LatencyHistogram(window=len(stream))
    start = time.perf_counter()
    for query in stream:
        t0 = time.perf_counter()
        index.search_knn(query, k)
        histogram.record(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return {"qps": round(len(stream) / elapsed, 1),
            "wall_seconds": round(elapsed, 4),
            "latency": histogram.summary()}


def run_sharded_sequential(codes: np.ndarray, ids: list, stream: np.ndarray,
                           k: int, num_bits: int, num_shards: int) -> dict:
    with ShardedHammingIndex(num_bits, num_shards) as index:
        index.build(ids, codes)
        start = time.perf_counter()
        for query in stream:
            index.search_knn(query, k)
        elapsed = time.perf_counter() - start
    return {"shards": num_shards,
            "qps": round(len(stream) / elapsed, 1),
            "wall_seconds": round(elapsed, 4)}


def run_concurrent(codes: np.ndarray, ids: list, stream: np.ndarray, k: int,
                   num_bits: int, num_shards: int, batch_size: int,
                   clients: int, cache_entries: int) -> dict:
    """The full pipeline: cache -> micro-batcher -> sharded scatter-gather,
    driven by concurrent client threads."""
    cache = QueryResultCache(max_entries=cache_entries, ttl_seconds=3600.0)
    with ShardedHammingIndex(num_bits, num_shards) as index:
        index.build(ids, codes)
        with MicroBatcher(index.search_batch, max_batch_size=batch_size,
                          max_wait_s=0.002) as batcher:
            def serve(query: np.ndarray) -> None:
                key = canonical_code_key(query, k=k, radius=None)
                if cache.get(key) is not None:
                    return
                results = batcher.submit(CodeQuery(code=query, k=k)).result()
                cache.put(key, tuple(results))

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=clients,
                                    thread_name_prefix="client") as pool:
                list(pool.map(serve, stream, chunksize=8))
            elapsed = time.perf_counter() - start
            batch_stats = batcher.stats
    return {"shards": num_shards, "batch_size": batch_size,
            "clients": clients, "cache_entries": cache_entries,
            "qps": round(len(stream) / elapsed, 1),
            "wall_seconds": round(elapsed, 4),
            "cache": cache.stats.as_dict(),
            "batcher": {"mean_batch_size": batch_stats["mean_batch_size"],
                        "batches": batch_stats["batches"]}}


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--items", type=int, default=20_000,
                        help="corpus size (packed random codes)")
    parser.add_argument("--bits", type=int, default=128)
    parser.add_argument("--queries", type=int, default=1_000,
                        help="length of the query stream")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4, 8])
    parser.add_argument("--batch-sizes", type=int, nargs="+", default=[1, 8, 32])
    parser.add_argument("--distinct-fractions", type=float, nargs="+",
                        default=[1.0, 0.5, 0.1],
                        help="fraction of distinct queries in the stream "
                             "(cache hit ratio converges to 1 - fraction)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON report here (default: stdout)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    args = parser.parse_args(argv)

    if args.smoke:
        args.items, args.queries = 2_000, 200
        args.shards, args.batch_sizes = [1, 4], [1, 8]
        args.distinct_fractions = [1.0, 0.25]

    codes = random_packed_codes(args.items, args.bits, args.seed)
    ids = list(range(args.items))
    # The headline stream has realistic reuse: the *most* distinct sweep
    # value is used for the cache-free comparisons, the least for headline.
    base_stream = make_stream(codes, args.queries, 1.0, args.seed)

    baseline_index = LinearScanIndex(args.bits)
    baseline_index.build(ids, codes)
    print(f"[bench_serving] corpus={args.items} bits={args.bits} "
          f"queries={args.queries} k={args.k}", file=sys.stderr)
    baseline = run_baseline(baseline_index, base_stream, args.k)
    print(f"[bench_serving] baseline: {baseline['qps']} qps", file=sys.stderr)

    shard_sweep = [run_sharded_sequential(codes, ids, base_stream, args.k,
                                          args.bits, shards)
                   for shards in args.shards]
    for row in shard_sweep:
        print(f"[bench_serving] shards={row['shards']}: {row['qps']} qps "
              "(sequential)", file=sys.stderr)

    mid_shards = args.shards[len(args.shards) // 2]
    batch_sweep = [run_concurrent(codes, ids, base_stream, args.k, args.bits,
                                  mid_shards, batch_size, args.clients,
                                  cache_entries=0)
                   for batch_size in args.batch_sizes]
    for row in batch_sweep:
        print(f"[bench_serving] batch={row['batch_size']}: {row['qps']} qps "
              f"(no cache, {args.clients} clients)", file=sys.stderr)

    best_batch = max(args.batch_sizes)
    cache_sweep = []
    for fraction in args.distinct_fractions:
        stream = make_stream(codes, args.queries, fraction, args.seed + 1)
        row = run_concurrent(codes, ids, stream, args.k, args.bits,
                             mid_shards, best_batch, args.clients,
                             cache_entries=4096)
        row["distinct_fraction"] = fraction
        cache_sweep.append(row)
        print(f"[bench_serving] distinct={fraction}: {row['qps']} qps "
              f"(hit ratio {row['cache']['hit_ratio']})", file=sys.stderr)

    concurrent_best = max(row["qps"] for row in batch_sweep + cache_sweep)
    report = {
        "config": {"items": args.items, "bits": args.bits,
                   "queries": args.queries, "k": args.k,
                   "clients": args.clients, "seed": args.seed,
                   "smoke": args.smoke},
        "baseline_single_threaded": baseline,
        "shard_sweep_sequential": shard_sweep,
        "batch_sweep_concurrent_no_cache": batch_sweep,
        "cache_sweep_concurrent": cache_sweep,
        "concurrent_best_qps": concurrent_best,
        "speedup_concurrent_vs_baseline": round(
            concurrent_best / baseline["qps"], 2),
    }
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"[bench_serving] report written to {args.out}", file=sys.stderr)
    else:
        print(payload)
    print(f"[bench_serving] speedup (best concurrent vs single-threaded "
          f"baseline): x{report['speedup_concurrent_vs_baseline']}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
