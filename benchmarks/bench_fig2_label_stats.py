"""E2 (Figure 2-4): the label-statistics bar chart.

Reproduces the result panel's Label statistics view: occurrence counts with
CLC colors for a query's retrieval, and benchmarks the aggregation path
(search + statistics) at interactive latency.
"""

from repro.earthqube import LabelOperator, QuerySpec

from .conftest import print_table


def _spec() -> QuerySpec:
    return QuerySpec(labels=("Industrial or commercial units",
                             "Water bodies", "Water courses"),
                     label_operator=LabelOperator.SOME)


def test_fig2_statistics_latency(benchmark, bench_system):
    """Search + label-statistics aggregation latency."""
    spec = _spec()

    def run():
        response = bench_system.search(spec)
        return bench_system.statistics_for(response.documents)

    stats = benchmark(run)
    assert stats.total_images > 0


def test_fig2_bar_chart_content(benchmark, bench_system):
    """The chart rows: every selected label appears; colors are CLC colors."""
    spec = _spec()
    response = bench_system.search(spec)
    stats = benchmark.pedantic(
        lambda: bench_system.statistics_for(response.documents),
        rounds=1, iterations=1)

    rows = [[label, count, color] for label, count, color in stats.as_rows()[:10]]
    print_table(f"Figure 2-4 reproduction: label statistics of "
                f"'{spec.describe()}' ({stats.total_images} images)",
                ["label", "count", "color"], rows)

    for selected in spec.labels:
        assert selected in stats.counts, f"selected label {selected!r} missing"
    # Counts bounded by the retrieval size and consistent with totals.
    assert max(stats.counts.values()) <= stats.total_images
    assert stats.dominant(1)[0] == stats.labels[0]
