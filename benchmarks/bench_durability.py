"""Durability cost: WAL write amplification and restart vs rebuild.

Two questions an operator of a durable EarthQube node actually asks:

1. **What does journaling cost per mutation?**  Every logical op appends
   one length-prefixed, CRC-checksummed record to the write-ahead log
   before the in-memory apply.  The fsync policy decides the price:
   ``always`` buys power-loss durability per record, ``interval``
   amortizes the fsync over a window, ``off`` trusts the OS page cache.
   The sweep measures per-append latency, throughput, fsync count, and
   physical write amplification (file bytes / payload bytes) for each
   policy on a representative op mix.

2. **What does the checkpoint buy at restart?**  A node restarting from a
   checkpoint mmaps the packed ``(N, W)`` code matrix and alive mask and
   hands them straight to the index — O(corpus read).  Without it, the
   node must re-extract features for every stored patch, re-hash, and
   rebuild — O(re-embed + rebuild).  At the benchmark's corpus size
   (50k codes) re-embedding everything for real would take minutes, so
   per-patch extraction cost is measured on a sample and extrapolated
   linearly (marked as such in the report); hashing and index build are
   measured in full.  The restored index is checked **byte-identical** to
   the originally built one before any timing is reported.

The headline (and the CI smoke assertion) is ``restore_speedup``:
snapshot-restore must be at least 5x faster than rebuild-from-documents.

The JSON report lands in ``--out`` (default ``BENCH_durability.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_durability.py
    PYTHONPATH=src python benchmarks/bench_durability.py --smoke
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.bigearthnet.archive import SyntheticArchive
from repro.config import ArchiveConfig, MiLaNConfig, TrainConfig
from repro.core.hasher import MiLaNHasher
from repro.features.extractor import FeatureExtractor
from repro.index.mih import MultiIndexHashing
from repro.store.database import Database
from repro.store.snapshot import SnapshotManager
from repro.store.wal import WriteAheadLog, encode_payload

NUM_BITS = 64
NUM_CODES = 50_000
SMOKE_CODES = 8_000
EXTRACT_SAMPLE = 96
WAL_APPENDS = 2_000
SMOKE_WAL_APPENDS = 400
FSYNC_INTERVAL = 8
NUM_QUERIES = 16
K = 10

ARCHIVE = ArchiveConfig(num_patches=EXTRACT_SAMPLE, patch_size_10m=24,
                        patch_size_20m=12, patch_size_60m=4, seed=17)


# --------------------------------------------------------------------- #
# Part 1: WAL write amplification / append latency per fsync policy
# --------------------------------------------------------------------- #

def op_mix(rng: np.random.Generator, count: int) -> list:
    """A representative journal mix: small doc writes + feature payloads."""
    ops = []
    for i in range(count):
        kind = i % 4
        if kind == 0:
            ops.append(("store.insert_one", {
                "collection": "feedback",
                "document": {"text": f"note-{i}", "category": "comment"}}))
        elif kind == 1:
            ops.append(("store.update_one", {
                "collection": "metadata",
                "query": {"name": f"p{i}"},
                "update": {"$set": {"ops_note": f"tag-{i % 97}"}}}))
        elif kind == 2:
            ops.append(("image.delete", {"name": f"p{i}"}))
        else:
            ops.append(("image.update", {
                "name": f"p{i}",
                "features": rng.normal(size=128)}))
    return ops


def bench_wal_policy(policy: str, ops: list, directory: Path) -> dict:
    path = directory / f"wal-{policy}.log"
    fsyncs = {"n": 0}
    wal = WriteAheadLog(path, fsync=policy, fsync_interval=FSYNC_INTERVAL)
    real_sync = wal.sync

    def counting_sync():
        fsyncs["n"] += 1
        real_sync()

    wal.sync = counting_sync
    payload_bytes = sum(
        len(json.dumps(encode_payload(payload), separators=(",", ":"))
            .encode("utf-8"))
        for _, payload in ops)
    start = time.perf_counter()
    for op, payload in ops:
        wal.append(op, payload)
    elapsed = time.perf_counter() - start
    wal.close()
    file_bytes = path.stat().st_size
    return {
        "appends": len(ops),
        "per_append_us": round(elapsed / len(ops) * 1e6, 2),
        "appends_per_s": round(len(ops) / elapsed, 1),
        "fsyncs": fsyncs["n"],
        "payload_bytes": payload_bytes,
        "file_bytes": file_bytes,
        "write_amplification": round(file_bytes / payload_bytes, 4),
    }


# --------------------------------------------------------------------- #
# Part 2: restart — snapshot-restore vs rebuild-from-documents
# --------------------------------------------------------------------- #

def knn_fingerprint(index, queries: np.ndarray) -> list:
    return [[(r.item_id, r.distance) for r in results]
            for results in index.search_knn_batch(queries, K)]


def bench_restart(num_codes: int, directory: Path,
                  rng: np.random.Generator) -> dict:
    # Measured in full: hashing and index build on the real corpus size.
    archive = SyntheticArchive.generate(ARCHIVE)
    extractor = FeatureExtractor()
    start = time.perf_counter()
    sample_features = extractor.extract_many(archive.patches)
    per_patch_extract_s = (time.perf_counter() - start) / len(archive)
    hasher = MiLaNHasher(MiLaNConfig(num_bits=NUM_BITS, hidden_sizes=(32,)),
                         TrainConfig(epochs=2, batch_size=16,
                                     triplets_per_epoch=64))
    hasher.fit(sample_features, archive.label_matrix())

    features = rng.normal(size=(num_codes, sample_features.shape[1]))
    names = [f"p{i}" for i in range(num_codes)]
    start = time.perf_counter()
    codes = hasher.hash_packed(features)
    hash_s = time.perf_counter() - start
    start = time.perf_counter()
    original = MultiIndexHashing(NUM_BITS, 4)
    original.build(names, codes)
    build_s = time.perf_counter() - start

    # The checkpoint this node would restart from: a metadata-scale
    # document store plus the packed code matrix + alive mask sidecars.
    db = Database("node")
    metadata = db.create_collection("metadata", primary_key="name")
    metadata.insert_many([{"name": name, "row": i}
                          for i, name in enumerate(names)])
    manager = SnapshotManager(directory / "checkpoint")
    alive = np.ones(num_codes, dtype=bool)
    start = time.perf_counter()
    manager.write(db, names=names, codes=codes, alive=alive, wal_seq=0)
    checkpoint_s = time.perf_counter() - start

    # Restart path A: load the checkpoint (mmap) and restore the index.
    start = time.perf_counter()
    snapshot = manager.load_latest()
    restored = MultiIndexHashing(NUM_BITS, 4)
    restored.restore(snapshot.names, snapshot.codes,
                     np.flatnonzero(~snapshot.alive))
    restore_s = time.perf_counter() - start

    queries = codes[rng.integers(0, num_codes, size=NUM_QUERIES)]
    if knn_fingerprint(restored, queries) != knn_fingerprint(original,
                                                             queries):
        raise SystemExit("ORACLE MISMATCH: snapshot-restored index differs "
                         "from the originally built one")

    # Restart path B: re-embed + re-hash + rebuild.  Extraction is the
    # extrapolated term; hashing/build were measured in full above.
    rebuild_s = per_patch_extract_s * num_codes + hash_s + build_s
    return {
        "num_codes": num_codes,
        "extract_sample_patches": len(archive),
        "per_patch_extract_ms": round(per_patch_extract_s * 1e3, 3),
        "checkpoint_write_s": round(checkpoint_s, 3),
        "snapshot_restore_s": round(restore_s, 3),
        "rebuild_s": {
            "total_extrapolated": round(rebuild_s, 3),
            "extract_extrapolated": round(per_patch_extract_s * num_codes, 3),
            "hash_measured": round(hash_s, 3),
            "index_build_measured": round(build_s, 3),
        },
        "identical_to_rebuild": True,  # the fingerprint check aborts otherwise
        "restore_speedup": round(rebuild_s / restore_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small corpus for CI")
    parser.add_argument("--out", default="BENCH_durability.json")
    args = parser.parse_args(argv)
    num_codes = SMOKE_CODES if args.smoke else NUM_CODES
    num_appends = SMOKE_WAL_APPENDS if args.smoke else WAL_APPENDS
    rng = np.random.default_rng(41)

    report = {"config": {"num_bits": NUM_BITS, "num_codes": num_codes,
                         "wal_appends": num_appends,
                         "fsync_interval": FSYNC_INTERVAL,
                         "smoke": args.smoke},
              "wal": {}}
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        ops = op_mix(rng, num_appends)
        for policy in ("always", "interval", "off"):
            print(f"[bench_durability] wal fsync={policy} ...", flush=True)
            report["wal"][policy] = bench_wal_policy(policy, ops, directory)
        print(f"[bench_durability] restart at {num_codes} codes ...",
              flush=True)
        report["restart"] = bench_restart(num_codes, directory, rng)

    report["headline"] = {
        "restore_speedup": report["restart"]["restore_speedup"],
        "snapshot_restore_s": report["restart"]["snapshot_restore_s"],
        "fsync_always_per_append_us":
            report["wal"]["always"]["per_append_us"],
        "fsync_interval_per_append_us":
            report["wal"]["interval"]["per_append_us"],
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(json.dumps(report["headline"], indent=2))
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
