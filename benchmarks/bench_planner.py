"""Cost-based planner picks vs every fixed strategy, on a measured grid.

The query planner prices four physical plans per filtered kNN query —
{MIH, linear} x {pre-filter, post-filter} — and is supposed to pick the
one that is actually fastest.  This benchmark checks that claim the only
way that counts: it *measures* all four fixed plans on a corpus-size x
filter-selectivity grid, asks the planner (warmed with workload evidence
exactly as the live system warms it) for its pick, and scores a
**mispick** whenever the picked plan's measured time exceeds the best
fixed plan's by more than 15%.

Every ranking — all four fixed plans, every grid cell — is checked
byte-identical against a brute-force filter-then-rank oracle before any
timing is reported; a mismatch aborts the run.  Plans must only move
work around, never change results.

The JSON report lands in ``--out`` (default ``BENCH_planner.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_planner.py
    PYTHONPATH=src python benchmarks/bench_planner.py --smoke
"""

import argparse
import itertools
import json
import sys
import time

import numpy as np

from bench_filtered_search import clustered_codes, oracle_filtered_knn, timed
from repro.index import MultiIndexHashing
from repro.obs.costs import measure, selectivity_bucket
from repro.obs.workload import WorkloadStats
from repro.planner import QueryPlanner

NUM_BITS = 128
NUM_TABLES = 4
K = 10
NUM_QUERIES = 24
WARMUP_QUERIES = 6
SIZES = [10_000, 50_000]
SELECTIVITIES = [0.01, 0.05, 0.2]
SMOKE_SIZES = [6_000]
SMOKE_SELECTIVITIES = [0.01, 0.2]
#: A pick within this factor of the measured-fastest fixed plan is fine.
MISPICK_TOLERANCE = 1.15

STRATEGY_LABELS = {"pre": "prefilter", "post": "postfilter"}


# --------------------------------------------------------------------- #
# Plan execution
# --------------------------------------------------------------------- #

def execute_plan(index, plan, query, mask, allowed_rows):
    """Run one physical plan the way the execution tier does.

    Both backends run on the same MIH object: ``probe_budget=0`` is the
    planner's "linear" backend (the exact-scan path), any positive budget
    is the MIH radius ladder.  Post-filter plans over-fetch by the plan's
    ``overfetch`` and refill by doubling, exactly like the CBIR tier.
    """
    if plan.filter_mode == "pre":
        results = index.search_knn(query, K, allowed=mask,
                                   probe_budget=plan.probe_budget)
        return [(int(r.item_id), r.distance) for r in results]
    n = len(index)
    fetch = int(plan.overfetch or K)
    while True:
        results = index.search_knn(query, fetch,
                                   probe_budget=plan.probe_budget)
        kept = [(int(r.item_id), r.distance) for r in results
                if int(r.item_id) in allowed_rows]
        if len(kept) >= K or fetch >= n:
            return kept[:K]
        fetch = min(n, fetch * 2)


def fixed_plans(planner, *, corpus_size, selectivity, filter_count):
    """The four forced strategies, as the planner itself prices them."""
    plans = {}
    for backend, mode in itertools.product(("linear", "mih"),
                                           ("pre", "post")):
        choice = planner.plan_similarity(
            corpus_size=corpus_size, k=K, selectivity=selectivity,
            filter_count=filter_count, num_bits=NUM_BITS,
            num_tables=NUM_TABLES, forced_mode=mode, forced_backend=backend)
        plans[choice.chosen.key] = choice.chosen
    return plans


def warm_workload(workload, index, plans, queries, mask, allowed_rows,
                  selectivity):
    """Feed measured per-family cost counters into the workload store —
    the same evidence the live system accumulates — so the planner prices
    observed families from measurements rather than the analytic model."""
    bucket = selectivity_bucket(selectivity)
    for plan in plans.values():
        family = (plan.backend, STRATEGY_LABELS[plan.filter_mode], bucket)
        for query in queries[:WARMUP_QUERIES]:
            start = time.perf_counter()
            with measure() as ledger:
                execute_plan(index, plan, query, mask, allowed_rows)
            workload.record(
                family=family,
                duration_ms=(time.perf_counter() - start) * 1e3,
                costs=ledger.report()["costs"])


# --------------------------------------------------------------------- #
# Grid sweep
# --------------------------------------------------------------------- #

def sweep(sizes, selectivities, rng) -> tuple[dict, list]:
    report: dict = {}
    cells = []
    for n in sizes:
        codes = clustered_codes(n, rng)
        index = MultiIndexHashing(NUM_BITS, NUM_TABLES)
        index.build(list(range(n)), codes)
        queries = codes[rng.integers(0, n, size=NUM_QUERIES)]
        size_report: dict = {}
        for selectivity in selectivities:
            mask = rng.random(n) < selectivity
            if not mask.any():
                mask[rng.integers(0, n)] = True
            allowed_rows = set(np.flatnonzero(mask).tolist())
            filter_count = int(mask.sum())
            oracles = [oracle_filtered_knn(codes, query, mask, K)
                       for query in queries]

            # Fresh per-corpus workload, as a live node would accumulate.
            workload = WorkloadStats()
            planner = QueryPlanner(workload=workload)
            plans = fixed_plans(planner, corpus_size=n,
                                selectivity=selectivity,
                                filter_count=filter_count)
            warm_workload(workload, index, plans, queries, mask,
                          allowed_rows, selectivity)

            cell: dict = {"allowed_rows": filter_count, "fixed": {}}
            timings = {}
            for key, plan in plans.items():
                rankings = [execute_plan(index, plan, query, mask,
                                         allowed_rows)
                            for query in queries]
                if rankings != oracles:
                    raise SystemExit(
                        f"ranking mismatch vs oracle: plan={key} "
                        f"n={n} selectivity={selectivity}")
                seconds = timed(lambda plan=plan: [
                    execute_plan(index, plan, query, mask, allowed_rows)
                    for query in queries])
                timings[key] = seconds / NUM_QUERIES
                cell["fixed"][key] = {
                    "ms_per_query": round(timings[key] * 1e3, 4),
                    "predicted_ns": round(plan.predicted_ns, 1),
                    "identical_to_oracle": True,
                }

            plan_s = timed(lambda: [planner.plan_similarity(
                corpus_size=n, k=K, selectivity=selectivity,
                filter_count=filter_count, num_bits=NUM_BITS,
                num_tables=NUM_TABLES) for _ in range(NUM_QUERIES)])
            choice = planner.plan_similarity(
                corpus_size=n, k=K, selectivity=selectivity,
                filter_count=filter_count, num_bits=NUM_BITS,
                num_tables=NUM_TABLES)
            picked = choice.chosen.key
            best_key = min(timings, key=timings.get)
            worst_key = max(timings, key=timings.get)
            mispick = timings[picked] > MISPICK_TOLERANCE * timings[best_key]
            cell["planner"] = {
                "picked": picked,
                "estimator": choice.chosen.estimator,
                "ms_per_query": round(timings[picked] * 1e3, 4),
                "planning_overhead_us_per_query":
                    round(plan_s / NUM_QUERIES * 1e6, 2),
                "measured_best": best_key,
                "vs_best_fixed": round(timings[picked] / timings[best_key], 3),
                "vs_worst_fixed_speedup":
                    round(timings[worst_key] / timings[picked], 2),
                "mispick": mispick,
            }
            cells.append(cell)
            size_report[str(selectivity)] = cell
        report[str(n)] = size_report
    return report, cells


# --------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------- #

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_planner.json",
                        help="JSON report path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    parser.add_argument("--seed", type=int, default=20220711)
    args = parser.parse_args(argv)
    sizes = SMOKE_SIZES if args.smoke else SIZES
    selectivities = SMOKE_SELECTIVITIES if args.smoke else SELECTIVITIES
    rng = np.random.default_rng(args.seed)

    grid, cells = sweep(sizes, selectivities, rng)

    mispicks = sum(cell["planner"]["mispick"] for cell in cells)
    largest = str(max(sizes))
    most_selective = str(min(selectivities))
    headline_cell = grid[largest][most_selective]
    report = {
        "config": {"num_bits": NUM_BITS, "num_tables": NUM_TABLES, "k": K,
                   "num_queries": NUM_QUERIES,
                   "warmup_queries": WARMUP_QUERIES,
                   "mispick_tolerance": MISPICK_TOLERANCE,
                   "sizes": sizes, "selectivities": selectivities,
                   "seed": args.seed, "smoke": args.smoke},
        "grid": grid,
        "mispick_rate": round(mispicks / len(cells), 3),
        "headline": {
            "corpus": int(largest),
            "selectivity": float(most_selective),
            "cells": len(cells),
            "mispicks": mispicks,
            "identical_to_oracle": True,
            "planner_picked": headline_cell["planner"]["picked"],
            "planner_vs_worst_fixed_speedup":
                headline_cell["planner"]["vs_worst_fixed_speedup"],
            "max_vs_best_fixed": max(cell["planner"]["vs_best_fixed"]
                                     for cell in cells),
        },
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[bench_planner] {len(cells)} cells, {mispicks} mispicks "
          f"(rate {report['mispick_rate']}); n={largest} "
          f"selectivity={most_selective}: picked "
          f"{report['headline']['planner_picked']}, "
          f"x{report['headline']['planner_vs_worst_fixed_speedup']} vs "
          f"worst fixed (all rankings oracle-identical); "
          f"report -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
