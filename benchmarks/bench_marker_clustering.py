"""E14: map-view marker clustering across zoom levels.

The UI clusters markers into groups when zoomed out; clustering must stay
interactive for result sets up to the render cap and beyond.  Expected
shape: latency is linear in marker count and flat across zooms; cluster
counts grow monotonically with zoom.
"""

import numpy as np
import pytest

from repro.earthqube.markers import Marker, MarkerClusterer

from .conftest import print_table


@pytest.fixture(scope="module")
def many_markers():
    rng = np.random.default_rng(11)
    return [
        Marker(f"m{i}", float(rng.uniform(-10, 31)), float(rng.uniform(36, 70)))
        for i in range(10_000)
    ]


@pytest.mark.parametrize("zoom", [3, 6, 10, 14])
def test_clustering_latency(benchmark, many_markers, zoom):
    clusterer = MarkerClusterer(zoom)
    benchmark.group = "E14 cluster 10k markers"
    clusters = benchmark(lambda: clusterer.cluster(many_markers))
    assert sum(c.count for c in clusters) == len(many_markers)


def test_cluster_counts_by_zoom(benchmark, many_markers):
    """Cluster-group counts per zoom (the zoomed-out -> zoomed-in series)."""
    def run():
        return [[zoom, len(MarkerClusterer(zoom).cluster(many_markers))]
                for zoom in (2, 4, 6, 8, 10, 12, 14)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E14: marker cluster groups by zoom (10k markers)",
                ["zoom", "clusters"], rows)
    counts = [r[1] for r in rows]
    assert counts == sorted(counts), "zooming in must only split clusters"
    assert counts[0] < 200 and counts[-1] > 1000
