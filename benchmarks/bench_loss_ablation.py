"""E10: ablation of the three MiLaN losses.

Trains four configurations — triplet only, +bit-balance, +quantization, and
the full objective — and reports mAP@10, bit entropy (what the balance loss
buys), and quantization error (what the quantization loss buys).  Expected
shape: each auxiliary loss improves its own diagnostic without hurting mAP;
the paper's full combination is the best-rounded configuration.
"""

import numpy as np
import pytest

from repro.config import MiLaNConfig
from repro.core import MiLaNHasher
from repro.core.binarize import bit_entropy, quantization_error
from repro.core.similarity import shares_label_matrix
from repro.index import LinearScanIndex
from repro.metrics import mean_average_precision

from .conftest import print_table, train_config

ABLATIONS = {
    "triplet only": dict(weight_bit_balance=0.0, weight_independence=0.0,
                         weight_quantization=0.0),
    "+ bit balance": dict(weight_quantization=0.0),
    "+ quantization": dict(weight_bit_balance=0.0, weight_independence=0.0),
    "full (paper)": dict(),
}


@pytest.fixture(scope="module")
def ablated_hashers(bench_features, bench_labels):
    out = {}
    for name, overrides in ABLATIONS.items():
        config = MiLaNConfig(num_bits=48, hidden_sizes=(128, 64), **overrides)
        hasher = MiLaNHasher(config, train_config(epochs=10))
        out[name] = hasher.fit(bench_features, bench_labels)
    return out


def _metrics(hasher, features, labels):
    continuous = hasher.hash_continuous(features)
    bits = hasher.hash_bits(features)
    codes = hasher.hash_packed(features)
    index = LinearScanIndex(hasher.num_bits)
    index.build(list(range(len(features))), codes)
    similar = shares_label_matrix(labels)
    ranked = []
    for q in range(0, len(features), len(features) // 50):
        results = [r for r in index.search_knn(codes[q], 11) if r.item_id != q][:10]
        ranked.append(np.array([float(similar[q, r.item_id]) for r in results]))
    return (mean_average_precision(ranked, k=10),
            bit_entropy(bits),
            quantization_error(continuous))


def test_loss_ablation_table(benchmark, ablated_hashers, bench_features, bench_labels):
    """The E10 table: per-ablation quality and code diagnostics."""
    def run():
        rows = []
        for name, hasher in ablated_hashers.items():
            score, entropy, qerror = _metrics(hasher, bench_features, bench_labels)
            rows.append([name, f"{score:.3f}", f"{entropy:.3f}", f"{qerror:.3f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("E10: MiLaN loss ablation (48 bits)",
                ["configuration", "mAP@10", "bit entropy", "quant. error"], rows)

    by_name = {row[0]: row for row in rows}
    # Quantization loss reduces quantization error vs triplet-only.
    assert float(by_name["+ quantization"][3]) <= float(by_name["triplet only"][3])
    # Full configuration keeps balanced bits.
    assert float(by_name["full (paper)"][2]) > 0.85
    # Everything beats chance.
    random_rate = float(shares_label_matrix(bench_labels).mean())
    assert all(float(row[1]) > random_rate for row in rows)


@pytest.mark.parametrize("name", list(ABLATIONS))
def test_ablation_inference_latency(benchmark, ablated_hashers, bench_features, name):
    """Hashing throughput is unchanged by the training-time ablation."""
    hasher = ablated_hashers[name]
    benchmark.group = "E10 inference latency"
    benchmark(lambda: hasher.hash_packed(bench_features[:100]))
