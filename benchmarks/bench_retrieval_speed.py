"""E6: hash-table lookups vs. scans — the "real-time search" claim.

Two modes:

**pytest-benchmark suite** (the original E6 experiment): per-query latency
of four retrieval paths across archive sizes — hash-table bucket
enumeration, Multi-Index Hashing, packed linear scan, float brute force.

**Standalone report mode** (``python benchmarks/bench_retrieval_speed.py``):
old-vs-new evidence for the vectorized MIH core and the batch query
engine.  A faithful copy of the pre-CSR dict-based MIH (``_LegacyMIH``) is
measured against the array-native implementation on the same corpora:

* build time (dict ``setdefault`` loop vs vectorized CSR layout),
* single-query radius latency (per-query ``itertools.combinations``
  bucket enumeration vs cached flip-mask probing),
* batch-of-B kNN throughput (sequential single-query loop vs
  ``search_knn_batch``).

Every measured search result is checked **byte-identical** against the
``LinearScanIndex`` oracle before any timing is reported; a mismatch
aborts the run.  The JSON report lands in ``--out``
(default ``BENCH_retrieval_speed.json``).

Corpora are cluster-structured (centers + a few flipped bits), the shape
a trained hasher emits: uniform random codes have no neighbors at small
radii and push kNN into the degenerate near-exhaustive-radius regime for
*any* MIH implementation, old or new.

Usage::

    PYTHONPATH=src python benchmarks/bench_retrieval_speed.py
    PYTHONPATH=src python benchmarks/bench_retrieval_speed.py --smoke
"""

import argparse
import json
import sys
import time
from itertools import combinations

import numpy as np

from repro.index import LinearScanIndex, MultiIndexHashing, pack_bits
from repro.index.codes import unpack_bits
from repro.index.hamming import hamming_distances_to_query
from repro.index.results import SearchResult

try:
    import pytest
except ImportError:  # standalone report mode works without pytest
    pytest = None

if pytest is not None:
    try:
        from repro.baselines import BruteForceFeatureIndex
        from repro.index import HashTableIndex

        from .conftest import random_packed_codes
    except ImportError:  # running as a standalone script, not under pytest
        pytest = None

SIZES = [2_000, 10_000, 50_000]
NUM_BITS = 128


# --------------------------------------------------------------------- #
# pytest-benchmark suite (E6)
# --------------------------------------------------------------------- #

if pytest is not None:
    @pytest.fixture(scope="module")
    def speed_setup():
        """Indexes of each kind at every archive size, built once."""
        setups = {}
        for n in SIZES:
            codes = random_packed_codes(n, NUM_BITS, seed=n)
            ids = np.arange(n)
            table = HashTableIndex(NUM_BITS)
            table.add_many(ids.tolist(), codes)
            mih = MultiIndexHashing(NUM_BITS, num_tables=4)
            mih.build(ids.tolist(), codes)
            scan = LinearScanIndex(NUM_BITS)
            scan.build(ids.tolist(), codes)
            rng = np.random.default_rng(7)
            floats = rng.standard_normal((n, 130))
            brute = BruteForceFeatureIndex()
            brute.build(ids.tolist(), floats)
            setups[n] = {"codes": codes, "table": table, "mih": mih,
                         "scan": scan, "brute": brute, "floats": floats}
        return setups

    @pytest.mark.parametrize("n", SIZES)
    def test_hashtable_bucket_lookup(benchmark, speed_setup, n):
        """Paper's structure: bucket probes within Hamming radius 1."""
        setup = speed_setup[n]
        query = setup["codes"][0]
        benchmark.group = f"E6 retrieval @ N={n}"
        benchmark(lambda: setup["table"].search_radius(query, 1))

    @pytest.mark.parametrize("n", SIZES)
    def test_mih_radius2(benchmark, speed_setup, n):
        """Multi-index hashing at the demo's radius 2."""
        setup = speed_setup[n]
        query = setup["codes"][0]
        benchmark.group = f"E6 retrieval @ N={n}"
        benchmark(lambda: setup["mih"].search_radius(query, 2))

    @pytest.mark.parametrize("n", SIZES)
    def test_mih_radius2_batch64(benchmark, speed_setup, n):
        """The batch engine: 64 radius-2 queries in one vectorized pass."""
        setup = speed_setup[n]
        queries = setup["codes"][:64]
        benchmark.group = f"E6 retrieval @ N={n}"
        benchmark(lambda: setup["mih"].search_radius_batch(queries, 2))

    @pytest.mark.parametrize("n", SIZES)
    def test_packed_linear_scan(benchmark, speed_setup, n):
        """O(N) popcount scan over packed codes."""
        setup = speed_setup[n]
        query = setup["codes"][0]
        benchmark.group = f"E6 retrieval @ N={n}"
        benchmark(lambda: setup["scan"].search_knn(query, 10))

    @pytest.mark.parametrize("n", SIZES)
    def test_float_brute_force(benchmark, speed_setup, n):
        """No hashing: exact kNN over 130-d float features."""
        setup = speed_setup[n]
        query = setup["floats"][0]
        benchmark.group = f"E6 retrieval @ N={n}"
        benchmark(lambda: setup["brute"].search_knn(query, 10))

    def test_hash_lookup_latency_flat_in_archive_size(benchmark, speed_setup):
        """The headline claim, asserted: bucket-lookup latency grows far
        slower than linear-scan latency as N goes 2k -> 50k."""
        def best_of(callable_, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                callable_()
                best = min(best, time.perf_counter() - start)
            return best

        small, large = SIZES[0], SIZES[-1]
        q_small = speed_setup[small]["codes"][0]
        q_large = speed_setup[large]["codes"][0]

        def measure():
            table_growth = (
                best_of(lambda: speed_setup[large]["table"].search_radius(q_large, 1))
                / best_of(lambda: speed_setup[small]["table"].search_radius(q_small, 1)))
            scan_growth = (
                best_of(lambda: speed_setup[large]["scan"].search_knn(q_large, 10))
                / best_of(lambda: speed_setup[small]["scan"].search_knn(q_small, 10)))
            return table_growth, scan_growth

        table_growth, scan_growth = benchmark.pedantic(measure, rounds=1, iterations=1)
        print(f"\nE6 growth small->large (x{large // small} items): "
              f"hash-table x{table_growth:.2f}, linear scan x{scan_growth:.2f}")
        assert table_growth < scan_growth, \
            "bucket lookups must scale better than linear scans"


# --------------------------------------------------------------------- #
# Standalone report mode: old-vs-new MIH + batch engine evidence
# --------------------------------------------------------------------- #

def _bits_to_int(bits: np.ndarray) -> int:
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


class _LegacyMIH:
    """The pre-refactor dict-based MIH, kept verbatim for comparison.

    Per-row ``dict.setdefault`` build, per-query ``itertools.combinations``
    bucket enumeration, Python set unions for candidates — the hot path
    this PR replaced.  Search results are identical to the new
    implementation (both are exact); only the cost differs.
    """

    def __init__(self, num_bits: int, num_tables: int = 4) -> None:
        self.num_bits = num_bits
        self.num_tables = num_tables
        base = num_bits // num_tables
        extra = num_bits % num_tables
        sizes = [base + (1 if i < extra else 0) for i in range(num_tables)]
        starts = np.cumsum([0] + sizes[:-1])
        self._spans = [(int(s), int(s + size)) for s, size in zip(starts, sizes)]
        self._tables = [{} for _ in range(num_tables)]
        self._codes = None
        self._ids = []

    def build(self, item_ids, codes) -> None:
        codes = np.asarray(codes, dtype=np.uint64)
        self._codes = codes
        self._ids = list(item_ids)
        self._tables = [{} for _ in range(self.num_tables)]
        bits = unpack_bits(codes, self.num_bits)
        for table, (start, stop) in zip(self._tables, self._spans):
            substrings = bits[:, start:stop]
            weights = (1 << np.arange(stop - start, dtype=np.uint64))
            keys = (substrings.astype(np.uint64) * weights).sum(axis=1)
            for row, key in enumerate(keys.tolist()):
                table.setdefault(key, []).append(row)

    def _candidate_rows(self, query_bits, substring_radius):
        candidates = set()
        for table, (start, stop) in zip(self._tables, self._spans):
            sub = query_bits[start:stop]
            width = stop - start
            base_key = _bits_to_int(sub)
            keys = [base_key]
            for flips in range(1, substring_radius + 1):
                for positions in combinations(range(width), flips):
                    key = base_key
                    for p in positions:
                        key ^= 1 << p
                    keys.append(key)
            for key in keys:
                rows = table.get(key)
                if rows:
                    candidates.update(rows)
        return candidates

    def search_radius(self, code, radius):
        query_bits = unpack_bits(np.asarray(code, dtype=np.uint64), self.num_bits)
        substring_radius = radius // self.num_tables
        rows = self._candidate_rows(query_bits, substring_radius)
        results = []
        if rows:
            row_array = np.fromiter(rows, dtype=np.int64, count=len(rows))
            distances = hamming_distances_to_query(
                self._codes[row_array], np.asarray(code, dtype=np.uint64))
            within = distances <= radius
            order = np.lexsort((row_array[within], distances[within]))
            for row, distance in zip(row_array[within][order],
                                     distances[within][order]):
                results.append(SearchResult(self._ids[int(row)], int(distance)))
        return results

    def search_knn(self, code, k):
        radius = 0
        while True:
            results = self.search_radius(code, radius)
            if len(results) >= k or radius >= self.num_bits:
                return results[:k]
            radius = min(self.num_bits, radius + self.num_tables)


def clustered_codes(num_items: int, num_bits: int, seed: int) -> np.ndarray:
    """Cluster-structured packed codes (what a trained hasher emits)."""
    rng = np.random.default_rng(seed)
    num_centers = max(32, num_items // 64)
    centers = (rng.random((num_centers, num_bits)) < 0.5).astype(np.uint8)
    rows = centers[rng.integers(0, num_centers, num_items)]
    flips = rng.integers(0, 5, num_items)
    for row in range(num_items):
        positions = rng.choice(num_bits, size=flips[row], replace=False)
        rows[row, positions] ^= 1
    return pack_bits(rows)


def _pairs(results):
    return [(r.item_id, r.distance) for r in results]


def _require_identical(label: str, actual, expected) -> None:
    if _pairs(actual) != _pairs(expected):
        raise AssertionError(f"result mismatch against oracle in {label}")


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_one_size(num_items: int, num_bits: int, num_tables: int,
                   radii: list, k: int, batch_size: int, num_queries: int,
                   repeats: int, seed: int) -> dict:
    codes = clustered_codes(num_items, num_bits, seed)
    ids = list(range(num_items))
    rng = np.random.default_rng(seed + 1)
    queries = codes[rng.integers(0, num_items, num_queries)]
    batch_queries = codes[rng.integers(0, num_items, batch_size)]

    oracle = LinearScanIndex(num_bits)
    oracle.build(ids, codes)

    # Build: dict setdefault loop vs vectorized CSR layout.
    legacy = _LegacyMIH(num_bits, num_tables)
    legacy_build = _best_of(lambda: legacy.build(ids, codes), repeats)
    new = MultiIndexHashing(num_bits, num_tables)
    new_build = _best_of(lambda: new.build(ids, codes), repeats)

    # Single-query radius latency, results enforced against the oracle.
    single_query = []
    for radius in radii:
        for query in queries:
            expected = oracle.search_radius(query, radius)
            _require_identical(f"legacy radius={radius}",
                               legacy.search_radius(query, radius), expected)
            _require_identical(f"new radius={radius}",
                               new.search_radius(query, radius), expected)
        legacy_s = _best_of(
            lambda: [legacy.search_radius(q, radius) for q in queries], repeats)
        new_s = _best_of(
            lambda: [new.search_radius(q, radius) for q in queries], repeats)
        single_query.append({
            "radius": radius,
            "legacy_ms_per_query": round(legacy_s / num_queries * 1e3, 4),
            "new_ms_per_query": round(new_s / num_queries * 1e3, 4),
            "speedup": round(legacy_s / new_s, 2),
        })

    # Batch kNN throughput: sequential single-query loop vs one batch call.
    expected_knn = [oracle.search_knn(q, k) for q in batch_queries]
    sequential = [new.search_knn(q, k) for q in batch_queries]
    batched = new.search_knn_batch(batch_queries, k)
    for label, got in (("sequential knn", sequential), ("batch knn", batched)):
        for got_one, expected_one in zip(got, expected_knn):
            _require_identical(label, got_one, expected_one)
    sequential_s = _best_of(
        lambda: [new.search_knn(q, k) for q in batch_queries], repeats)
    batch_s = _best_of(lambda: new.search_knn_batch(batch_queries, k), repeats)
    linear_batch_s = _best_of(
        lambda: oracle.search_knn_batch(batch_queries, k), repeats)

    return {
        "items": num_items,
        "build": {
            "legacy_seconds": round(legacy_build, 4),
            "new_seconds": round(new_build, 4),
            "speedup": round(legacy_build / new_build, 2),
        },
        "single_query_radius": single_query,
        "batch_knn": {
            "k": k,
            "batch_size": batch_size,
            "sequential_qps": round(batch_size / sequential_s, 1),
            "batch_qps": round(batch_size / batch_s, 1),
            "speedup": round(sequential_s / batch_s, 2),
            "linear_scan_batch_qps": round(batch_size / linear_batch_s, 1),
        },
        "identical_to_oracle": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=SIZES)
    parser.add_argument("--bits", type=int, default=NUM_BITS)
    parser.add_argument("--tables", type=int, default=4)
    parser.add_argument("--radii", type=int, nargs="+", default=[2, 4, 8])
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--queries", type=int, default=32,
                        help="queries per single-query latency measurement")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument("--out", type=str, default="BENCH_retrieval_speed.json")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI smoke runs")
    args = parser.parse_args(argv)

    if args.smoke:
        args.sizes, args.radii = [2_000, 10_000], [2, 4]
        args.queries, args.repeats = 16, 2

    sizes = {}
    for num_items in args.sizes:
        print(f"[bench_retrieval] N={num_items} ...", file=sys.stderr)
        row = bench_one_size(num_items, args.bits, args.tables, args.radii,
                             args.k, args.batch_size, args.queries,
                             args.repeats, args.seed)
        sizes[str(num_items)] = row
        print(f"[bench_retrieval] N={num_items}: build x{row['build']['speedup']}, "
              f"batch-of-{args.batch_size} kNN x{row['batch_knn']['speedup']} "
              f"({row['batch_knn']['sequential_qps']} -> "
              f"{row['batch_knn']['batch_qps']} qps)", file=sys.stderr)

    largest = sizes[str(max(args.sizes))]
    report = {
        "config": {"sizes": args.sizes, "bits": args.bits,
                   "tables": args.tables, "radii": args.radii, "k": args.k,
                   "batch_size": args.batch_size, "queries": args.queries,
                   "repeats": args.repeats, "seed": args.seed,
                   "smoke": args.smoke},
        "sizes": sizes,
        "headline": {
            "build_speedup_at_largest": largest["build"]["speedup"],
            "batch_knn_speedup_at_largest": largest["batch_knn"]["speedup"],
        },
    }
    payload = json.dumps(report, indent=2)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
        print(f"[bench_retrieval] report written to {args.out}", file=sys.stderr)
    else:
        print(payload)
    print(f"[bench_retrieval] headline: build x"
          f"{report['headline']['build_speedup_at_largest']}, batch kNN x"
          f"{report['headline']['batch_knn_speedup_at_largest']}",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
