"""E6: hash-table lookups vs. scans — the "real-time search" claim.

The paper's motivation for hashing: bucket lookups within a small Hamming
radius are (near-)constant in archive size, while any scan is O(N).  We
measure per-query latency of four retrieval paths across archive sizes:

* hash-table bucket enumeration (radius 1) — the paper's structure,
* Multi-Index Hashing (radius 2),
* packed-code linear scan (the FAISS-flat equivalent),
* float-feature brute force (no hashing at all).

Expected shape: the first two stay flat as N grows; the scans grow linearly
(visible in the pytest-benchmark table grouped by N).
"""

import numpy as np
import pytest

from repro.baselines import BruteForceFeatureIndex
from repro.index import HashTableIndex, LinearScanIndex, MultiIndexHashing

from .conftest import random_packed_codes

SIZES = [2_000, 10_000, 50_000]
NUM_BITS = 128


@pytest.fixture(scope="module")
def speed_setup():
    """Indexes of each kind at every archive size, built once."""
    setups = {}
    for n in SIZES:
        codes = random_packed_codes(n, NUM_BITS, seed=n)
        ids = np.arange(n)
        table = HashTableIndex(NUM_BITS)
        table.add_many(ids.tolist(), codes)
        mih = MultiIndexHashing(NUM_BITS, num_tables=4)
        mih.build(ids.tolist(), codes)
        scan = LinearScanIndex(NUM_BITS)
        scan.build(ids.tolist(), codes)
        rng = np.random.default_rng(7)
        floats = rng.standard_normal((n, 130))
        brute = BruteForceFeatureIndex()
        brute.build(ids.tolist(), floats)
        setups[n] = {"codes": codes, "table": table, "mih": mih,
                     "scan": scan, "brute": brute, "floats": floats}
    return setups


@pytest.mark.parametrize("n", SIZES)
def test_hashtable_bucket_lookup(benchmark, speed_setup, n):
    """Paper's structure: bucket probes within Hamming radius 1."""
    setup = speed_setup[n]
    query = setup["codes"][0]
    benchmark.group = f"E6 retrieval @ N={n}"
    benchmark(lambda: setup["table"].search_radius(query, 1))


@pytest.mark.parametrize("n", SIZES)
def test_mih_radius2(benchmark, speed_setup, n):
    """Multi-index hashing at the demo's radius 2."""
    setup = speed_setup[n]
    query = setup["codes"][0]
    benchmark.group = f"E6 retrieval @ N={n}"
    benchmark(lambda: setup["mih"].search_radius(query, 2))


@pytest.mark.parametrize("n", SIZES)
def test_packed_linear_scan(benchmark, speed_setup, n):
    """O(N) popcount scan over packed codes."""
    setup = speed_setup[n]
    query = setup["codes"][0]
    benchmark.group = f"E6 retrieval @ N={n}"
    benchmark(lambda: setup["scan"].search_knn(query, 10))


@pytest.mark.parametrize("n", SIZES)
def test_float_brute_force(benchmark, speed_setup, n):
    """No hashing: exact kNN over 130-d float features."""
    setup = speed_setup[n]
    query = setup["floats"][0]
    benchmark.group = f"E6 retrieval @ N={n}"
    benchmark(lambda: setup["brute"].search_knn(query, 10))


def test_hash_lookup_latency_flat_in_archive_size(benchmark, speed_setup):
    """The headline claim, asserted: bucket-lookup latency grows far slower
    than linear-scan latency as N goes 2k -> 50k."""
    import time

    def best_of(callable_, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - start)
        return best

    small, large = SIZES[0], SIZES[-1]
    q_small = speed_setup[small]["codes"][0]
    q_large = speed_setup[large]["codes"][0]

    def measure():
        table_growth = (
            best_of(lambda: speed_setup[large]["table"].search_radius(q_large, 1))
            / best_of(lambda: speed_setup[small]["table"].search_radius(q_small, 1)))
        scan_growth = (
            best_of(lambda: speed_setup[large]["scan"].search_knn(q_large, 10))
            / best_of(lambda: speed_setup[small]["scan"].search_knn(q_small, 10)))
        return table_growth, scan_growth

    table_growth, scan_growth = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nE6 growth small->large (x{large // small} items): "
          f"hash-table x{table_growth:.2f}, linear scan x{scan_growth:.2f}")
    assert table_growth < scan_growth, \
        "bucket lookups must scale better than linear scans"
