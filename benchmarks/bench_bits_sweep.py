"""E9: the 128-bit design choice — code length vs quality vs cost.

Trains MiLaN at 16/32/64/128 bits (session fixture) and reports mAP@10,
per-query scan latency, and storage.  Expected shape: quality saturates with
more bits while storage/latency grow linearly in words — the demo's 128 bits
sit at the saturation knee.
"""

import numpy as np
import pytest

from repro.core.similarity import shares_label_matrix
from repro.index import LinearScanIndex
from repro.index.codes import storage_bytes
from repro.metrics import mean_average_precision

from .conftest import print_table

BITS = [16, 32, 64, 128]


def _map_at_10(hasher, features, labels) -> float:
    codes = hasher.hash_packed(features)
    index = LinearScanIndex(hasher.num_bits)
    index.build(list(range(len(features))), codes)
    similar = shares_label_matrix(labels)
    ranked = []
    for q in range(0, len(features), len(features) // 60):
        results = [r for r in index.search_knn(codes[q], 11) if r.item_id != q][:10]
        ranked.append(np.array([float(similar[q, r.item_id]) for r in results]))
    return mean_average_precision(ranked, k=10)


@pytest.mark.parametrize("bits", BITS)
def test_bits_query_latency(benchmark, hashers_by_bits, bench_features, bits):
    """Per-query scan latency at each code length."""
    hasher = hashers_by_bits[bits]
    codes = hasher.hash_packed(bench_features)
    index = LinearScanIndex(bits)
    index.build(list(range(len(bench_features))), codes)
    benchmark.group = "E9 bits sweep: query latency"
    benchmark(lambda: index.search_knn(codes[0], 10))


def test_bits_quality_table(benchmark, hashers_by_bits, bench_features, bench_labels):
    """mAP@10 and storage per code length."""
    def sweep():
        rows = []
        for bits in BITS:
            score = _map_at_10(hashers_by_bits[bits], bench_features, bench_labels)
            rows.append([bits, f"{score:.3f}",
                         storage_bytes(len(bench_features), bits) // 1024])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E9: code length vs retrieval quality",
                ["bits", "mAP@10", "archive KiB"], rows)

    scores = [float(r[1]) for r in rows]
    # Longer codes must not collapse quality; 128 bits >= 16 bits.
    assert scores[-1] >= scores[0] - 0.02
    # All trained lengths beat chance by a wide margin.
    random_rate = float(shares_label_matrix(bench_labels).mean())
    assert min(scores) > random_rate
