"""CORINE Land Cover (CLC) nomenclature as used by BigEarthNet.

BigEarthNet annotates every patch "with multi-labels provided by the CLC map
of 2018 based on its thematically most detailed Level-3 class nomenclature"
(paper, Section 2.1), and EarthQube "groups the labels in a three-level
hierarchy following the structure of the CLC land cover classes nomenclature"
(Section 3.1).  This module encodes that hierarchy for the 43 Level-3 classes
present in BigEarthNet, each with:

* its CLC code (e.g. ``"312"`` for Coniferous forest),
* its Level-1/Level-2 parents,
* a representative display color (used by the label-statistics bar chart:
  "we map each label to a predefined color that is representative of the
  land cover type", Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import UnknownLabelError

LEVEL1 = {
    "1": "Artificial surfaces",
    "2": "Agricultural areas",
    "3": "Forest and semi-natural areas",
    "4": "Wetlands",
    "5": "Water bodies",
}

LEVEL2 = {
    "11": "Urban fabric",
    "12": "Industrial, commercial and transport units",
    "13": "Mine, dump and construction sites",
    "14": "Artificial, non-agricultural vegetated areas",
    "21": "Arable land",
    "22": "Permanent crops",
    "23": "Pastures",
    "24": "Heterogeneous agricultural areas",
    "31": "Forests",
    "32": "Scrub and/or herbaceous vegetation associations",
    "33": "Open spaces with little or no vegetation",
    "41": "Inland wetlands",
    "42": "Maritime wetlands",
    "51": "Inland waters",
    "52": "Marine waters",
}

# (CLC code, label name, display color) — the 43 BigEarthNet Level-3 classes.
# Colors follow the official CLC color scheme (hex).
_LEVEL3: list[tuple[str, str, str]] = [
    ("111", "Continuous urban fabric", "#e6004d"),
    ("112", "Discontinuous urban fabric", "#ff0000"),
    ("121", "Industrial or commercial units", "#cc4df2"),
    ("122", "Road and rail networks and associated land", "#cc0000"),
    ("123", "Port areas", "#e6cccc"),
    ("124", "Airports", "#e6cce6"),
    ("131", "Mineral extraction sites", "#a600cc"),
    ("132", "Dump sites", "#a64dcc"),
    ("133", "Construction sites", "#ff4dff"),
    ("141", "Green urban areas", "#ffa6ff"),
    ("142", "Sport and leisure facilities", "#ffe6ff"),
    ("211", "Non-irrigated arable land", "#ffffa8"),
    ("212", "Permanently irrigated land", "#ffff00"),
    ("213", "Rice fields", "#e6e600"),
    ("221", "Vineyards", "#e68000"),
    ("222", "Fruit trees and berry plantations", "#f2a64d"),
    ("223", "Olive groves", "#e6a600"),
    ("231", "Pastures", "#e6e64d"),
    ("241", "Annual crops associated with permanent crops", "#ffe6a6"),
    ("242", "Complex cultivation patterns", "#ffe64d"),
    ("243", "Land principally occupied by agriculture, with significant areas of"
            " natural vegetation", "#e6cc4d"),
    ("244", "Agro-forestry areas", "#f2cca6"),
    ("311", "Broad-leaved forest", "#80ff00"),
    ("312", "Coniferous forest", "#00a600"),
    ("313", "Mixed forest", "#4dff00"),
    ("321", "Natural grassland", "#ccf24d"),
    ("322", "Moors and heathland", "#a6ff80"),
    ("323", "Sclerophyllous vegetation", "#a6e64d"),
    ("324", "Transitional woodland/shrub", "#a6f200"),
    ("331", "Beaches, dunes, sands", "#e6e6e6"),
    ("332", "Bare rock", "#cccccc"),
    ("333", "Sparsely vegetated areas", "#ccffcc"),
    ("334", "Burnt areas", "#000000"),
    ("411", "Inland marshes", "#a6a6ff"),
    ("412", "Peatbogs", "#4d4dff"),
    ("421", "Salt marshes", "#ccccff"),
    ("422", "Salines", "#e6e6ff"),
    ("423", "Intertidal flats", "#a6a6e6"),
    ("511", "Water courses", "#00ccf2"),
    ("512", "Water bodies", "#80f2e6"),
    ("521", "Coastal lagoons", "#00ffa6"),
    ("522", "Estuaries", "#a6ffe6"),
    ("523", "Sea and ocean", "#e6f2ff"),
]

BIGEARTHNET_LABELS: tuple[str, ...] = tuple(name for _, name, _ in _LEVEL3)
"""The 43 BigEarthNet CLC Level-3 label names, in CLC code order."""


@dataclass(frozen=True)
class CLCClass:
    """One Level-3 CLC class with its position in the hierarchy."""

    code: str
    name: str
    color: str

    @property
    def level1_code(self) -> str:
        return self.code[0]

    @property
    def level2_code(self) -> str:
        return self.code[:2]

    @property
    def level1_name(self) -> str:
        return LEVEL1[self.level1_code]

    @property
    def level2_name(self) -> str:
        return LEVEL2[self.level2_code]


class CLCNomenclature:
    """The three-level CLC hierarchy over BigEarthNet's 43 Level-3 classes.

    Provides name/code/index lookups in both directions plus hierarchy
    navigation (children of a Level-1/Level-2 class), which backs the query
    panel's hierarchical label selector.
    """

    def __init__(self) -> None:
        self._classes = tuple(CLCClass(code, name, color) for code, name, color in _LEVEL3)
        self._by_name = {c.name: c for c in self._classes}
        self._by_code = {c.code: c for c in self._classes}
        self._index_by_name = {c.name: i for i, c in enumerate(self._classes)}

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes)

    @property
    def names(self) -> tuple[str, ...]:
        """All Level-3 label names in canonical (CLC code) order."""
        return tuple(c.name for c in self._classes)

    def by_name(self, name: str) -> CLCClass:
        """Lookup a class by its Level-3 label name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownLabelError(f"unknown CLC label name: {name!r}") from None

    def by_code(self, code: str) -> CLCClass:
        """Lookup a class by its 3-digit CLC code."""
        try:
            return self._by_code[code]
        except KeyError:
            raise UnknownLabelError(f"unknown CLC code: {code!r}") from None

    def index_of(self, name: str) -> int:
        """Dense index of a label name (used by label matrices)."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise UnknownLabelError(f"unknown CLC label name: {name!r}") from None

    def name_of(self, index: int) -> str:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < len(self._classes):
            raise UnknownLabelError(f"label index out of range [0, {len(self._classes)}): {index}")
        return self._classes[index].name

    def color_of(self, name: str) -> str:
        """Display color for the label-statistics bar chart."""
        return self.by_name(name).color

    def level3_under_level1(self, level1_code: str) -> list[CLCClass]:
        """All Level-3 classes under a Level-1 code (e.g. ``"3"``)."""
        if level1_code not in LEVEL1:
            raise UnknownLabelError(f"unknown CLC Level-1 code: {level1_code!r}")
        return [c for c in self._classes if c.level1_code == level1_code]

    def level3_under_level2(self, level2_code: str) -> list[CLCClass]:
        """All Level-3 classes under a Level-2 code (e.g. ``"31"`` Forests)."""
        if level2_code not in LEVEL2:
            raise UnknownLabelError(f"unknown CLC Level-2 code: {level2_code!r}")
        return [c for c in self._classes if c.level2_code == level2_code]

    def expand_selection(self, codes: "list[str] | tuple[str, ...]") -> list[str]:
        """Expand a mixed-level code selection to Level-3 label names.

        The UI lets users tick a Level-1 or Level-2 node to select all its
        Level-3 leaves (the example in the paper: selecting the Level-2 class
        *Forests* selects Broad-leaved, Coniferous, and Mixed forest).
        """
        names: list[str] = []
        seen: set[str] = set()
        for code in codes:
            if code in LEVEL1:
                expansion = self.level3_under_level1(code)
            elif code in LEVEL2:
                expansion = self.level3_under_level2(code)
            else:
                expansion = [self.by_code(code)]
            for cls in expansion:
                if cls.name not in seen:
                    seen.add(cls.name)
                    names.append(cls.name)
        return names

    def validate_names(self, names: "list[str] | tuple[str, ...]") -> list[str]:
        """Validate label names, returning them de-duplicated in input order."""
        out: list[str] = []
        seen: set[str] = set()
        for name in names:
            self.by_name(name)  # raises on unknown
            if name not in seen:
                seen.add(name)
                out.append(name)
        return out


@lru_cache(maxsize=1)
def get_nomenclature() -> CLCNomenclature:
    """The shared, immutable nomenclature instance."""
    return CLCNomenclature()
