"""Synthetic patch generation: pixels that *cause* the labels.

The real BigEarthNet pairs pixels with CLC labels; retrieval experiments only
need the causal link "images sharing land-cover labels have similar spectral
content".  This module enforces that link directly:

* :class:`SpectralSignatureModel` assigns every CLC Level-3 class a 12-band
  Sentinel-2 reflectance signature (plus a radar-roughness scalar for S1),
  derived from physically sensible parameters — vegetation has the red-edge
  ramp and high NIR, water is dark with near-zero NIR/SWIR, bare soil and
  urban fabric are bright in SWIR, burnt areas drop NIR and raise SWIR, etc.
* :class:`PatchSynthesizer` turns a label set into pixels: the patch area is
  partitioned into Voronoi regions (one per label), each region is filled
  with its class signature, spatially correlated noise adds texture, and the
  20 m / 60 m bands are produced by block-averaging the 10 m field — the
  same spatial degradation real multi-resolution sensors exhibit.

Seasonality modulates vegetation signatures (NIR up in summer, down in
winter), so the same label set yields season-distinguishable patches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..config import ArchiveConfig
from ..errors import UnknownLabelError, ValidationError
from ..utils.rng import as_rng
from .clc import get_nomenclature
from .patch import S2_BAND_NAMES, band_resolution


@dataclass(frozen=True)
class ClassSpectralParams:
    """Reflectance/backscatter parameters of one land-cover class.

    ``vis``/``green``/``red`` are visible-band reflectances, ``nir`` and
    ``swir`` the near- and short-wave-infrared plateaus, ``roughness`` the
    normalized C-band radar backscatter level, ``vegetation`` a 0..1 flag
    controlling how strongly the season modulates the NIR plateau.
    """

    vis: float
    green: float
    red: float
    nir: float
    swir: float
    roughness: float
    vegetation: float = 0.0


# name -> (vis, green, red, nir, swir, roughness, vegetation)
_CLASS_PARAMS: dict[str, tuple[float, float, float, float, float, float, float]] = {
    "Continuous urban fabric":            (0.22, 0.22, 0.23, 0.25, 0.30, 0.90, 0.0),
    "Discontinuous urban fabric":         (0.18, 0.19, 0.19, 0.28, 0.26, 0.75, 0.2),
    "Industrial or commercial units":     (0.26, 0.26, 0.27, 0.28, 0.34, 0.85, 0.0),
    "Road and rail networks and associated land": (0.20, 0.20, 0.21, 0.22, 0.28, 0.80, 0.0),
    "Port areas":                         (0.18, 0.18, 0.18, 0.18, 0.25, 0.70, 0.0),
    "Airports":                           (0.22, 0.23, 0.22, 0.30, 0.28, 0.60, 0.1),
    "Mineral extraction sites":           (0.30, 0.30, 0.31, 0.32, 0.38, 0.50, 0.0),
    "Dump sites":                         (0.24, 0.24, 0.25, 0.26, 0.33, 0.55, 0.0),
    "Construction sites":                 (0.28, 0.28, 0.29, 0.30, 0.36, 0.60, 0.0),
    "Green urban areas":                  (0.07, 0.10, 0.05, 0.40, 0.18, 0.35, 0.8),
    "Sport and leisure facilities":       (0.09, 0.12, 0.07, 0.42, 0.20, 0.30, 0.7),
    "Non-irrigated arable land":          (0.12, 0.13, 0.12, 0.35, 0.25, 0.30, 0.9),
    "Permanently irrigated land":         (0.09, 0.11, 0.07, 0.45, 0.16, 0.30, 1.0),
    "Rice fields":                        (0.08, 0.10, 0.06, 0.35, 0.10, 0.20, 1.0),
    "Vineyards":                          (0.11, 0.12, 0.10, 0.32, 0.24, 0.45, 0.7),
    "Fruit trees and berry plantations":  (0.09, 0.11, 0.07, 0.40, 0.20, 0.40, 0.8),
    "Olive groves":                       (0.10, 0.11, 0.09, 0.33, 0.23, 0.40, 0.6),
    "Pastures":                           (0.08, 0.11, 0.06, 0.48, 0.18, 0.25, 1.0),
    "Annual crops associated with permanent crops": (0.10, 0.12, 0.09, 0.38, 0.22, 0.35, 0.8),
    "Complex cultivation patterns":       (0.11, 0.12, 0.10, 0.36, 0.23, 0.35, 0.8),
    "Land principally occupied by agriculture, with significant areas of natural vegetation":
                                          (0.09, 0.11, 0.08, 0.40, 0.20, 0.30, 0.9),
    "Agro-forestry areas":                (0.08, 0.10, 0.07, 0.38, 0.19, 0.40, 0.8),
    "Broad-leaved forest":                (0.05, 0.08, 0.04, 0.50, 0.12, 0.55, 1.0),
    "Coniferous forest":                  (0.04, 0.06, 0.035, 0.35, 0.09, 0.60, 0.6),
    "Mixed forest":                       (0.045, 0.07, 0.038, 0.42, 0.10, 0.58, 0.8),
    "Natural grassland":                  (0.09, 0.12, 0.08, 0.42, 0.20, 0.25, 0.9),
    "Moors and heathland":                (0.07, 0.09, 0.06, 0.30, 0.17, 0.35, 0.6),
    "Sclerophyllous vegetation":          (0.08, 0.10, 0.08, 0.28, 0.20, 0.40, 0.4),
    "Transitional woodland/shrub":        (0.06, 0.08, 0.05, 0.38, 0.15, 0.50, 0.8),
    "Beaches, dunes, sands":              (0.35, 0.36, 0.36, 0.40, 0.45, 0.15, 0.0),
    "Bare rock":                          (0.25, 0.25, 0.26, 0.28, 0.35, 0.70, 0.0),
    "Sparsely vegetated areas":           (0.18, 0.19, 0.17, 0.26, 0.30, 0.35, 0.3),
    "Burnt areas":                        (0.06, 0.06, 0.06, 0.10, 0.22, 0.30, 0.0),
    "Inland marshes":                     (0.06, 0.08, 0.05, 0.25, 0.08, 0.20, 0.7),
    "Peatbogs":                           (0.07, 0.09, 0.07, 0.22, 0.10, 0.25, 0.5),
    "Salt marshes":                       (0.08, 0.10, 0.07, 0.24, 0.10, 0.20, 0.6),
    "Salines":                            (0.30, 0.30, 0.29, 0.28, 0.20, 0.10, 0.0),
    "Intertidal flats":                   (0.10, 0.11, 0.10, 0.12, 0.08, 0.10, 0.0),
    "Water courses":                      (0.07, 0.08, 0.06, 0.03, 0.02, 0.08, 0.0),
    "Water bodies":                       (0.05, 0.06, 0.04, 0.02, 0.01, 0.05, 0.0),
    "Coastal lagoons":                    (0.07, 0.09, 0.05, 0.03, 0.015, 0.06, 0.0),
    "Estuaries":                          (0.08, 0.09, 0.07, 0.04, 0.02, 0.10, 0.0),
    "Sea and ocean":                      (0.05, 0.06, 0.04, 0.015, 0.008, 0.04, 0.0),
}

_SEASON_NIR_FACTOR = {"Summer": 1.10, "Spring": 1.05, "Autumn": 0.90, "Winter": 0.75}
_SEASON_VIS_FACTOR = {"Summer": 1.00, "Spring": 1.00, "Autumn": 1.02, "Winter": 1.08}


class SpectralSignatureModel:
    """Per-class 12-band Sentinel-2 signatures plus S1 roughness."""

    def __init__(self) -> None:
        nomenclature = get_nomenclature()
        missing = set(nomenclature.names) - set(_CLASS_PARAMS)
        if missing:
            raise UnknownLabelError(f"classes without spectral parameters: {sorted(missing)}")
        self._params = {name: ClassSpectralParams(*values)
                        for name, values in _CLASS_PARAMS.items()}
        self._signature_cache: dict[tuple[str, str], np.ndarray] = {}

    def params_of(self, label: str) -> ClassSpectralParams:
        """Raw spectral parameters of a class."""
        try:
            return self._params[label]
        except KeyError:
            raise UnknownLabelError(f"unknown CLC label name: {label!r}") from None

    def signature(self, label: str, season: str = "Summer") -> np.ndarray:
        """The 12-band reflectance signature of ``label`` in ``season``.

        Band order follows :data:`repro.bigearthnet.patch.S2_BAND_NAMES`.
        """
        key = (label, season)
        cached = self._signature_cache.get(key)
        if cached is not None:
            return cached
        p = self.params_of(label)
        nir_factor = _SEASON_NIR_FACTOR.get(season, 1.0)
        vis_factor = _SEASON_VIS_FACTOR.get(season, 1.0)
        # Vegetation reacts to season; inert surfaces do not.
        nir = p.nir * (1.0 + (nir_factor - 1.0) * p.vegetation)
        vis = p.vis * vis_factor
        green = p.green * vis_factor
        red = p.red * vis_factor
        red_edge = [red + (nir - red) * t for t in (0.30, 0.65, 0.85)]
        values = {
            "B01": vis * 0.9,            # coastal aerosol
            "B02": vis,                  # blue
            "B03": green,                # green
            "B04": red,                  # red
            "B05": red_edge[0],          # red edge 1
            "B06": red_edge[1],          # red edge 2
            "B07": red_edge[2],          # red edge 3
            "B08": nir,                  # NIR (10 m)
            "B8A": nir * 0.95,           # narrow NIR
            "B09": nir * 0.55,           # water vapour
            "B11": p.swir,               # SWIR 1
            "B12": p.swir * 0.80,        # SWIR 2
        }
        signature = np.array([values[b] for b in S2_BAND_NAMES], dtype=np.float64)
        self._signature_cache[key] = signature
        return signature

    def signature_matrix(self, labels: "list[str] | tuple[str, ...]",
                         season: str = "Summer") -> np.ndarray:
        """``(len(labels), 12)`` matrix of signatures."""
        return np.stack([self.signature(label, season) for label in labels])

    def roughness(self, label: str) -> float:
        """Normalized C-band radar roughness used for S1 synthesis."""
        return self.params_of(label).roughness


def voronoi_regions(size: int, num_regions: int, rng: np.random.Generator) -> np.ndarray:
    """``(size, size)`` int map assigning each pixel to one of
    ``num_regions`` Voronoi cells with random seeds.

    Guarantees every region id appears at least once (each seed pixel is
    forced to its own region), so every label of a patch owns pixels.
    """
    if num_regions < 1:
        raise ValidationError(f"num_regions must be >= 1, got {num_regions}")
    if num_regions == 1:
        return np.zeros((size, size), dtype=np.int32)
    seeds = rng.uniform(0, size, size=(num_regions, 2))
    ys, xs = np.mgrid[0:size, 0:size]
    # (regions, size, size) squared distances; archives use <= 5 regions so
    # the broadcast stays tiny.
    d2 = ((ys[None, :, :] - seeds[:, 0, None, None]) ** 2
          + (xs[None, :, :] - seeds[:, 1, None, None]) ** 2)
    regions = np.argmin(d2, axis=0).astype(np.int32)
    for region_id, (sy, sx) in enumerate(seeds.astype(int)):
        regions[min(sy, size - 1), min(sx, size - 1)] = region_id
    return regions


def correlated_noise(size: int, smoothing: int, rng: np.random.Generator) -> np.ndarray:
    """Zero-mean, unit-std spatially correlated noise field."""
    field = rng.standard_normal((size, size))
    if smoothing > 1:
        field = ndimage.uniform_filter(field, size=smoothing, mode="reflect")
        std = field.std()
        if std > 0:
            field /= std
    return field


def block_reduce_mean(field: np.ndarray, factor: int) -> np.ndarray:
    """Downsample a square field by averaging ``factor`` x ``factor`` blocks."""
    size = field.shape[0]
    if size % factor != 0:
        raise ValidationError(f"field size {size} not divisible by block factor {factor}")
    out = field.reshape(size // factor, factor, size // factor, factor)
    return out.mean(axis=(1, 3))


class PatchSynthesizer:
    """Turns a label set into Sentinel-2 + Sentinel-1 pixels.

    One synthesizer is reused for a whole archive; it is stateless apart
    from the shared signature model, so calls are independent given the RNG.
    """

    def __init__(self, config: "ArchiveConfig | None" = None,
                 model: "SpectralSignatureModel | None" = None) -> None:
        self.config = config or ArchiveConfig()
        self.model = model or SpectralSignatureModel()

    def synthesize(self, labels: "tuple[str, ...] | list[str]", season: str,
                   rng: "np.random.Generator | int | None" = None,
                   ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Generate ``(s2_bands, s1_bands)`` for a label set.

        Returns dicts keyed by band name; S2 arrays are at the band's native
        resolution, S1 arrays at 10 m.  All values are float32 in [0, 1].
        """
        if not labels:
            raise ValidationError("cannot synthesize a patch with no labels")
        rng = as_rng(rng)
        cfg = self.config
        base = cfg.patch_size_10m
        regions = voronoi_regions(base, len(labels), rng)
        signatures = self.model.signature_matrix(list(labels), season)  # (L, 12)

        # Per-pixel signature field at 10 m for all 12 bands: (base, base, 12)
        field = signatures[regions]
        # Shared spatial texture plus a little per-band independent noise.
        texture = correlated_noise(base, cfg.texture_smoothing, rng)
        per_band_jitter = rng.standard_normal(12) * (cfg.noise_sigma * 0.5)
        field = field + texture[:, :, None] * cfg.noise_sigma + per_band_jitter[None, None, :]

        s2_bands: dict[str, np.ndarray] = {}
        for band_index, band_name in enumerate(S2_BAND_NAMES):
            band_field = field[:, :, band_index]
            resolution = band_resolution(band_name)
            if resolution != 10:
                band_field = block_reduce_mean(band_field, resolution // 10)
            s2_bands[band_name] = np.clip(band_field, 0.0, 1.0).astype(np.float32)

        s1_bands: dict[str, np.ndarray] = {}
        if cfg.include_s1:
            rough = np.array([self.model.roughness(label) for label in labels])
            rough_field = rough[regions]
            # Multiplicative speckle, the signature noise of SAR imagery.
            speckle_vv = rng.gamma(shape=4.0, scale=0.25, size=(base, base))
            speckle_vh = rng.gamma(shape=4.0, scale=0.25, size=(base, base))
            vv = rough_field * 0.8 * speckle_vv
            vh = rough_field * 0.35 * speckle_vh
            s1_bands["VV"] = np.clip(vv, 0.0, 1.0).astype(np.float32)
            s1_bands["VH"] = np.clip(vh, 0.0, 1.0).astype(np.float32)
        return s2_bands, s1_bands
