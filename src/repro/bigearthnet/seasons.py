"""Season handling for patch metadata.

EarthQube lets users "filter the data based on the acquisition date range,
satellites, seasons, and labels" (paper, Section 3.1).  BigEarthNet spans
June 2017 through May 2018 — exactly one of each meteorological season —
so seasons are derived from the acquisition date with the usual
meteorological convention (DJF winter, MAM spring, JJA summer, SON autumn).
"""

from __future__ import annotations

from datetime import date, datetime

from ..errors import ValidationError

SEASONS: tuple[str, ...] = ("Winter", "Spring", "Summer", "Autumn")

_SEASON_BY_MONTH = {
    12: "Winter", 1: "Winter", 2: "Winter",
    3: "Spring", 4: "Spring", 5: "Spring",
    6: "Summer", 7: "Summer", 8: "Summer",
    9: "Autumn", 10: "Autumn", 11: "Autumn",
}


def season_of(when: "date | datetime | str") -> str:
    """Meteorological season of a date (or ISO ``YYYY-MM-DD`` string)."""
    if isinstance(when, str):
        try:
            when = date.fromisoformat(when[:10])
        except ValueError:
            raise ValidationError(f"not an ISO date: {when!r}") from None
    if isinstance(when, datetime):
        when = when.date()
    if not isinstance(when, date):
        raise ValidationError(f"expected date/datetime/ISO string, got {type(when).__name__}")
    return _SEASON_BY_MONTH[when.month]


def validate_season(name: str) -> str:
    """Validate (and canonicalize the case of) a season name."""
    canonical = name.strip().capitalize()
    if canonical not in SEASONS:
        raise ValidationError(f"unknown season {name!r}; expected one of {SEASONS}")
    return canonical
