"""The Patch model: one Sentinel-1/Sentinel-2 image pair with metadata.

Mirrors the BigEarthNet layout from the paper (Section 2.1):

* Sentinel-2 keeps 12 of 13 bands (band 10 carries no surface information);
  each patch is 120x120 px for the 10 m bands, 60x60 for 20 m, 20x20 for
  60 m,
* Sentinel-1 contributes dual-polarized VV and VH channels at 10 m,
* each patch carries CLC Level-3 multi-labels, a bounding rectangle, an
  acquisition timestamp, a season, and its country.

Pixel values are float32 top-of-atmosphere-style reflectances in ``[0, 1]``
(S2) and normalized backscatter in ``[0, 1]`` (S1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime

import numpy as np

from ..errors import ShapeError, ValidationError
from ..geo.bbox import BoundingBox

S2_BANDS_10M: tuple[str, ...] = ("B02", "B03", "B04", "B08")
S2_BANDS_20M: tuple[str, ...] = ("B05", "B06", "B07", "B8A", "B11", "B12")
S2_BANDS_60M: tuple[str, ...] = ("B01", "B09")

S2_BAND_NAMES: tuple[str, ...] = (
    "B01", "B02", "B03", "B04", "B05", "B06",
    "B07", "B08", "B8A", "B09", "B11", "B12",
)
"""The 12 Sentinel-2 bands BigEarthNet keeps, in spectral order (B10 excluded)."""

S1_BAND_NAMES: tuple[str, ...] = ("VV", "VH")

RGB_BANDS: tuple[str, str, str] = ("B04", "B03", "B02")
"""Bands combined for displayable true-color renderings (red, green, blue)."""


def band_resolution(band: str) -> int:
    """Ground resolution in metres of a Sentinel-2 band name."""
    if band in S2_BANDS_10M:
        return 10
    if band in S2_BANDS_20M:
        return 20
    if band in S2_BANDS_60M:
        return 60
    raise ValidationError(f"unknown Sentinel-2 band: {band!r}")


def band_shape(band: str, base_size: int = 120) -> tuple[int, int]:
    """Pixel shape of a band for a patch whose 10 m grid is ``base_size``²."""
    resolution = band_resolution(band)
    side = base_size * 10 // resolution
    return (side, side)


@dataclass(eq=False)
class Patch:
    """One archive item: S2 bands + optional S1 bands + metadata.

    Equality is identity (``eq=False``): patches hold numpy arrays, and two
    independently generated patches are never meaningfully "equal".
    """

    name: str
    labels: tuple[str, ...]
    country: str
    bbox: BoundingBox
    acquisition_date: datetime
    season: str
    s2_bands: dict[str, np.ndarray] = field(repr=False)
    s1_bands: dict[str, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("patch name must be non-empty")
        if not self.labels:
            raise ValidationError(f"patch {self.name!r} must carry at least one label")
        missing = [b for b in S2_BAND_NAMES if b not in self.s2_bands]
        if missing:
            raise ValidationError(f"patch {self.name!r} is missing S2 bands: {missing}")
        base = self.s2_bands["B02"].shape[0]
        for band_name, pixels in self.s2_bands.items():
            expected = band_shape(band_name, base)
            if pixels.shape != expected:
                raise ShapeError(
                    f"band {band_name} of patch {self.name!r} has shape "
                    f"{pixels.shape}, expected {expected}")
        for band_name, pixels in self.s1_bands.items():
            if band_name not in S1_BAND_NAMES:
                raise ValidationError(f"unknown Sentinel-1 band: {band_name!r}")
            if pixels.shape != (base, base):
                raise ShapeError(
                    f"S1 band {band_name} of patch {self.name!r} has shape "
                    f"{pixels.shape}, expected {(base, base)}")

    @property
    def base_size(self) -> int:
        """Side length of the 10 m grid (120 for BigEarthNet-sized patches)."""
        return self.s2_bands["B02"].shape[0]

    @property
    def label_set(self) -> frozenset[str]:
        """The labels as a set (order-insensitive comparisons)."""
        return frozenset(self.labels)

    @property
    def has_s1(self) -> bool:
        """True when the patch carries its Sentinel-1 pair."""
        return bool(self.s1_bands)

    def band(self, name: str) -> np.ndarray:
        """A band by name, S2 or S1."""
        if name in self.s2_bands:
            return self.s2_bands[name]
        if name in self.s1_bands:
            return self.s1_bands[name]
        raise ValidationError(f"patch {self.name!r} has no band {name!r}")

    def rgb_stack(self) -> np.ndarray:
        """``(H, W, 3)`` float stack of the RGB bands (no stretching)."""
        return np.stack([self.s2_bands[b] for b in RGB_BANDS], axis=-1)

    def storage_bytes(self) -> int:
        """Total pixel storage of this patch in bytes (all bands)."""
        total = sum(arr.nbytes for arr in self.s2_bands.values())
        total += sum(arr.nbytes for arr in self.s1_bands.values())
        return total
