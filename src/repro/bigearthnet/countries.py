"""The 10 BigEarthNet countries with bounding boxes and land-cover priors.

BigEarthNet patches were "acquired from 10 European countries (i.e., Austria,
Belgium, Finland, Ireland, Kosovo, Lithuania, Luxembourg, Portugal, Serbia,
Switzerland) between June 2017 and May 2018" (paper, Section 2.1).

Each country carries:

* an approximate geographic bounding box (degrees) used to place synthetic
  patches,
* a prior over land-cover *themes* (see :mod:`repro.bigearthnet.synthesis`)
  so the synthetic label distribution has the plausible per-country skew —
  Finland is forest/peatbog-heavy, Portugal has coasts and agriculture,
  Switzerland and Austria contribute bare rock and conifers, etc.,
* a sampling weight roughly proportional to the country's patch share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..geo.bbox import BoundingBox


@dataclass(frozen=True)
class Country:
    """One BigEarthNet acquisition country."""

    name: str
    code: str
    bbox: BoundingBox
    theme_weights: dict[str, float] = field(hash=False)
    sampling_weight: float = 1.0
    coastal: bool = False


COUNTRIES: tuple[Country, ...] = (
    Country(
        name="Austria", code="AT",
        bbox=BoundingBox(west=9.5, south=46.4, east=17.2, north=49.0),
        theme_weights={"forest": 0.30, "alpine": 0.25, "agrarian": 0.25,
                       "urban": 0.10, "inland_water": 0.10},
        sampling_weight=1.2,
    ),
    Country(
        name="Belgium", code="BE",
        bbox=BoundingBox(west=2.5, south=49.5, east=6.4, north=51.5),
        theme_weights={"urban": 0.30, "agrarian": 0.40, "forest": 0.15,
                       "coastal": 0.05, "inland_water": 0.10},
        sampling_weight=0.8, coastal=True,
    ),
    Country(
        name="Finland", code="FI",
        bbox=BoundingBox(west=20.6, south=59.8, east=31.5, north=70.1),
        theme_weights={"forest": 0.45, "wetland": 0.20, "inland_water": 0.20,
                       "agrarian": 0.10, "coastal": 0.05},
        sampling_weight=1.6, coastal=True,
    ),
    Country(
        name="Ireland", code="IE",
        bbox=BoundingBox(west=-10.5, south=51.4, east=-6.0, north=55.4),
        theme_weights={"pastoral": 0.40, "wetland": 0.15, "coastal": 0.20,
                       "agrarian": 0.15, "urban": 0.10},
        sampling_weight=1.0, coastal=True,
    ),
    Country(
        name="Kosovo", code="XK",
        bbox=BoundingBox(west=20.0, south=41.8, east=21.8, north=43.3),
        theme_weights={"agrarian": 0.35, "forest": 0.30, "pastoral": 0.20,
                       "urban": 0.15},
        sampling_weight=0.5,
    ),
    Country(
        name="Lithuania", code="LT",
        bbox=BoundingBox(west=21.0, south=53.9, east=26.8, north=56.4),
        theme_weights={"agrarian": 0.40, "forest": 0.30, "inland_water": 0.10,
                       "wetland": 0.10, "coastal": 0.05, "urban": 0.05},
        sampling_weight=1.0, coastal=True,
    ),
    Country(
        name="Luxembourg", code="LU",
        bbox=BoundingBox(west=5.7, south=49.4, east=6.5, north=50.2),
        theme_weights={"agrarian": 0.35, "forest": 0.30, "urban": 0.25,
                       "pastoral": 0.10},
        sampling_weight=0.3,
    ),
    Country(
        name="Portugal", code="PT",
        bbox=BoundingBox(west=-9.5, south=37.0, east=-6.2, north=42.1),
        theme_weights={"mediterranean": 0.30, "coastal": 0.25, "agrarian": 0.25,
                       "forest": 0.10, "urban": 0.10},
        sampling_weight=1.2, coastal=True,
    ),
    Country(
        name="Serbia", code="RS",
        bbox=BoundingBox(west=18.8, south=42.2, east=23.0, north=46.2),
        theme_weights={"agrarian": 0.40, "forest": 0.25, "pastoral": 0.15,
                       "urban": 0.10, "inland_water": 0.10},
        sampling_weight=1.1,
    ),
    Country(
        name="Switzerland", code="CH",
        bbox=BoundingBox(west=6.0, south=45.8, east=10.5, north=47.8),
        theme_weights={"alpine": 0.35, "forest": 0.20, "pastoral": 0.20,
                       "agrarian": 0.10, "urban": 0.10, "inland_water": 0.05},
        sampling_weight=0.9,
    ),
)

_BY_NAME = {c.name: c for c in COUNTRIES}
_BY_CODE = {c.code: c for c in COUNTRIES}


def by_name(name: str) -> Country:
    """Country lookup by English name; raises ``KeyError`` when unknown."""
    return _BY_NAME[name]


def by_code(code: str) -> Country:
    """Country lookup by ISO-like code; raises ``KeyError`` when unknown."""
    return _BY_CODE[code]


def country_names() -> list[str]:
    """All 10 country names in declaration order."""
    return [c.name for c in COUNTRIES]
