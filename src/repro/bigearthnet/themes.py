"""Land-cover themes: the co-occurrence structure of synthetic labels.

Real CLC labels co-occur in characteristic groups — beaches appear with sea
and coastal lagoons, conifer stands with mixed forest and transitional
woodland, industrial units with urban fabric.  A *theme* is a weighted pool
of Level-3 classes that plausibly share a 1.2 km patch; patch label sets are
sampled from one theme (with a small chance of a cross-theme extra), which
gives the synthetic archive realistic multi-label statistics:

* frequent co-occurrence inside themes (the structure MiLaN's triplet loss
  learns from),
* per-country label skew via :data:`repro.bigearthnet.countries.COUNTRIES`
  theme priors.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_rng
from .clc import get_nomenclature

# theme -> [(label, weight), ...]
THEMES: dict[str, list[tuple[str, float]]] = {
    "urban": [
        ("Discontinuous urban fabric", 3.0),
        ("Continuous urban fabric", 2.0),
        ("Industrial or commercial units", 2.0),
        ("Road and rail networks and associated land", 1.5),
        ("Green urban areas", 1.0),
        ("Sport and leisure facilities", 0.8),
        ("Construction sites", 0.6),
        ("Port areas", 0.5),
        ("Airports", 0.4),
        ("Mineral extraction sites", 0.4),
        ("Dump sites", 0.3),
        ("Water courses", 0.4),
    ],
    "agrarian": [
        ("Non-irrigated arable land", 3.0),
        ("Complex cultivation patterns", 2.0),
        ("Land principally occupied by agriculture, with significant areas of"
         " natural vegetation", 2.0),
        ("Pastures", 1.5),
        ("Permanently irrigated land", 1.0),
        ("Fruit trees and berry plantations", 0.8),
        ("Annual crops associated with permanent crops", 0.8),
        ("Vineyards", 0.7),
        ("Broad-leaved forest", 0.6),
        ("Water courses", 0.4),
        ("Rice fields", 0.3),
    ],
    "pastoral": [
        ("Pastures", 3.0),
        ("Natural grassland", 2.0),
        ("Moors and heathland", 1.2),
        ("Land principally occupied by agriculture, with significant areas of"
         " natural vegetation", 1.0),
        ("Complex cultivation patterns", 0.8),
        ("Agro-forestry areas", 0.5),
        ("Broad-leaved forest", 0.5),
    ],
    "forest": [
        ("Coniferous forest", 3.0),
        ("Broad-leaved forest", 2.5),
        ("Mixed forest", 2.5),
        ("Transitional woodland/shrub", 1.5),
        ("Natural grassland", 0.5),
        ("Water bodies", 0.4),
        ("Moors and heathland", 0.4),
    ],
    "mediterranean": [
        ("Sclerophyllous vegetation", 2.0),
        ("Olive groves", 1.5),
        ("Vineyards", 1.2),
        ("Agro-forestry areas", 1.0),
        ("Broad-leaved forest", 0.8),
        ("Sparsely vegetated areas", 0.7),
        ("Burnt areas", 0.5),
        ("Non-irrigated arable land", 0.6),
    ],
    "alpine": [
        ("Bare rock", 2.0),
        ("Coniferous forest", 2.0),
        ("Natural grassland", 1.5),
        ("Sparsely vegetated areas", 1.5),
        ("Pastures", 1.0),
        ("Moors and heathland", 0.8),
        ("Mixed forest", 0.6),
        ("Water bodies", 0.4),
    ],
    "coastal": [
        ("Sea and ocean", 3.0),
        ("Beaches, dunes, sands", 1.5),
        ("Salt marshes", 0.7),
        ("Coastal lagoons", 0.7),
        ("Intertidal flats", 0.6),
        ("Estuaries", 0.6),
        ("Salines", 0.4),
        ("Port areas", 0.4),
        ("Water courses", 0.4),
        ("Sclerophyllous vegetation", 0.3),
        ("Discontinuous urban fabric", 0.3),
    ],
    "inland_water": [
        ("Water bodies", 3.0),
        ("Water courses", 2.0),
        ("Inland marshes", 1.0),
        ("Peatbogs", 0.8),
        ("Broad-leaved forest", 0.7),
        ("Pastures", 0.6),
        ("Industrial or commercial units", 0.4),
        ("Discontinuous urban fabric", 0.3),
    ],
    "wetland": [
        ("Peatbogs", 2.5),
        ("Inland marshes", 2.0),
        ("Moors and heathland", 1.5),
        ("Transitional woodland/shrub", 1.0),
        ("Water bodies", 1.0),
        ("Coniferous forest", 0.8),
        ("Natural grassland", 0.5),
    ],
}

# Probability of each label-set size 1..5 (few patches carry 5 labels).
_SIZE_PROBS = np.array([0.25, 0.30, 0.25, 0.15, 0.05])

# Chance that one sampled label is replaced by a uniformly random class,
# injecting rare cross-theme co-occurrences.
_CROSS_THEME_PROB = 0.12


def validate_themes() -> None:
    """Assert every theme label exists in the nomenclature (import-time
    sanity; also exercised by tests)."""
    nomenclature = get_nomenclature()
    for theme, pool in THEMES.items():
        for label, weight in pool:
            nomenclature.by_name(label)
            if weight <= 0:
                raise ValidationError(f"theme {theme!r} has non-positive weight for {label!r}")


def sample_theme(theme_weights: dict[str, float], rng: np.random.Generator) -> str:
    """Draw a theme name according to a country's theme prior."""
    names = list(theme_weights)
    if not names:
        raise ValidationError("theme_weights must not be empty")
    weights = np.array([theme_weights[n] for n in names], dtype=np.float64)
    if (weights <= 0).any():
        raise ValidationError("theme weights must be positive")
    weights /= weights.sum()
    return names[int(rng.choice(len(names), p=weights))]


def sample_labels(theme: str, rng: "np.random.Generator | int | None" = None,
                  min_labels: int = 1, max_labels: int = 5) -> tuple[str, ...]:
    """Sample a patch's label set from a theme pool.

    The label count follows :data:`_SIZE_PROBS` truncated to
    ``[min_labels, max_labels]``; labels are drawn without replacement with
    theme weights; with probability :data:`_CROSS_THEME_PROB` one label is
    swapped for a uniformly random class.
    """
    if theme not in THEMES:
        raise ValidationError(f"unknown theme {theme!r}; expected one of {sorted(THEMES)}")
    rng = as_rng(rng)
    pool = THEMES[theme]
    size_probs = _SIZE_PROBS[min_labels - 1:max_labels].copy()
    size_probs /= size_probs.sum()
    count = int(rng.choice(np.arange(min_labels, min_labels + len(size_probs)), p=size_probs))
    count = min(count, len(pool))

    names = [label for label, _ in pool]
    weights = np.array([w for _, w in pool], dtype=np.float64)
    weights /= weights.sum()
    chosen = list(rng.choice(len(names), size=count, replace=False, p=weights))
    labels = [names[i] for i in chosen]

    if rng.random() < _CROSS_THEME_PROB:
        all_names = get_nomenclature().names
        extra = str(rng.choice(all_names))
        if extra not in labels:
            labels[int(rng.integers(len(labels)))] = extra
    return tuple(sorted(set(labels)))
