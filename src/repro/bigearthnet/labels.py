"""Label <-> ASCII character codec (the paper's data-tier optimization).

"To improve the performance of label-based filtering, we map each
(potentially multi-word) CLC label to an ASCII character, thereby avoiding
the manipulation of long strings" (paper, Section 3.2).

:class:`LabelCharCodec` assigns each Level-3 label a single printable ASCII
character and encodes a label *set* as a sorted character string.  Set
operations used by the three filter operators (Some / Exactly / At least &
more) become tiny string/set operations over single characters instead of
comparisons over multi-word strings like
``"Land principally occupied by agriculture, with significant areas of
natural vegetation"``.  Experiment E12 benchmarks this codec against the
raw-string path.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import CodecError
from .clc import CLCNomenclature, get_nomenclature

# Printable, non-quote, non-backslash ASCII starting at 'A' — 43 labels fit
# comfortably in 'A'..'z' (readable in stored documents and debug dumps).
_FIRST_CHAR = ord("A")


class LabelCharCodec:
    """Bijective mapping between CLC Level-3 label names and single chars."""

    def __init__(self, nomenclature: "CLCNomenclature | None" = None) -> None:
        nomenclature = nomenclature or get_nomenclature()
        names = nomenclature.names
        if len(names) > 122 - _FIRST_CHAR + 1:
            raise CodecError(f"cannot map {len(names)} labels into single ASCII characters")
        self._char_by_name: dict[str, str] = {}
        self._name_by_char: dict[str, str] = {}
        for i, name in enumerate(names):
            char = chr(_FIRST_CHAR + i)
            self._char_by_name[name] = char
            self._name_by_char[char] = name

    def __len__(self) -> int:
        return len(self._char_by_name)

    def char_of(self, name: str) -> str:
        """The single-character code of a label name."""
        try:
            return self._char_by_name[name]
        except KeyError:
            raise CodecError(f"unknown label name: {name!r}") from None

    def name_of(self, char: str) -> str:
        """The label name behind a single-character code."""
        try:
            return self._name_by_char[char]
        except KeyError:
            raise CodecError(f"unknown label character: {char!r}") from None

    def encode(self, names: Iterable[str]) -> str:
        """Encode a label set as a canonical (sorted, de-duplicated) string."""
        chars = {self.char_of(name) for name in names}
        return "".join(sorted(chars))

    def decode(self, encoded: str) -> list[str]:
        """Decode an encoded string back to label names (in char order)."""
        seen: set[str] = set()
        names: list[str] = []
        for char in encoded:
            name = self.name_of(char)
            if char not in seen:
                seen.add(char)
                names.append(name)
        return names

    # ------------------------------------------------------------------ #
    # Set predicates over encoded strings — the fast paths behind the
    # three label filter operators.
    # ------------------------------------------------------------------ #

    @staticmethod
    def intersects(encoded_a: str, encoded_b: str) -> bool:
        """Do two encoded label sets share at least one label? (*Some*)

        Encoded sets are tiny (<= 43 single characters), so a direct
        substring scan (`c in other`) beats building hash sets per call —
        this is precisely the "avoid manipulating long strings" win.
        """
        if len(encoded_b) < len(encoded_a):
            encoded_a, encoded_b = encoded_b, encoded_a
        for c in encoded_a:
            if c in encoded_b:
                return True
        return False

    @staticmethod
    def equals(encoded_a: str, encoded_b: str) -> bool:
        """Are two encoded label sets identical? (*Exactly*)

        Encoded strings are canonical (sorted, unique), so this is plain
        string equality — the whole point of the codec.
        """
        return encoded_a == encoded_b

    @staticmethod
    def contains_all(encoded_superset: str, encoded_subset: str) -> bool:
        """Does the first set contain every label of the second?
        (*At least & more*)"""
        for c in encoded_subset:
            if c not in encoded_superset:
                return False
        return True
