"""The synthetic archive: generation, access, splits, label matrices.

:class:`SyntheticArchive` is the in-process stand-in for the BigEarthNet
download: a list of :class:`~repro.bigearthnet.patch.Patch` objects with
deterministic generation from an :class:`~repro.config.ArchiveConfig` seed.
Patch names follow the real BigEarthNet convention
(``S2A_MSIL2A_20170613T101031_<row>_<col>``) so downstream code paths
(primary keys, download carts, file naming) behave like the real system.
"""

from __future__ import annotations

from datetime import datetime, timedelta
from typing import Iterator

import numpy as np

from ..config import ArchiveConfig
from ..errors import UnknownPatchError, ValidationError
from ..geo.bbox import BoundingBox
from ..geo.distance import km_per_degree_lat, km_per_degree_lon
from ..utils.rng import as_rng
from .clc import get_nomenclature
from .countries import COUNTRIES, Country
from .patch import Patch
from .seasons import season_of
from .synthesis import PatchSynthesizer
from .themes import sample_labels, sample_theme

_PATCH_EXTENT_KM = 1.2  # 120 px at 10 m


def _patch_bbox(lon: float, lat: float) -> BoundingBox:
    """Bounding rectangle of a 1.2 km x 1.2 km patch centered at a point."""
    height_deg = _PATCH_EXTENT_KM / km_per_degree_lat()
    width_deg = _PATCH_EXTENT_KM / max(km_per_degree_lon(lat), 1e-6)
    return BoundingBox.from_center(lon, lat, width_deg, height_deg)


class SyntheticArchive:
    """A generated BigEarthNet-like archive.

    Build with :meth:`generate`; access patches by index, name, or
    iteration.  The archive also exposes the dense label matrix used for
    training/evaluation ground truth.
    """

    def __init__(self, patches: list[Patch], config: ArchiveConfig) -> None:
        if not patches:
            raise ValidationError("an archive needs at least one patch")
        self.config = config
        self.patches = patches
        self._by_name = {p.name: p for p in patches}
        self._index_by_name = {p.name: i for i, p in enumerate(patches)}
        if len(self._by_name) != len(patches):
            raise ValidationError("duplicate patch names in archive")
        self.nomenclature = get_nomenclature()

    @classmethod
    def empty(cls, config: ArchiveConfig) -> "SyntheticArchive":
        """An archive with no patches (a replica node awaiting handoff).

        Generated archives must hold at least one patch (training needs
        data), but an elastic-federation replica starts empty and is
        populated by online ingest / shard handoff — this bypasses the
        non-empty validation for exactly that construction.
        """
        archive = cls.__new__(cls)
        archive.config = config
        archive.patches = []
        archive._by_name = {}
        archive._index_by_name = {}
        archive.nomenclature = get_nomenclature()
        return archive

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #

    @classmethod
    def generate(cls, config: "ArchiveConfig | None" = None,
                 *, with_pixels: bool = True) -> "SyntheticArchive":
        """Generate an archive deterministically from ``config.seed``.

        ``with_pixels=False`` skips pixel synthesis (bands become 1x1
        placeholders) for metadata-scale experiments that never touch
        imagery — e.g. data-tier benchmarks over tens of thousands of
        documents.
        """
        config = config or ArchiveConfig()
        rng = as_rng(config.seed)
        synthesizer = PatchSynthesizer(config)
        weights = np.array([c.sampling_weight for c in COUNTRIES], dtype=np.float64)
        weights /= weights.sum()
        start = datetime.fromisoformat(config.start_date)
        end = datetime.fromisoformat(config.end_date)
        span_days = (end - start).days
        if span_days <= 0:
            raise ValidationError("end_date must be after start_date")

        patches: list[Patch] = []
        used_names: set[str] = set()
        for index in range(config.num_patches):
            country: Country = COUNTRIES[int(rng.choice(len(COUNTRIES), p=weights))]
            lon = float(rng.uniform(country.bbox.west, country.bbox.east))
            lat = float(rng.uniform(country.bbox.south, country.bbox.north))
            acquired = start + timedelta(
                days=int(rng.integers(0, span_days + 1)),
                hours=10, minutes=int(rng.integers(0, 60)),
                seconds=int(rng.integers(0, 60)))
            season = season_of(acquired)
            theme = sample_theme(country.theme_weights, rng)
            labels = sample_labels(theme, rng, config.min_labels, config.max_labels)
            name = _make_name(acquired, index, rng, used_names)
            if with_pixels:
                s2_bands, s1_bands = synthesizer.synthesize(labels, season, rng)
            else:
                s2_bands, s1_bands = _placeholder_bands(config)
            patches.append(Patch(
                name=name,
                labels=labels,
                country=country.name,
                bbox=_patch_bbox(lon, lat),
                acquisition_date=acquired,
                season=season,
                s2_bands=s2_bands,
                s1_bands=s1_bands,
            ))
        return cls(patches, config)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.patches)

    def __getitem__(self, index: int) -> Patch:
        return self.patches[index]

    def __iter__(self) -> Iterator[Patch]:
        return iter(self.patches)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> list[str]:
        """All patch names in generation order."""
        return [p.name for p in self.patches]

    def get(self, name: str) -> Patch:
        """Patch lookup by name; raises :class:`UnknownPatchError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownPatchError(f"no patch named {name!r} in archive") from None

    def index_of(self, name: str) -> int:
        """Dense index of a patch name (for aligning with code matrices)."""
        try:
            return self._index_by_name[name]
        except KeyError:
            raise UnknownPatchError(f"no patch named {name!r} in archive") from None

    def remove(self, name: str) -> int:
        """Drop a patch from the archive; returns its former dense index.

        Later patches shift down by one, so any structure aligned with
        dense indices (e.g. a feature matrix) must drop the same row.
        """
        position = self.index_of(name)
        self.patches.pop(position)
        del self._by_name[name]
        self._index_by_name = {p.name: i for i, p in enumerate(self.patches)}
        return position

    # ------------------------------------------------------------------ #
    # Ground truth
    # ------------------------------------------------------------------ #

    def label_matrix(self) -> np.ndarray:
        """``(N, 43)`` boolean multi-label matrix in nomenclature order."""
        matrix = np.zeros((len(self.patches), len(self.nomenclature)), dtype=bool)
        for row, patch in enumerate(self.patches):
            for label in patch.labels:
                matrix[row, self.nomenclature.index_of(label)] = True
        return matrix

    def label_counts(self) -> dict[str, int]:
        """Occurrences of each label across the archive (only labels seen)."""
        counts: dict[str, int] = {}
        for patch in self.patches:
            for label in patch.labels:
                counts[label] = counts.get(label, 0) + 1
        return counts

    def split(self, train_fraction: float = 0.8,
              seed: "int | np.random.Generator | None" = 0) -> tuple[np.ndarray, np.ndarray]:
        """Random (train_indices, test_indices) split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValidationError(f"train_fraction must be in (0, 1), got {train_fraction}")
        rng = as_rng(seed)
        order = rng.permutation(len(self.patches))
        cut = max(1, int(round(train_fraction * len(self.patches))))
        cut = min(cut, len(self.patches) - 1)
        return np.sort(order[:cut]), np.sort(order[cut:])


def _make_name(acquired: datetime, index: int, rng: np.random.Generator,
               used: set[str]) -> str:
    """BigEarthNet-style patch name, guaranteed unique within the archive."""
    satellite = "S2A" if rng.random() < 0.5 else "S2B"
    row, col = int(rng.integers(0, 120)), int(rng.integers(0, 120))
    stamp = acquired.strftime("%Y%m%dT%H%M%S")
    name = f"{satellite}_MSIL2A_{stamp}_{row}_{col}"
    if name in used:
        name = f"{name}_{index}"
    used.add(name)
    return name


def _placeholder_bands(config: ArchiveConfig) -> tuple[dict, dict]:
    """Minimal 1-px-per-resolution bands for metadata-only archives."""
    from .patch import S2_BAND_NAMES, band_resolution
    s2 = {}
    for band in S2_BAND_NAMES:
        side = max(1, 12 * 10 // band_resolution(band))
        s2[band] = np.zeros((side, side), dtype=np.float32)
    return s2, {}
