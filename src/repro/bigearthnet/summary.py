"""Archive summary statistics: distributions and label co-occurrence.

Backs the exploratory side of the demo (and the examples): how patches
distribute over countries, seasons, and labels, and which labels co-occur —
the structure MiLaN's metric learning exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError
from .archive import SyntheticArchive
from .clc import get_nomenclature


@dataclass
class ArchiveSummary:
    """Aggregate statistics of one archive."""

    num_patches: int
    by_country: dict[str, int]
    by_season: dict[str, int]
    label_counts: dict[str, int]
    labels_per_patch_mean: float
    labels_per_patch_histogram: dict[int, int]
    cooccurrence: np.ndarray = field(repr=False)  # (43, 43) counts

    def top_labels(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` most frequent labels with counts."""
        if n <= 0:
            raise ValidationError(f"n must be positive, got {n}")
        ordered = sorted(self.label_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:n]

    def top_cooccurrences(self, n: int = 10) -> list[tuple[str, str, int]]:
        """The ``n`` most frequent label pairs."""
        if n <= 0:
            raise ValidationError(f"n must be positive, got {n}")
        nomenclature = get_nomenclature()
        pairs: list[tuple[str, str, int]] = []
        count = self.cooccurrence
        for i in range(count.shape[0]):
            for j in range(i + 1, count.shape[1]):
                if count[i, j] > 0:
                    pairs.append((nomenclature.name_of(i), nomenclature.name_of(j),
                                  int(count[i, j])))
        pairs.sort(key=lambda p: (-p[2], p[0], p[1]))
        return pairs[:n]

    def cooccurrence_probability(self, label_a: str, label_b: str) -> float:
        """P(both labels on a patch | label_a on the patch)."""
        nomenclature = get_nomenclature()
        i = nomenclature.index_of(label_a)
        j = nomenclature.index_of(label_b)
        base = self.cooccurrence[i, i]
        if base == 0:
            return 0.0
        return float(self.cooccurrence[i, j] / base)


def summarize_archive(archive: SyntheticArchive) -> ArchiveSummary:
    """Compute an :class:`ArchiveSummary` for ``archive``."""
    by_country: dict[str, int] = {}
    by_season: dict[str, int] = {}
    size_histogram: dict[int, int] = {}
    for patch in archive:
        by_country[patch.country] = by_country.get(patch.country, 0) + 1
        by_season[patch.season] = by_season.get(patch.season, 0) + 1
        size = len(patch.labels)
        size_histogram[size] = size_histogram.get(size, 0) + 1

    matrix = archive.label_matrix().astype(np.int64)
    cooccurrence = matrix.T @ matrix  # diagonal = per-label counts

    return ArchiveSummary(
        num_patches=len(archive),
        by_country=dict(sorted(by_country.items())),
        by_season=dict(sorted(by_season.items())),
        label_counts=archive.label_counts(),
        labels_per_patch_mean=float(matrix.sum(axis=1).mean()),
        labels_per_patch_histogram=dict(sorted(size_histogram.items())),
        cooccurrence=cooccurrence,
    )
