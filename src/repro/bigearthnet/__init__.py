"""Synthetic BigEarthNet archive substrate.

The paper evaluates on BigEarthNet [Sumbul et al. 2021]: 590,326 Sentinel-1/
Sentinel-2 patch pairs over 10 European countries, each annotated with CLC
2018 Level-3 multi-labels.  The real archive is a ~66 GB download; this
package generates a faithful *synthetic* stand-in (see DESIGN.md §2):

* :mod:`repro.bigearthnet.clc` — the full 3-level CLC nomenclature used by
  BigEarthNet (43 Level-3 classes), with per-label display colors,
* :mod:`repro.bigearthnet.labels` — the label→ASCII-char codec the paper's
  data tier uses to accelerate label filtering,
* :mod:`repro.bigearthnet.countries` — the 10 BigEarthNet countries with
  bounding boxes and land-cover theme priors,
* :mod:`repro.bigearthnet.synthesis` — patch pixel synthesis from per-class
  spectral signatures (12 S2 bands at 10/20/60 m + S1 VV/VH),
* :mod:`repro.bigearthnet.archive` — the archive builder and container.
"""

from .archive import SyntheticArchive
from .clc import (
    BIGEARTHNET_LABELS,
    CLCNomenclature,
    get_nomenclature,
)
from .countries import COUNTRIES, Country
from .labels import LabelCharCodec
from .patch import Patch, S2_BAND_NAMES, S2_BANDS_10M, S2_BANDS_20M, S2_BANDS_60M
from .seasons import SEASONS, season_of
from .synthesis import PatchSynthesizer, SpectralSignatureModel

__all__ = [
    "SyntheticArchive",
    "BIGEARTHNET_LABELS",
    "CLCNomenclature",
    "get_nomenclature",
    "COUNTRIES",
    "Country",
    "LabelCharCodec",
    "Patch",
    "S2_BAND_NAMES",
    "S2_BANDS_10M",
    "S2_BANDS_20M",
    "S2_BANDS_60M",
    "SEASONS",
    "season_of",
    "PatchSynthesizer",
    "SpectralSignatureModel",
]
