"""Archive persistence: save/load a synthetic archive to disk.

Layout: one directory holding ``meta.json`` (names, labels, metadata,
config) and ``bands.npz`` with one stacked array per band across all
patches (``B02`` is ``(N, 120, 120)`` float32, etc.) — compact and fast to
reload, so experiments can pin an archive once and reuse it across runs.
"""

from __future__ import annotations

import json
import os
from datetime import datetime
from pathlib import Path

import numpy as np

from ..config import ArchiveConfig
from ..errors import ArchiveError
from ..geo.bbox import BoundingBox
from .archive import SyntheticArchive
from .patch import Patch, S1_BAND_NAMES, S2_BAND_NAMES

_META_FILE = "meta.json"
_BANDS_FILE = "bands.npz"
_FORMAT_VERSION = 1


def save_archive(archive: SyntheticArchive, directory: "str | os.PathLike") -> None:
    """Write an archive to ``directory`` (created if missing)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    meta = {
        "format_version": _FORMAT_VERSION,
        "config": {
            "num_patches": archive.config.num_patches,
            "seed": archive.config.seed,
            "min_labels": archive.config.min_labels,
            "max_labels": archive.config.max_labels,
            "patch_size_10m": archive.config.patch_size_10m,
            "patch_size_20m": archive.config.patch_size_20m,
            "patch_size_60m": archive.config.patch_size_60m,
            "noise_sigma": archive.config.noise_sigma,
            "texture_smoothing": archive.config.texture_smoothing,
            "include_s1": archive.config.include_s1,
            "start_date": archive.config.start_date,
            "end_date": archive.config.end_date,
        },
        "patches": [
            {
                "name": p.name,
                "labels": list(p.labels),
                "country": p.country,
                "bbox": list(p.bbox.as_tuple()),
                "acquisition_date": p.acquisition_date.isoformat(),
                "season": p.season,
            }
            for p in archive
        ],
    }
    with open(path / _META_FILE, "w", encoding="utf-8") as handle:
        json.dump(meta, handle)

    stacks: dict[str, np.ndarray] = {}
    for band in S2_BAND_NAMES:
        stacks[band] = np.stack([p.s2_bands[band] for p in archive])
    if archive[0].has_s1:
        for band in S1_BAND_NAMES:
            stacks[band] = np.stack([p.s1_bands[band] for p in archive])
    np.savez_compressed(path / _BANDS_FILE, **stacks)


def load_archive(directory: "str | os.PathLike") -> SyntheticArchive:
    """Read an archive previously written by :func:`save_archive`."""
    path = Path(directory)
    meta_path = path / _META_FILE
    bands_path = path / _BANDS_FILE
    if not meta_path.exists() or not bands_path.exists():
        raise ArchiveError(f"no archive at {path} (need {_META_FILE} and {_BANDS_FILE})")
    with open(meta_path, encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ArchiveError(
            f"unsupported archive format version {meta.get('format_version')!r}")
    config = ArchiveConfig(**meta["config"])

    with np.load(bands_path) as stacks:
        has_s1 = all(band in stacks.files for band in S1_BAND_NAMES)
        patches: list[Patch] = []
        for row, entry in enumerate(meta["patches"]):
            s2 = {band: stacks[band][row] for band in S2_BAND_NAMES}
            s1 = ({band: stacks[band][row] for band in S1_BAND_NAMES}
                  if has_s1 else {})
            patches.append(Patch(
                name=entry["name"],
                labels=tuple(entry["labels"]),
                country=entry["country"],
                bbox=BoundingBox.from_tuple(entry["bbox"]),
                acquisition_date=datetime.fromisoformat(entry["acquisition_date"]),
                season=entry["season"],
                s2_bands=s2,
                s1_bands=s1,
            ))
    if len(patches) != len(meta["patches"]):
        raise ArchiveError("band stacks and metadata disagree on patch count")
    return SyntheticArchive(patches, config)
