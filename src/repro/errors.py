"""Exception hierarchy for the repro package.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.  Subsystems raise the most
specific subclass that applies; error messages always name the offending
value so failures are diagnosable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class ValidationError(ReproError, ValueError):
    """A user-supplied value failed validation (bad query, bad config)."""


class GeoError(ValidationError):
    """Invalid geospatial input (coordinates out of range, degenerate shape)."""


class StoreError(ReproError):
    """Base class for document-store failures."""


class DuplicateKeyError(StoreError):
    """Insert violated a unique index (e.g. a duplicate primary key)."""


class DocumentNotFoundError(StoreError, KeyError):
    """A lookup by primary key found no document."""


class CollectionNotFoundError(StoreError, KeyError):
    """A database operation referenced a collection that does not exist."""


class QuerySyntaxError(StoreError, ValidationError):
    """A store query used an unknown operator or malformed operand."""


class IndexError_(StoreError):
    """An index definition or maintenance operation failed.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class DurabilityError(StoreError):
    """Crash-safety machinery failure (WAL, snapshot, recovery)."""


class WALCorruptionError(DurabilityError):
    """A write-ahead log record failed its checksum *mid-log*.

    A torn final record is expected after a crash and silently dropped;
    corruption with valid data after it means the log was damaged at rest
    and replay must not guess — it stops with this error.
    """


class ArchiveError(ReproError):
    """Errors in synthetic archive construction or access."""


class UnknownLabelError(ArchiveError, KeyError):
    """A CLC label name (or code) is not part of the nomenclature."""


class UnknownPatchError(ArchiveError, KeyError):
    """A patch name does not exist in the archive."""


class ModelError(ReproError):
    """Errors in the neural network / hashing model layer."""


class ShapeError(ModelError, ValueError):
    """An array had an incompatible shape for the requested operation."""


class NotFittedError(ModelError, RuntimeError):
    """A model/transform was used before being trained or fitted."""


class TrainingError(ModelError):
    """Training failed (e.g. no valid triplets could be mined)."""


class SearchError(ReproError):
    """Errors in the retrieval/index layer."""


class EmptyIndexError(SearchError):
    """A search was issued against an index with no items."""


class CodecError(ReproError, ValueError):
    """Label<->character codec failure (unknown char, overflow)."""


class CartError(ReproError):
    """Download-cart constraint violations (e.g. page size over limit)."""
