"""Operator cost accounting: typed work counters on the span tree.

PR-6 spans record *wall time*; this module records *work* — the counter
vocabulary a cost model actually needs (ROADMAP: "calibrated per deployment
from measured scan/probe/merge costs"):

========================  ====================================================
counter                   attached by
========================  ====================================================
``rows_scanned``          linear scans (full and allowed-subset)
``buckets_probed``        MIH candidate gathering (per ladder layer)
``candidates_deduped``    MIH candidate union after bucket dedup
``candidates_verified``   MIH exact Hamming verification
``ladder_layers``         MIH incremental radius ladder depth
``fallback_rows``         MIH exact-scan fallback (budget exceeded)
``shards_scanned``        scatter-gather shard fan-out
``ids_intersected``       columnar planner posting-list intersections
``postings_loaded``       columnar planner candidate source sizes
``docs_examined``         document-store predicate evaluation
``cache_hits/misses``     serving result cache lookups
``nodes_answered/failed`` federation scatter-gather
``wal_records_replayed``  durability recovery replay
``codes_restored``        durability checkpoint load
========================  ====================================================

Instrumentation sites call :func:`repro.obs.tracing.add_cost` (or
``span.add_cost(...)`` on a span they already hold); both degrade to the
no-op singleton / one ``getattr`` when the request is untraced.  This
module is the *read* side: folding a finished span tree (or a cost-only
:class:`~repro.obs.tracing.CostSpan` ledger) into one request profile, and
classifying requests into the (backend x strategy x selectivity-bucket)
families the workload statistics store aggregates over.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from . import tracing
from .tracing import add_cost  # noqa: F401  (re-exported instrumentation API)

#: Span/ledger attributes that classify a request into a query family.
FAMILY_ATTRS = ("backend", "strategy", "filter_mode", "selectivity")

#: Extra attributes carried through into request profiles (not part of the
#: family key): the planner's decision records ride the span so
#: ``explain=true`` can report chosen vs rejected plans — ``plan`` for the
#: similarity planner, ``store_plan`` for the columnar intersection order.
PROFILE_ATTRS = FAMILY_ATTRS + ("plan", "store_plan")

#: Upper edges of the filter-selectivity buckets (fraction of the corpus).
SELECTIVITY_EDGES = (0.01, 0.1, 0.5)

_SELECTIVITY_LABELS = ("<=1%", "<=10%", "<=50%", ">50%")


def selectivity_bucket(selectivity: "float | None") -> str:
    """Map a filter selectivity (allowed rows / corpus) onto a bucket label.

    ``None`` (no metadata filter) maps to ``"none"``; otherwise the first
    bucket of :data:`SELECTIVITY_EDGES` whose edge covers the value.
    """
    if selectivity is None:
        return "none"
    value = float(selectivity)
    for edge, label in zip(SELECTIVITY_EDGES, _SELECTIVITY_LABELS):
        if value <= edge:
            return label
    return _SELECTIVITY_LABELS[-1]


def family_key(attrs: "dict | None") -> "tuple[str, str, str]":
    """The (backend, strategy, selectivity-bucket) family of a request."""
    attrs = attrs or {}
    backend = str(attrs.get("backend") or "unknown")
    strategy = str(attrs.get("strategy") or attrs.get("filter_mode")
                   or "unfiltered")
    return backend, strategy, selectivity_bucket(attrs.get("selectivity"))


def profile_from_tree(tree: "dict | None") -> "dict | None":
    """Fold an ``as_dict`` span tree into one request cost profile.

    Returns ``{"costs": totals, "stages": {name: {count, self_time_ms,
    costs}}, "attrs": family attributes}`` — the same shape a cost-only
    :meth:`~repro.obs.tracing.CostSpan.report` produces, so the slow-query
    ring and the workload store consume one format regardless of whether
    the request was credit-sampled.
    """
    if tree is None:
        return None
    totals: dict[str, int] = {}
    stages: dict[str, dict] = {}
    attrs: dict[str, Any] = {}

    def _walk(node: dict) -> None:
        node_costs = node.get("costs")
        if node_costs:
            for key, value in node_costs.items():
                totals[key] = totals.get(key, 0) + int(value)
        name = node["name"]
        stage = stages.get(name)
        if stage is None:
            stage = stages[name] = {"count": 0, "self_time_ms": 0.0}
        stage["count"] += 1
        stage["self_time_ms"] = round(
            stage["self_time_ms"] + float(node.get("self_time_ms", 0.0)), 4)
        if node_costs:
            stage_costs = stage.setdefault("costs", {})
            for key, value in node_costs.items():
                stage_costs[key] = stage_costs.get(key, 0) + int(value)
        for key in PROFILE_ATTRS:
            value = node.get("attrs", {}).get(key)
            if value is not None and key not in attrs:
                attrs[key] = value
        for child in node.get("children", ()):
            _walk(child)

    _walk(tree)
    return {"costs": totals,
            "stages": {name: stages[name] for name in sorted(stages)},
            "attrs": attrs}


@contextmanager
def measure(name: str = "measure") -> "Iterator[tracing.CostSpan]":
    """Collect cost counters and stage self-times for a code block.

    Installs a fresh :class:`~repro.obs.tracing.CostSpan` as this thread's
    active context — any instrumented call inside the block reports into
    it, whether or not an :class:`~repro.obs.Observability` request wraps
    the caller.  Used by the calibration runner and by tests::

        with measure() as ledger:
            index.search_knn(code, k=10)
        print(ledger.report()["costs"])  # {'buckets_probed': 52, ...}
    """
    ledger = tracing.CostSpan(name)
    with ledger:
        yield ledger
