"""Distributed tracing primitives: trace ids, nested spans, propagation.

A *trace* is the tree of timed operations behind one request: the root span
covers the whole ``similar_images`` call, child spans cover the cache
lookup, the micro-batch wait, each shard scan, the MIH candidate/verify
phases, and each federation RPC.  The tree is what turns "p99 is 40 ms"
into "the p99 queries all re-probe the radius ladder on shard 3".

The design goals, in order:

1. **Near-zero overhead when sampled out.**  Instrumentation sites call the
   module-level :func:`span`; when the current thread has no active span it
   returns a shared no-op singleton after one ``getattr`` and a ``None``
   check — no allocation, no lock, no clock read.
2. **Thread-safe context propagation.**  The active span lives in a
   ``threading.local``.  Crossing a thread boundary (micro-batch worker,
   shard pool, federation scatter threads) is explicit: the submitting side
   calls :func:`capture`, the worker wraps its work in :func:`attach` — so
   spans recorded on worker threads stitch into the submitter's tree.
3. **Determinism.**  Trace/span ids come from process-wide counters and
   sampling uses a deterministic credit accumulator (see :class:`Tracer`),
   so a test run produces the same decisions every time.
"""

from __future__ import annotations

import numbers
import threading
import time
from itertools import count
from typing import Any, Iterator

_SPAN_IDS = count(1)
_TRACE_IDS = count(1)

_local = threading.local()

def _clean(value: Any) -> Any:
    """Coerce a span attribute to a JSON-safe value.

    Containers are kept structured (recursively cleaned) so attributes
    like the planner's ``plan`` decision survive into profiles instead of
    degrading to their ``repr``.
    """
    if isinstance(value, (str, bool, type(None))):
        return value
    if isinstance(value, numbers.Integral):  # numpy ints from scan stats
        return int(value)
    if isinstance(value, numbers.Real):  # numpy floats subclass float
        return float(value)
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    return repr(value)


class Span:
    """One timed operation in a trace tree.

    Used as a context manager: ``__enter__`` installs the span as the
    thread's active span and stamps the start time, ``__exit__`` stamps the
    end time (annotating the exception type if one escaped) and restores
    the previous active span.  Children are linked at creation time, so a
    span abandoned by a timed-out worker thread still appears in the tree
    (marked ``unfinished``) instead of vanishing.
    """

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "children", "start_s", "end_s", "costs", "_prev")

    def __init__(self, name: str, trace_id: str,
                 parent_id: "str | None" = None,
                 attrs: "dict | None" = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = f"{next(_SPAN_IDS):08x}"
        self.parent_id = parent_id
        self.attrs = ({} if not attrs
                      else {key: _clean(value) for key, value in attrs.items()})
        self.children: list[Span] = []
        self.start_s: "float | None" = None
        self.end_s: "float | None" = None
        self.costs: "dict[str, int] | None" = None
        self._prev: "Span | None" = None

    @property
    def duration_s(self) -> "float | None":
        if self.start_s is None or self.end_s is None:
            return None
        return self.end_s - self.start_s

    def annotate(self, **attrs: Any) -> "Span":
        """Attach key/value attributes (allowed before, during, or after)."""
        for key, value in attrs.items():
            self.attrs[key] = _clean(value)
        return self

    def add_cost(self, **counters: Any) -> "Span":
        """Accumulate typed operator cost counters onto this span.

        Counters are integers (rows scanned, buckets probed, candidates
        verified, ids intersected, ...) and repeated calls add up — a
        chunked scan can report each chunk.  Costs are stored separately
        from ``attrs`` so the cost model can roll them up over the subtree
        without guessing which attributes are work counters.
        """
        costs = self.costs
        if costs is None:
            costs = self.costs = {}
        for key, value in counters.items():
            costs[key] = costs.get(key, 0) + int(value)
        return self

    def __enter__(self) -> "Span":
        self._prev = getattr(_local, "span", None)
        _local.span = self
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_s = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _local.span = self._prev
        return False

    def walk(self) -> "Iterator[Span]":
        """Depth-first iteration over this span and its descendants."""
        yield self
        for child in list(self.children):
            yield from child.walk()

    def as_dict(self, *, origin: "float | None" = None) -> dict:
        """JSON-compatible tree rooted at this span.

        ``start_ms`` is the offset from the trace root's start,
        ``self_time_ms`` is the span's duration minus its (finished)
        children's — the time spent in the span's own code.  Children are
        snapshotted via ``list()`` so a late append from a straggler
        federation thread cannot break the traversal.
        """
        origin = self.start_s if origin is None else origin
        children = [child.as_dict(origin=origin) for child in list(self.children)]
        node: dict = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "children": children,
        }
        if self.costs:
            node["costs"] = dict(self.costs)
        if self.start_s is None or self.end_s is None:
            node["unfinished"] = True
            if self.start_s is not None and origin is not None:
                node["start_ms"] = round((self.start_s - origin) * 1e3, 4)
            return node
        duration_ms = (self.end_s - self.start_s) * 1e3
        child_ms = sum(child.get("duration_ms", 0.0) for child in children)
        node["start_ms"] = round((self.start_s - origin) * 1e3, 4)
        node["duration_ms"] = round(duration_ms, 4)
        node["self_time_ms"] = round(max(0.0, duration_ms - child_ms), 4)
        return node


class _NullSpan:
    """Shared no-op stand-in returned when the request is not traced."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def add_cost(self, **counters: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class CostSpan:
    """Request-scoped cost ledger for *unsampled* requests.

    A slow query is exactly the one you always want attributed, but the
    sampler cannot know in advance which request will be slow.  The
    compromise: when a root request is not credit-sampled, the request
    context installs a :class:`CostSpan` instead of a full :class:`Span`.
    Instrumentation sites then get a :class:`_StageSpan` from :func:`span`
    — no tree is built, no ids are allocated, but per-stage self-time and
    every :func:`add_cost` counter still fold into this single ledger, so
    the slow-query ring and the workload statistics cover 100% of traffic.

    Thread-safe: shard-pool and federation workers that :func:`attach` a
    captured cost context fold their stages under one lock.
    """

    __slots__ = ("name", "counters", "stages", "attrs", "_lock", "_prev")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counters: dict[str, int] = {}
        #: stage name -> [entry count, summed self-time seconds]
        self.stages: "dict[str, list]" = {}
        self.attrs: dict[str, Any] = {}
        self._lock = threading.Lock()
        self._prev = None

    def __enter__(self) -> "CostSpan":
        self._prev = getattr(_local, "span", None)
        _local.span = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.span = self._prev
        return False

    def annotate(self, **attrs: Any) -> "CostSpan":
        with self._lock:
            for key, value in attrs.items():
                self.attrs[key] = _clean(value)
        return self

    def add_cost(self, **counters: Any) -> "CostSpan":
        with self._lock:
            for key, value in counters.items():
                self.counters[key] = self.counters.get(key, 0) + int(value)
        return self

    def _child(self, name: str) -> "_StageSpan":
        return _StageSpan(name, self)

    def _finish_stage(self, stage: "_StageSpan", elapsed_s: float) -> None:
        prev = stage._prev
        with self._lock:
            entry = self.stages.get(stage.name)
            if entry is None:
                entry = self.stages[stage.name] = [0, 0.0]
            entry[0] += 1
            entry[1] += max(0.0, elapsed_s - stage.child_s)
            if type(prev) is _StageSpan:
                prev.child_s += elapsed_s

    def report(self) -> dict:
        """JSON-compatible ledger snapshot: counters, stages, attributes."""
        with self._lock:
            counters = dict(self.counters)
            stages = {name: {"count": entry[0],
                             "self_time_ms": round(entry[1] * 1e3, 4)}
                      for name, entry in sorted(self.stages.items())}
            attrs = dict(self.attrs)
        return {"costs": counters, "stages": stages, "attrs": attrs}


class _StageSpan:
    """Lightweight timed stage under a :class:`CostSpan` (no tree, no ids)."""

    __slots__ = ("name", "root", "start_s", "child_s", "_prev")

    def __init__(self, name: str, root: CostSpan) -> None:
        self.name = name
        self.root = root
        self.start_s = 0.0
        self.child_s = 0.0
        self._prev = None

    def __enter__(self) -> "_StageSpan":
        self._prev = getattr(_local, "span", None)
        _local.span = self
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self.start_s
        _local.span = self._prev
        self.root._finish_stage(self, elapsed)
        return False

    def annotate(self, **attrs: Any) -> "_StageSpan":
        self.root.annotate(**attrs)
        return self

    def add_cost(self, **counters: Any) -> "_StageSpan":
        self.root.add_cost(**counters)
        return self

    def _child(self, name: str) -> "_StageSpan":
        return _StageSpan(name, self.root)


def current_span():
    """This thread's active context: a :class:`Span`, a cost-only
    :class:`CostSpan`/:class:`_StageSpan`, or ``None`` when neither."""
    return getattr(_local, "span", None)


def span(name: str, **attrs: Any):
    """Open a child span under the active span — or a no-op when untraced.

    This is the single instrumentation entry point.  The untraced fast path
    is one ``getattr`` plus a ``None`` check::

        with span("mih.probe", radius=r) as sp:
            ...
            sp.annotate(candidates=n)

    Under a cost-only request (root not credit-sampled) the parent is a
    :class:`CostSpan` and a :class:`_StageSpan` is returned instead — same
    protocol, but only stage self-time and cost counters are kept.
    """
    parent = getattr(_local, "span", None)
    if parent is None:
        return NULL_SPAN
    if type(parent) is Span:
        child = Span(name, parent.trace_id, parent.span_id, attrs)
        parent.children.append(child)
        return child
    return parent._child(name)


def annotate(**attrs: Any) -> None:
    """Attach attributes to the active span, if any (no-op otherwise)."""
    active = getattr(_local, "span", None)
    if active is not None:
        active.annotate(**attrs)


def add_cost(**counters: Any) -> None:
    """Fold operator cost counters into the active span, if any.

    The single cost instrumentation entry point: under a sampled trace the
    counters land on the active :class:`Span` (per-stage attribution in
    the tree), under a cost-only request they fold into the request's
    :class:`CostSpan` ledger, and with no active context this is one
    ``getattr`` plus a ``None`` check — the same near-zero fast path as
    :func:`span`.
    """
    active = getattr(_local, "span", None)
    if active is not None:
        active.add_cost(**counters)


def capture() -> "Span | None":
    """Snapshot the active span for hand-off to another thread."""
    return getattr(_local, "span", None)


class _Attached:
    """Context manager installing a captured span on the current thread."""

    __slots__ = ("_span", "_prev")

    def __init__(self, target: "Span | None") -> None:
        self._span = target
        self._prev: "Span | None" = None

    def __enter__(self) -> "Span | None":
        self._prev = getattr(_local, "span", None)
        _local.span = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.span = self._prev
        return False


def attach(target: "Span | None") -> _Attached:
    """Adopt a span captured on another thread as this thread's context.

    ``attach(None)`` deliberately clears the context — a worker thread
    serving a batch with no traced job must not inherit a stale span from a
    previous batch.
    """
    return _Attached(target)


class Tracer:
    """Creates sampled root spans with process-unique trace ids.

    Sampling is a deterministic credit accumulator (Bresenham-style): every
    request adds ``sample_rate`` of credit and a trace starts whenever the
    credit reaches 1, so a rate of ``0.1`` traces exactly every 10th
    request — reproducible, evenly spaced, and free of RNG state.
    """

    def __init__(self, *, enabled: bool = True, sample_rate: float = 1.0) -> None:
        self.enabled = bool(enabled)
        self.sample_rate = float(sample_rate)
        self._lock = threading.Lock()
        self._credit = 0.0
        self._seen = 0
        self._sampled = 0

    def should_sample(self) -> bool:
        """Deterministic sampling decision for one new request."""
        if not self.enabled or self.sample_rate <= 0.0:
            with self._lock:
                self._seen += 1
            return False
        with self._lock:
            self._seen += 1
            self._credit += self.sample_rate
            if self._credit >= 1.0 - 1e-12:
                self._credit -= 1.0
                self._sampled += 1
                return True
        return False

    def start_trace(self, name: str, **attrs: Any) -> Span:
        """A new root span with a fresh process-unique trace id."""
        return Span(name, trace_id=f"{next(_TRACE_IDS):08x}",
                    parent_id=None, attrs=attrs)

    def stats(self) -> dict:
        with self._lock:
            return {"enabled": self.enabled,
                    "sample_rate": self.sample_rate,
                    "requests_seen": self._seen,
                    "requests_sampled": self._sampled}
