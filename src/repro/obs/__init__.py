"""End-to-end query tracing and structured observability (`repro.obs`).

The observability tier answers "where did this query spend its time?"
across every layer of the stack:

* :mod:`~repro.obs.tracing` — per-request trace ids and nested spans with
  explicit cross-thread propagation and a near-zero-cost untraced path,
* :mod:`~repro.obs.slowlog` — a bounded ring buffer of the slowest recent
  queries (with their span trees when sampled),
* :mod:`~repro.obs.logs` — structured ``event=...`` logging with trace ids
  through the stdlib :mod:`logging` tree,
* :mod:`~repro.obs.prometheus` — Prometheus text exposition of the metric
  snapshots, labels included,
* :mod:`~repro.obs.costs` — typed operator cost counters (rows scanned,
  buckets probed, candidates verified, ...) folded into per-request
  profiles and (backend × strategy × selectivity) query families,
* :mod:`~repro.obs.workload` — the thread-safe per-family workload
  statistics store behind ``GET /debug/workload`` and the JSON workload
  profile sidecar,
* :mod:`~repro.obs.calibrate` — the calibration runner measuring per-unit
  operator costs (ns/row, ns/bucket, ...) on the deployed hardware,
* :mod:`~repro.obs.observability` — the per-system facade tying the above
  together behind :class:`~repro.config.ObsConfig`.
"""

from .calibrate import (
    load_calibration,
    predict_cost_ns,
    run_calibration,
    save_calibration,
)
from .costs import family_key, measure, profile_from_tree, selectivity_bucket
from .observability import Observability, RequestContext
from .prometheus import render_prometheus
from .slowlog import SlowQueryLog
from .logs import StructuredLogger
from .tracing import (
    NULL_SPAN,
    CostSpan,
    Span,
    Tracer,
    add_cost,
    annotate,
    attach,
    capture,
    current_span,
    span,
)
from .workload import WorkloadStats, merge_profiles

__all__ = [
    "NULL_SPAN",
    "CostSpan",
    "Observability",
    "RequestContext",
    "SlowQueryLog",
    "Span",
    "StructuredLogger",
    "Tracer",
    "WorkloadStats",
    "add_cost",
    "annotate",
    "attach",
    "capture",
    "current_span",
    "family_key",
    "load_calibration",
    "measure",
    "merge_profiles",
    "predict_cost_ns",
    "profile_from_tree",
    "render_prometheus",
    "run_calibration",
    "save_calibration",
    "selectivity_bucket",
    "span",
]
