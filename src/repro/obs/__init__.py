"""End-to-end query tracing and structured observability (`repro.obs`).

The observability tier answers "where did this query spend its time?"
across every layer of the stack:

* :mod:`~repro.obs.tracing` — per-request trace ids and nested spans with
  explicit cross-thread propagation and a near-zero-cost untraced path,
* :mod:`~repro.obs.slowlog` — a bounded ring buffer of the slowest recent
  queries (with their span trees when sampled),
* :mod:`~repro.obs.logs` — structured ``event=...`` logging with trace ids
  through the stdlib :mod:`logging` tree,
* :mod:`~repro.obs.prometheus` — Prometheus text exposition of the metric
  snapshots, labels included,
* :mod:`~repro.obs.observability` — the per-system facade tying the above
  together behind :class:`~repro.config.ObsConfig`.
"""

from .observability import Observability, RequestContext
from .prometheus import render_prometheus
from .slowlog import SlowQueryLog
from .logs import StructuredLogger
from .tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    annotate,
    attach,
    capture,
    current_span,
    span,
)

__all__ = [
    "NULL_SPAN",
    "Observability",
    "RequestContext",
    "SlowQueryLog",
    "Span",
    "StructuredLogger",
    "Tracer",
    "annotate",
    "attach",
    "capture",
    "current_span",
    "render_prometheus",
    "span",
]
