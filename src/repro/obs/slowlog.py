"""Bounded ring buffer of the slowest recent queries.

Tail latency is diagnosed from *examples*, not aggregates: the histogram
says p99 regressed, the slow-query log says *which* queries and — when the
request happened to be traced — *where* the time went (the span tree is
stored alongside).  The buffer is a fixed-capacity deque, so an incident
that makes every query slow cannot grow memory without bound; the oldest
entries are simply displaced.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from itertools import count
from typing import Any

from ..errors import ValidationError


class SlowQueryLog:
    """Thread-safe bounded buffer of slow-query records (newest kept)."""

    def __init__(self, capacity: int = 256, threshold_ms: float = 100.0) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        if threshold_ms < 0.0:
            raise ValidationError(
                f"threshold_ms must be >= 0, got {threshold_ms}")
        self.capacity = capacity
        self.threshold_ms = float(threshold_ms)
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque(maxlen=capacity)
        self._seq = count(1)
        self._recorded = 0

    def record(self, *, route: str, duration_ms: float,
               trace_id: "str | None" = None,
               attrs: "dict | None" = None,
               trace: "dict | None" = None,
               costs: "dict | None" = None,
               stages: "dict | None" = None) -> dict:
        """Append one slow-query record; returns the stored entry.

        ``costs`` (operator counter totals) and ``stages`` (per-stage
        self-time breakdown) are recorded even for requests that were not
        credit-sampled — a slow query must be diagnosable from this ring
        alone, trace or no trace.
        """
        entry: dict[str, Any] = {
            "seq": next(self._seq),
            "recorded_at": round(time.time(), 3),
            "route": route,
            "duration_ms": round(float(duration_ms), 3),
            "trace_id": trace_id,
        }
        if attrs:
            entry["attrs"] = dict(attrs)
        if costs:
            entry["costs"] = dict(costs)
        if stages:
            entry["stages"] = dict(stages)
        if trace is not None:
            entry["trace"] = trace
        with self._lock:
            self._entries.append(entry)
            self._recorded += 1
        return entry

    def snapshot(self) -> list[dict]:
        """Current entries, newest first (JSON-compatible copies)."""
        with self._lock:
            entries = list(self._entries)
        return [dict(entry) for entry in reversed(entries)]

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    def describe(self) -> dict:
        with self._lock:
            return {"capacity": self.capacity,
                    "threshold_ms": self.threshold_ms,
                    "entries": len(self._entries),
                    "recorded_total": self._recorded}
