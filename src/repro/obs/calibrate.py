"""Calibration runner: per-unit operator costs measured on this hardware.

The cost counters of :mod:`repro.obs.costs` say how much *work* a query
did; turning work into predicted *time* needs per-unit costs — and those
depend on the deployed hardware (ROADMAP: "calibrated per deployment from
measured scan/probe/merge costs").  :func:`run_calibration` measures them
directly: it builds synthetic corpora at several sizes, drives the real
index/store/cache code paths under a :func:`repro.obs.costs.measure`
ledger, and divides each operator stage's measured self-time by its cost
counter:

=============================  =============================================
unit                           measured from
=============================  =============================================
``linear_scan_ns_per_row``     ``linear.scan`` stage time / ``rows_scanned``
``mih_probe_ns_per_bucket``    ``mih.candidates`` time / ``buckets_probed``
``mih_verify_ns_per_candidate``  ``mih.verify`` time / ``candidates_verified``
``intersect_ns_per_id``        timed ``intersect_id_arrays`` on synthetic
                               sorted posting lists / ids loaded
``cache_lookup_ns``            timed ``QueryResultCache.get`` / lookups
=============================  =============================================

The result serializes to a ``calibration.json`` sidecar
(:func:`save_calibration` / :func:`load_calibration`), and
:func:`predict_cost_ns` combines the units with a request's cost counters
(from ``explain=true``, the slow-query ring, or a workload profile) into a
predicted cost — enough to rank access paths (linear scan vs. MIH) per
query family without re-measuring.
"""

from __future__ import annotations

import json
import math
import os
import platform
import time
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from ..errors import ValidationError
from . import costs

CALIBRATION_VERSION = 1

#: The unit-cost keys a complete calibration carries (all in nanoseconds).
UNIT_KEYS = (
    "linear_scan_ns_per_row",
    "mih_probe_ns_per_bucket",
    "mih_verify_ns_per_candidate",
    "intersect_ns_per_id",
    "cache_lookup_ns",
)

#: Which unit cost prices each cost counter (counters without a unit —
#: e.g. ``ladder_layers``, which only counts iterations whose work is
#: already priced through ``buckets_probed`` — contribute no time).
COUNTER_UNITS = {
    "rows_scanned": "linear_scan_ns_per_row",
    "fallback_rows": "linear_scan_ns_per_row",
    "buckets_probed": "mih_probe_ns_per_bucket",
    "candidates_verified": "mih_verify_ns_per_candidate",
    "ids_intersected": "intersect_ns_per_id",
    "cache_hits": "cache_lookup_ns",
    "cache_misses": "cache_lookup_ns",
}


def _random_codes(rng: np.random.Generator, count: int,
                  num_bits: int) -> np.ndarray:
    words = num_bits // 64
    return rng.integers(0, 1 << 63, size=(count, max(words, 1)),
                        dtype=np.uint64)


def _stage_seconds(report: Mapping, stage: str) -> float:
    return float(report["stages"].get(stage, {}).get("self_time_ms", 0.0)) / 1e3


class _UnitAccumulator:
    """Sums (seconds, work units) per unit key across corpus sizes."""

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._work: dict[str, float] = {}

    def add(self, key: str, seconds: float, work: float) -> float:
        self._seconds[key] = self._seconds.get(key, 0.0) + float(seconds)
        self._work[key] = self._work.get(key, 0.0) + float(work)
        return _ns_per_unit(seconds, work)

    def units(self) -> dict:
        return {key: _ns_per_unit(self._seconds.get(key, 0.0),
                                  self._work.get(key, 0.0))
                for key in UNIT_KEYS}


def _ns_per_unit(seconds: float, work: float) -> float:
    if work <= 0:
        return 0.0
    return round(seconds * 1e9 / work, 4)


def _measure_linear(codes: np.ndarray, queries: np.ndarray,
                    num_bits: int, k: int) -> tuple[float, float]:
    from ..index.linear_scan import LinearScanIndex

    index = LinearScanIndex(num_bits)
    index.build(range(codes.shape[0]), codes)
    with costs.measure("calibrate.linear") as ledger:
        index.search_knn_batch(queries, k=k)
    report = ledger.report()
    return (_stage_seconds(report, "linear.scan"),
            float(report["costs"].get("rows_scanned", 0)))


def _measure_mih(codes: np.ndarray, queries: np.ndarray, num_bits: int,
                 radius: int) -> tuple[float, float, float, float]:
    from ..index.mih import MultiIndexHashing

    index = MultiIndexHashing(num_bits)
    index.build(range(codes.shape[0]), codes)
    with costs.measure("calibrate.mih") as ledger:
        index.search_radius_batch(queries, radius)
    report = ledger.report()
    return (_stage_seconds(report, "mih.candidates"),
            float(report["costs"].get("buckets_probed", 0)),
            _stage_seconds(report, "mih.verify"),
            float(report["costs"].get("candidates_verified", 0)))


def _measure_intersect(rng: np.random.Generator,
                       corpus_size: int) -> tuple[float, float]:
    from ..store.columnar import intersect_id_arrays

    domain = max(corpus_size * 4, 1024)
    arrays = [np.unique(rng.integers(0, domain, size=max(corpus_size, 256),
                                     dtype=np.int64))
              for _ in range(3)]
    loaded = float(sum(int(a.shape[0]) for a in arrays))
    repeats = 8
    started = time.perf_counter()
    for _ in range(repeats):
        intersect_id_arrays(arrays)
    elapsed = time.perf_counter() - started
    return elapsed, loaded * repeats


def _measure_cache(corpus_size: int) -> tuple[float, float]:
    from ..serving.cache import QueryResultCache

    entries = min(max(corpus_size // 4, 256), 4096)
    cache = QueryResultCache(max_entries=entries, ttl_seconds=3600.0)
    for i in range(entries):
        cache.put(("calibrate", i), i)
    lookups = entries * 2  # one hit + one miss per entry
    started = time.perf_counter()
    for i in range(entries):
        cache.get(("calibrate", i))
        cache.get(("calibrate-miss", i))
    elapsed = time.perf_counter() - started
    return elapsed, float(lookups)


def run_calibration(*, corpus_sizes: Sequence[int] = (2000, 8000),
                    num_bits: int = 64, num_queries: int = 32,
                    radius: int = 6, k: int = 10, seed: int = 7) -> dict:
    """Measure per-unit operator costs across ``corpus_sizes``.

    Returns the calibration document (see module docstring): headline
    ``units`` aggregated across all sizes (total stage time / total work,
    so larger corpora weigh proportionally more), plus ``per_size``
    breakdowns for inspecting scaling behaviour.
    """
    sizes = [int(size) for size in corpus_sizes]
    if not sizes or any(size < 1 for size in sizes):
        raise ValidationError(
            f"corpus_sizes must be positive, got {corpus_sizes!r}")
    if num_bits < 64 or num_bits % 64 != 0:
        raise ValidationError(
            f"num_bits must be a positive multiple of 64, got {num_bits}")
    if num_queries < 1:
        raise ValidationError(f"num_queries must be >= 1, got {num_queries}")

    rng = np.random.default_rng(seed)
    acc = _UnitAccumulator()
    per_size = []
    for size in sizes:
        codes = _random_codes(rng, size, num_bits)
        query_rows = rng.integers(0, size, size=num_queries)
        queries = codes[query_rows]

        scan_s, rows = _measure_linear(codes, queries, num_bits, k)
        probe_s, buckets, verify_s, verified = _measure_mih(
            codes, queries, num_bits, radius)
        intersect_s, ids = _measure_intersect(rng, size)
        cache_s, lookups = _measure_cache(size)

        per_size.append({
            "corpus_size": size,
            "units": {
                "linear_scan_ns_per_row": acc.add(
                    "linear_scan_ns_per_row", scan_s, rows),
                "mih_probe_ns_per_bucket": acc.add(
                    "mih_probe_ns_per_bucket", probe_s, buckets),
                "mih_verify_ns_per_candidate": acc.add(
                    "mih_verify_ns_per_candidate", verify_s, verified),
                "intersect_ns_per_id": acc.add(
                    "intersect_ns_per_id", intersect_s, ids),
                "cache_lookup_ns": acc.add(
                    "cache_lookup_ns", cache_s, lookups),
            },
            "work": {
                "rows_scanned": int(rows),
                "buckets_probed": int(buckets),
                "candidates_verified": int(verified),
                "ids_intersected": int(ids),
                "cache_lookups": int(lookups),
            },
        })
    return {
        "version": CALIBRATION_VERSION,
        "measured_at": round(time.time(), 3),
        "host": platform.node() or "unknown",
        "num_bits": num_bits,
        "num_queries": num_queries,
        "radius": radius,
        "corpus_sizes": sizes,
        "units": acc.units(),
        "per_size": per_size,
    }


def predict_cost_ns(units: Mapping, counters: "Mapping | None") -> float:
    """Predicted request cost (nanoseconds): counters priced by units.

    Counters without a calibrated unit (``ladder_layers``,
    ``candidates_deduped``, ...) contribute nothing — their work is
    already priced through the primary counters.
    """
    if not counters:
        return 0.0
    total = 0.0
    for counter, value in counters.items():
        unit = COUNTER_UNITS.get(counter)
        if unit is not None:
            total += float(value) * float(units.get(unit, 0.0))
    return round(total, 4)


def check_units(units: Mapping,
                required: "Iterable[str] | None" = None) -> dict:
    """Validate calibrated unit costs: every required unit positive+finite.

    The CI profile job gates on this — a zero or non-finite unit means a
    measurement stage silently produced no work.  Returns the validated
    units dict.
    """
    checked: dict[str, float] = {}
    for key in (required if required is not None else UNIT_KEYS):
        value = float(units.get(key, 0.0))
        if not math.isfinite(value) or value <= 0.0:
            raise ValidationError(
                f"calibration unit {key!r} must be positive and finite, "
                f"got {value!r}")
        checked[key] = value
    return checked


def save_calibration(calibration: Mapping, path: str) -> dict:
    """Atomically persist a calibration document as JSON."""
    document = dict(calibration)
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return document


def load_calibration(path: str) -> dict:
    """Read a ``calibration.json`` sidecar, validating the version."""
    with open(path) as fh:
        document: "dict[str, Any]" = json.load(fh)
    version = document.get("version")
    if version != CALIBRATION_VERSION:
        raise ValidationError(
            f"unsupported calibration version {version!r} "
            f"(expected {CALIBRATION_VERSION})")
    return document
