"""Workload statistics: per-query-family cost and latency aggregation.

The cost counters of :mod:`repro.obs.costs` describe *one* request; a cost
model needs the *distribution*.  :class:`WorkloadStats` is a thread-safe
registry keyed by query family — ``(backend, strategy,
filter-selectivity-bucket)`` — aggregating, per family:

* a sliding-window latency histogram (count / mean / p50 / p95 / p99 / max),
* per-counter cost statistics (total, mean, max, and a power-of-two bucket
  histogram, so "how many candidates does a ``<=1%`` MIH prefilter verify"
  is answerable without raw logs).

Every root request recorded by :class:`~repro.obs.Observability` lands
here — sampled or not, thanks to the cost-only ledger — so the profile
converges on real traffic.  The store serializes to a JSON *workload
profile* sidecar (:meth:`WorkloadStats.save`), is served at
``GET /debug/workload``, and exposes labeled Prometheus families
(``repro_workload_query_latency_seconds{backend=...,strategy=...}``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Mapping

import numpy as np

from ..errors import ValidationError

PROFILE_VERSION = 1


def _pow2_bucket(value: int) -> str:
    """Upper power-of-two bucket label for a non-negative counter value."""
    if value <= 0:
        return "0"
    return str(1 << (int(value) - 1).bit_length())


class _CostStat:
    """Aggregate of one cost counter within one family (not thread-safe —
    guarded by the owning family's lock)."""

    __slots__ = ("count", "total", "max", "hist")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.max = 0
        self.hist: dict[str, int] = {}

    def add(self, value: int) -> None:
        value = int(value)
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        bucket = _pow2_bucket(value)
        self.hist[bucket] = self.hist.get(bucket, 0) + 1

    def as_dict(self) -> dict:
        mean = round(self.total / self.count, 2) if self.count else 0.0
        hist = {key: self.hist[key]
                for key in sorted(self.hist, key=lambda k: int(k))}
        return {"count": self.count, "total": self.total,
                "mean": mean, "max": self.max, "hist": hist}


class _FamilyStats:
    """Latency window + cost aggregates for one query family."""

    __slots__ = ("lock", "count", "total_ms", "window", "costs")

    def __init__(self, window: int) -> None:
        self.lock = threading.Lock()
        self.count = 0
        self.total_ms = 0.0
        self.window: deque[float] = deque(maxlen=window)
        self.costs: dict[str, _CostStat] = {}

    def record(self, duration_ms: float, costs: "Mapping | None") -> None:
        with self.lock:
            self.count += 1
            self.total_ms += float(duration_ms)
            self.window.append(float(duration_ms))
            if costs:
                for key, value in costs.items():
                    stat = self.costs.get(key)
                    if stat is None:
                        stat = self.costs[key] = _CostStat()
                    stat.add(value)

    def latency_summary(self) -> dict:
        with self.lock:
            count, total = self.count, self.total_ms
            window = np.fromiter(self.window, dtype=np.float64)
            if window.size == 0:
                return {"count": count, "mean_ms": 0.0, "p50_ms": 0.0,
                        "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
            p50, p95, p99 = np.percentile(window, (50, 95, 99))
            return {
                "count": count,
                "mean_ms": round(total / count, 4) if count else 0.0,
                "p50_ms": round(float(p50), 4),
                "p95_ms": round(float(p95), 4),
                "p99_ms": round(float(p99), 4),
                "max_ms": round(float(window.max()), 4),
            }

    def costs_summary(self) -> dict:
        with self.lock:
            return {key: self.costs[key].as_dict()
                    for key in sorted(self.costs)}


class WorkloadStats:
    """Thread-safe per-query-family workload statistics registry."""

    def __init__(self, *, window: int = 512) -> None:
        if window < 1:
            raise ValidationError(f"window must be >= 1, got {window}")
        self._window = window
        self._lock = threading.Lock()
        self._families: "dict[tuple[str, str, str], _FamilyStats]" = {}
        self._recorded = 0

    def record(self, *, family: "tuple[str, str, str]",
               duration_ms: float, costs: "Mapping | None" = None) -> None:
        """Fold one finished request into its family's aggregates."""
        with self._lock:
            stats = self._families.get(family)
            if stats is None:
                stats = self._families[family] = _FamilyStats(self._window)
            self._recorded += 1
        stats.record(duration_ms, costs)

    @property
    def recorded_total(self) -> int:
        with self._lock:
            return self._recorded

    def cost_means(self, family: "tuple[str, str, str]") -> "dict | None":
        """Mean cost counters observed for one query family, or ``None``.

        The query planner's *workload* estimator: once a family has live
        measurements, its mean counters (priced by the calibrated units)
        beat any analytic model.  Keys are counter names plus ``_count``
        (requests recorded) and ``_mean_ms`` (mean latency) so callers can
        judge how much evidence backs the estimate.
        """
        with self._lock:
            stats = self._families.get(family)
        if stats is None:
            return None
        with stats.lock:
            if not stats.count:
                return None
            means = {key: stat.total / max(stat.count, 1)
                     for key, stat in stats.costs.items()}
            means["_count"] = stats.count
            means["_mean_ms"] = stats.total_ms / stats.count
        return means

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._families)
            self._families.clear()
            self._recorded = 0
            return dropped

    def _items(self) -> "list[tuple[tuple[str, str, str], _FamilyStats]]":
        with self._lock:
            return sorted(self._families.items())

    def snapshot(self) -> dict:
        """The JSON workload profile (see module docstring for the schema)."""
        families = []
        for (backend, strategy, selectivity), stats in self._items():
            families.append({
                "backend": backend,
                "strategy": strategy,
                "selectivity": selectivity,
                "latency_ms": stats.latency_summary(),
                "costs": stats.costs_summary(),
            })
        return {"version": PROFILE_VERSION,
                "recorded_total": self.recorded_total,
                "families": families}

    def metrics_snapshot(self) -> dict:
        """A metrics-registry-shaped view for the Prometheus renderer.

        Latency becomes one labeled summary family ``query.latency``; cost
        totals become one labeled counter family ``query.cost`` with the
        counter name as a ``counter`` label.
        """
        latency, counters = [], []
        for (backend, strategy, selectivity), stats in self._items():
            labels = {"backend": backend, "strategy": strategy,
                      "selectivity": selectivity}
            latency.append({"labels": labels, **stats.latency_summary()})
            for key, cost in stats.costs_summary().items():
                counters.append({"labels": {**labels, "counter": key},
                                 "value": cost["total"]})
        return {"families": {"counters": {"query.cost": counters},
                             "gauges": {},
                             "latency": {"query.latency": latency}}}

    def save(self, path: str) -> dict:
        """Atomically persist the profile sidecar; returns what was written."""
        profile = self.snapshot()
        profile["saved_at"] = round(time.time(), 3)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(profile, fh, indent=2, sort_keys=False)
            fh.write("\n")
        os.replace(tmp, path)
        return profile

    @staticmethod
    def load(path: str) -> dict:
        """Read a persisted workload profile, validating the version."""
        with open(path) as fh:
            profile = json.load(fh)
        version = profile.get("version")
        if version != PROFILE_VERSION:
            raise ValidationError(
                f"unsupported workload profile version {version!r} "
                f"(expected {PROFILE_VERSION})")
        return profile

    def describe(self) -> dict:
        with self._lock:
            return {"families": len(self._families),
                    "recorded_total": self._recorded,
                    "window": self._window}


def merge_profiles(profiles: "list[dict]") -> dict:
    """Merge several saved profiles' cost totals (histograms summed).

    Latency windows cannot be merged exactly, so merged families report
    only count-weighted mean latency — good enough for the calibration
    cross-checks that compare cost totals across runs.
    """
    merged: dict[tuple[str, str, str], dict] = {}
    for profile in profiles:
        for fam in profile.get("families", ()):
            key = (fam["backend"], fam["strategy"], fam["selectivity"])
            into = merged.get(key)
            if into is None:
                merged[key] = json.loads(json.dumps(fam))  # deep copy
                continue
            lat, other = into["latency_ms"], fam["latency_ms"]
            total = lat["count"] + other["count"]
            if total:
                lat["mean_ms"] = round(
                    (lat["mean_ms"] * lat["count"]
                     + other["mean_ms"] * other["count"]) / total, 4)
            lat["count"] = total
            lat["max_ms"] = max(lat["max_ms"], other["max_ms"])
            for name, cost in fam.get("costs", {}).items():
                mine = into.setdefault("costs", {}).get(name)
                if mine is None:
                    into["costs"][name] = json.loads(json.dumps(cost))
                    continue
                mine["count"] += cost["count"]
                mine["total"] += cost["total"]
                mine["max"] = max(mine["max"], cost["max"])
                mine["mean"] = (round(mine["total"] / mine["count"], 2)
                                if mine["count"] else 0.0)
                for bucket, n in cost.get("hist", {}).items():
                    mine["hist"][bucket] = mine["hist"].get(bucket, 0) + n
    return {"version": PROFILE_VERSION,
            "recorded_total": sum(p.get("recorded_total", 0)
                                  for p in profiles),
            "families": [
                {"backend": backend, "strategy": strategy,
                 "selectivity": selectivity, **fam}
                for (backend, strategy, selectivity), fam in (
                    (key, {k: v for k, v in value.items()
                           if k not in ("backend", "strategy", "selectivity")})
                    for key, value in sorted(merged.items()))]}
