"""Structured event logging with trace-id correlation.

Events are emitted through the stdlib :mod:`logging` tree under
``repro.obs.<component>``, so operators plug in handlers/levels with the
tools they already have.  Each record's message is a flat, grep-friendly
``event=... trace_id=... key=value`` line, and the raw field dict rides
along in ``record.structured`` for handlers that want machine-readable
output.  Formatting is guarded by ``isEnabledFor`` so disabled levels cost
one integer comparison.
"""

from __future__ import annotations

import logging
from typing import Any


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    text = str(value)
    if any(ch.isspace() for ch in text):
        return f'"{text}"'
    return text


class StructuredLogger:
    """``event=... key=value`` logger bound to one component."""

    def __init__(self, component: str) -> None:
        self.component = component
        self._logger = logging.getLogger(f"repro.obs.{component}")

    @property
    def logger(self) -> logging.Logger:
        return self._logger

    def event(self, event: str, *, level: int = logging.INFO,
              trace_id: "str | None" = None, **fields: Any) -> None:
        """Emit one structured event (no-op when the level is disabled)."""
        if not self._logger.isEnabledFor(level):
            return
        parts = [f"event={event}"]
        if trace_id is not None:
            parts.append(f"trace_id={trace_id}")
        parts.extend(f"{key}={_format_value(value)}"
                     for key, value in sorted(fields.items()))
        payload = {"event": event, "trace_id": trace_id, **fields}
        self._logger.log(level, " ".join(parts),
                         extra={"structured": payload})
