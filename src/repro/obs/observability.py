"""The per-system observability facade: tracer + slow log + event log.

One :class:`Observability` instance hangs off each :class:`EarthQube`
system (and each :class:`FederatedEarthQube` front-end).  Entry points wrap
their work in :meth:`Observability.request`, which

* starts a sampled (or forced, for ``trace=true`` API calls) root span when
  no trace is active,
* degrades to an ordinary child span when one *is* active — a federation
  scatter that lands on an in-process node's entry point must stitch into
  the caller's tree rather than start a second root,
* always measures wall-clock duration (one ``perf_counter`` pair, even when
  untraced) so the slow-query log sees *every* request, and
* on root completion feeds the slow-query ring buffer and the structured
  event log.
"""

from __future__ import annotations

import logging
import time
from typing import Any

from ..config import ObsConfig
from . import tracing
from .logs import StructuredLogger
from .slowlog import SlowQueryLog


class RequestContext:
    """Context manager for one observed request (see ``Observability.request``)."""

    __slots__ = ("route", "attrs", "span", "is_root", "duration_ms",
                 "_obs", "_force", "_start")

    def __init__(self, obs: "Observability", route: str, force: bool,
                 attrs: dict) -> None:
        self._obs = obs
        self._force = force
        self.route = route
        self.attrs = attrs
        self.span: "tracing.Span | None" = None
        self.is_root = False
        self.duration_ms: "float | None" = None
        self._start = 0.0

    @property
    def trace_id(self) -> "str | None":
        return self.span.trace_id if self.span is not None else None

    @property
    def traced(self) -> bool:
        return self.span is not None

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)
        if self.span is not None:
            self.span.annotate(**attrs)

    def tree(self) -> "dict | None":
        """The finished span tree (root requests only; ``None`` untraced)."""
        if self.is_root and self.span is not None:
            return self.span.as_dict()
        return None

    def __enter__(self) -> "RequestContext":
        parent = tracing.current_span()
        if parent is not None:
            child = tracing.span(self.route, **self.attrs)
            if isinstance(child, tracing.Span):
                self.span = child
                child.__enter__()
        else:
            self.is_root = True
            tracer = self._obs.tracer
            if self._force or tracer.should_sample():
                self.span = tracer.start_trace(self.route, **self.attrs)
                self.span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ms = (time.perf_counter() - self._start) * 1e3
        if self.span is not None:
            self.span.__exit__(exc_type, exc, tb)
        if self.is_root:
            self._obs._finish_request(self, exc_type)
        return False


class Observability:
    """Tracing, slow-query, and event-log state for one system."""

    def __init__(self, config: "ObsConfig | None" = None, *,
                 component: str = "earthqube") -> None:
        self.config = config if config is not None else ObsConfig()
        self.component = component
        self.tracer = tracing.Tracer(enabled=self.config.enabled,
                                     sample_rate=self.config.sample_rate)
        self.slow_log = SlowQueryLog(capacity=self.config.slow_buffer_size,
                                     threshold_ms=self.config.slow_threshold_ms)
        self.log = StructuredLogger(component)

    def request(self, route: str, *, force_trace: bool = False,
                **attrs: Any) -> RequestContext:
        """Observe one request (root span if sampled/forced, child if nested)."""
        return RequestContext(self, route,
                              force_trace and self.config.enabled, attrs)

    def _finish_request(self, request: RequestContext,
                        exc_type: "type | None") -> None:
        duration_ms = request.duration_ms or 0.0
        fields = {key: value for key, value in request.attrs.items()
                  if key not in ("route", "duration_ms", "trace_id", "event")}
        if exc_type is not None:
            self.log.event("query.error", level=logging.WARNING,
                           trace_id=request.trace_id, route=request.route,
                           duration_ms=duration_ms,
                           error=exc_type.__name__, **fields)
            return
        if duration_ms >= self.slow_log.threshold_ms:
            self.slow_log.record(route=request.route, duration_ms=duration_ms,
                                 trace_id=request.trace_id,
                                 attrs=request.attrs, trace=request.tree())
            self.log.event("query.slow", level=logging.WARNING,
                           trace_id=request.trace_id, route=request.route,
                           duration_ms=duration_ms, **fields)
        elif request.traced:
            self.log.event("query", level=logging.DEBUG,
                           trace_id=request.trace_id, route=request.route,
                           duration_ms=duration_ms, **fields)

    def describe(self) -> dict:
        """JSON-compatible view of knobs and tracer/slow-log state."""
        return {
            "component": self.component,
            "config": {
                "enabled": self.config.enabled,
                "sample_rate": self.config.sample_rate,
                "slow_threshold_ms": self.config.slow_threshold_ms,
                "slow_buffer_size": self.config.slow_buffer_size,
            },
            "tracer": self.tracer.stats(),
            "slow_log": self.slow_log.describe(),
        }
