"""The per-system observability facade: tracer + slow log + event log.

One :class:`Observability` instance hangs off each :class:`EarthQube`
system (and each :class:`FederatedEarthQube` front-end).  Entry points wrap
their work in :meth:`Observability.request`, which

* starts a sampled (or forced, for ``trace=true`` API calls) root span when
  no trace is active,
* degrades to an ordinary child span when one *is* active — a federation
  scatter that lands on an in-process node's entry point must stitch into
  the caller's tree rather than start a second root,
* always measures wall-clock duration (one ``perf_counter`` pair, even when
  untraced) so the slow-query log sees *every* request, and
* on root completion feeds the slow-query ring buffer and the structured
  event log.
"""

from __future__ import annotations

import logging
import time
from typing import Any

from ..config import ObsConfig
from ..errors import ValidationError
from . import costs, tracing
from .logs import StructuredLogger
from .slowlog import SlowQueryLog
from .workload import WorkloadStats


class RequestContext:
    """Context manager for one observed request (see ``Observability.request``)."""

    __slots__ = ("route", "attrs", "span", "is_root", "duration_ms",
                 "_obs", "_force", "_start", "_ledger")

    def __init__(self, obs: "Observability", route: str, force: bool,
                 attrs: dict) -> None:
        self._obs = obs
        self._force = force
        self.route = route
        self.attrs = attrs
        self.span: "tracing.Span | None" = None
        self.is_root = False
        self.duration_ms: "float | None" = None
        self._start = 0.0
        self._ledger = None

    @property
    def trace_id(self) -> "str | None":
        return self.span.trace_id if self.span is not None else None

    @property
    def traced(self) -> bool:
        return self.span is not None

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)
        if self.span is not None:
            self.span.annotate(**attrs)
        elif self._ledger is not None:
            self._ledger.annotate(**attrs)

    def tree(self) -> "dict | None":
        """The finished span tree (root requests only; ``None`` untraced)."""
        if self.is_root and self.span is not None:
            return self.span.as_dict()
        return None

    def profile(self) -> "dict | None":
        """The request's cost profile: counters, stage self-times, family
        attributes — from the span tree when traced, from the cost-only
        ledger otherwise (``None`` when neither is collected)."""
        if self.span is not None:
            return costs.profile_from_tree(self.span.as_dict())
        if self.is_root and isinstance(self._ledger, tracing.CostSpan):
            return self._ledger.report()
        return None

    def __enter__(self) -> "RequestContext":
        parent = tracing.current_span()
        if parent is not None:
            child = tracing.span(self.route, **self.attrs)
            if isinstance(child, tracing.Span):
                self.span = child
                child.__enter__()
            elif child is not tracing.NULL_SPAN:
                # Cost-only stage under an outer unsampled request.
                self._ledger = child
                child.__enter__()
        else:
            self.is_root = True
            tracer = self._obs.tracer
            if self._force or tracer.should_sample():
                self.span = tracer.start_trace(self.route, **self.attrs)
                self.span.__enter__()
            elif self._obs.cost_tracking:
                self._ledger = tracing.CostSpan(self.route)
                if self.attrs:
                    self._ledger.annotate(**self.attrs)
                self._ledger.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ms = (time.perf_counter() - self._start) * 1e3
        if self.span is not None:
            self.span.__exit__(exc_type, exc, tb)
        elif self._ledger is not None:
            self._ledger.__exit__(exc_type, exc, tb)
        if self.is_root:
            self._obs._finish_request(self, exc_type)
        return False


class Observability:
    """Tracing, slow-query, and event-log state for one system."""

    def __init__(self, config: "ObsConfig | None" = None, *,
                 component: str = "earthqube") -> None:
        self.config = config if config is not None else ObsConfig()
        self.component = component
        self.cost_tracking = bool(self.config.enabled
                                  and self.config.cost_tracking)
        self.tracer = tracing.Tracer(enabled=self.config.enabled,
                                     sample_rate=self.config.sample_rate)
        self.slow_log = SlowQueryLog(capacity=self.config.slow_buffer_size,
                                     threshold_ms=self.config.slow_threshold_ms)
        self.workload: "WorkloadStats | None" = (
            WorkloadStats(window=self.config.workload_window)
            if self.config.enabled and self.config.workload_enabled else None)
        self.log = StructuredLogger(component)

    def request(self, route: str, *, force_trace: bool = False,
                **attrs: Any) -> RequestContext:
        """Observe one request (root span if sampled/forced, child if nested)."""
        return RequestContext(self, route,
                              force_trace and self.config.enabled, attrs)

    def _finish_request(self, request: RequestContext,
                        exc_type: "type | None") -> None:
        duration_ms = request.duration_ms or 0.0
        fields = {key: value for key, value in request.attrs.items()
                  if key not in ("route", "duration_ms", "trace_id", "event")}
        if exc_type is not None:
            self.log.event("query.error", level=logging.WARNING,
                           trace_id=request.trace_id, route=request.route,
                           duration_ms=duration_ms,
                           error=exc_type.__name__, **fields)
            return
        tree = request.tree()
        profile = (costs.profile_from_tree(tree) if tree is not None
                   else request.profile())
        if self.workload is not None:
            family_attrs = dict(request.attrs)
            if profile is not None:
                family_attrs.update(profile["attrs"])
            self.workload.record(family=costs.family_key(family_attrs),
                                 duration_ms=duration_ms,
                                 costs=(profile or {}).get("costs"))
        if duration_ms >= self.slow_log.threshold_ms:
            self.slow_log.record(route=request.route, duration_ms=duration_ms,
                                 trace_id=request.trace_id,
                                 attrs=request.attrs, trace=tree,
                                 costs=(profile or {}).get("costs"),
                                 stages=(profile or {}).get("stages"))
            self.log.event("query.slow", level=logging.WARNING,
                           trace_id=request.trace_id, route=request.route,
                           duration_ms=duration_ms, **fields)
        elif request.traced:
            self.log.event("query", level=logging.DEBUG,
                           trace_id=request.trace_id, route=request.route,
                           duration_ms=duration_ms, **fields)

    def workload_profile(self) -> "dict | None":
        """The current workload-statistics profile (``None`` if disabled)."""
        return self.workload.snapshot() if self.workload is not None else None

    def save_workload_profile(self, path: "str | None" = None) -> dict:
        """Persist the workload profile sidecar to ``path`` (or the
        configured ``workload_profile_path``)."""
        if self.workload is None:
            raise ValidationError("workload statistics are disabled")
        path = path if path is not None else self.config.workload_profile_path
        if path is None:
            raise ValidationError(
                "no path given and ObsConfig.workload_profile_path unset")
        return self.workload.save(path)

    def describe(self) -> dict:
        """JSON-compatible view of knobs and tracer/slow-log state."""
        return {
            "component": self.component,
            "config": {
                "enabled": self.config.enabled,
                "sample_rate": self.config.sample_rate,
                "slow_threshold_ms": self.config.slow_threshold_ms,
                "slow_buffer_size": self.config.slow_buffer_size,
                "cost_tracking": self.cost_tracking,
                "workload_enabled": self.workload is not None,
            },
            "tracer": self.tracer.stats(),
            "slow_log": self.slow_log.describe(),
            "workload": (self.workload.describe()
                         if self.workload is not None else None),
        }
