"""Prometheus text-format exposition of the metrics snapshots.

Renders the JSON metric snapshots (serving, federation and workload tiers)
into the Prometheus text exposition format (version 0.0.4): ``# HELP`` /
``# TYPE`` headers followed by ``name{label="value"} value`` samples.
Counters are suffixed ``_total``, latency histograms are exposed as
``summary`` families in seconds (quantile samples plus
``_count``/``_sum``), and labeled metric families carry their labels
verbatim — per-node federation latency shows up as
``repro_federation_node_latency_seconds{node="a",quantile="0.5"}``.

Latency summaries that carry lifetime ``buckets`` (see
:class:`repro.serving.metrics.LatencyHistogram`) additionally render as a
sibling *native histogram* family ``<name>_hist_seconds`` with cumulative
``le``-labeled ``_bucket`` samples (``+Inf`` included) — the form
``histogram_quantile()`` and exact ``rate()`` math consume.

The renderer is a pure function of the snapshot dicts, so ``GET
/metrics?format=prometheus`` shares one consistent read with the JSON view.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")

_QUANTILES = (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms"))


def sanitize_name(name: str) -> str:
    """A metric name mapped onto the Prometheus name grammar."""
    text = _NAME_BAD.sub("_", name)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _escape_label(value: Any) -> str:
    return (str(value).replace("\\", "\\\\")
            .replace('"', '\\"').replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Family:
    __slots__ = ("name", "mtype", "help", "samples")

    def __init__(self, name: str, mtype: str, help_text: str) -> None:
        self.name = name
        self.mtype = mtype
        self.help = help_text
        # (sample-name suffix, labels dict, value)
        self.samples: list[tuple[str, dict, float]] = []


def _family(families: "dict[str, _Family]", name: str, mtype: str,
            help_text: str) -> _Family:
    fam = families.get(name)
    if fam is None:
        fam = families[name] = _Family(name, mtype, help_text)
    return fam


def _add_summary(fam: _Family, labels: Mapping, summary: Mapping) -> None:
    for quantile, key in _QUANTILES:
        fam.samples.append(
            ("", {**labels, "quantile": quantile},
             float(summary.get(key, 0.0)) / 1e3))
    count = int(summary.get("count", 0))
    fam.samples.append(("_count", dict(labels), count))
    fam.samples.append(
        ("_sum", dict(labels),
         float(summary.get("mean_ms", 0.0)) * count / 1e3))


def _add_histogram(fam: _Family, labels: Mapping, summary: Mapping) -> None:
    """Cumulative ``_bucket`` samples from a summary's lifetime buckets."""
    for le, cumulative in summary["buckets"].items():
        fam.samples.append(
            ("_bucket", {**labels, "le": le}, float(cumulative)))
    count = int(summary.get("count", 0))
    fam.samples.append(("_count", dict(labels), count))
    fam.samples.append(
        ("_sum", dict(labels),
         float(summary.get("mean_ms", 0.0)) * count / 1e3))


def _render_snapshot(families: "dict[str, _Family]", tier: str,
                     snapshot: Mapping) -> None:
    prefix = f"repro_{tier}_"
    uptime = snapshot.get("uptime_seconds")
    if uptime is not None:
        fam = _family(families, prefix + "uptime_seconds", "gauge",
                      f"Seconds since the {tier} metrics registry started.")
        fam.samples.append(("", {}, float(uptime)))
    for name, value in snapshot.get("counters", {}).items():
        fam = _family(families, prefix + sanitize_name(name) + "_total",
                      "counter", f"Counter '{name}' ({tier} tier).")
        fam.samples.append(("", {}, float(value)))
    for name, value in snapshot.get("gauges", {}).items():
        fam = _family(families, prefix + sanitize_name(name), "gauge",
                      f"Gauge '{name}' ({tier} tier).")
        fam.samples.append(("", {}, float(value)))
    for name, summary in snapshot.get("latency", {}).items():
        fam = _family(families, prefix + sanitize_name(name) + "_seconds",
                      "summary", f"Latency of '{name}' ({tier} tier).")
        _add_summary(fam, {}, summary)
        if summary.get("buckets"):
            fam = _family(
                families, prefix + sanitize_name(name) + "_hist_seconds",
                "histogram",
                f"Latency of '{name}' ({tier} tier), cumulative buckets.")
            _add_histogram(fam, {}, summary)
    labeled = snapshot.get("families", {})
    for name, series in labeled.get("counters", {}).items():
        fam = _family(families, prefix + sanitize_name(name) + "_total",
                      "counter", f"Counter '{name}' ({tier} tier).")
        for entry in series:
            fam.samples.append(("", dict(entry.get("labels", {})),
                                float(entry.get("value", 0))))
    for name, series in labeled.get("gauges", {}).items():
        fam = _family(families, prefix + sanitize_name(name), "gauge",
                      f"Gauge '{name}' ({tier} tier).")
        for entry in series:
            fam.samples.append(("", dict(entry.get("labels", {})),
                                float(entry.get("value", 0))))
    for name, series in labeled.get("latency", {}).items():
        fam = _family(families, prefix + sanitize_name(name) + "_seconds",
                      "summary", f"Latency of '{name}' ({tier} tier).")
        for entry in series:
            _add_summary(fam, entry.get("labels", {}), entry)
        buckets = [entry for entry in series if entry.get("buckets")]
        if buckets:
            fam = _family(
                families, prefix + sanitize_name(name) + "_hist_seconds",
                "histogram",
                f"Latency of '{name}' ({tier} tier), cumulative buckets.")
            for entry in buckets:
                _add_histogram(fam, entry.get("labels", {}), entry)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(payload: Mapping) -> str:
    """The ``/metrics`` payload rendered as Prometheus exposition text."""
    families: dict[str, _Family] = {}
    for tier in ("serving", "federation", "workload"):
        snapshot = payload.get(tier)
        if isinstance(snapshot, Mapping):
            _render_snapshot(families, tier, snapshot)
    lines: list[str] = []
    for fam in families.values():
        lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.mtype}")
        for suffix, labels, value in fam.samples:
            if labels:
                rendered = ",".join(
                    f'{sanitize_name(str(key))}="{_escape_label(val)}"'
                    for key, val in sorted(labels.items()))
                lines.append(
                    f"{fam.name}{suffix}{{{rendered}}} {_format_value(value)}")
            else:
                lines.append(f"{fam.name}{suffix} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""
