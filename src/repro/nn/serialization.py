"""Model state persistence via ``npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from ..errors import ModelError
from .layers import Module


def save_state_dict(module: Module, path: "str | os.PathLike") -> None:
    """Write a module's :meth:`~repro.nn.layers.Module.state_dict` to ``path``
    as a compressed ``npz`` archive."""
    state = module.state_dict()
    if not state:
        raise ModelError("module has no parameters or buffers to save")
    np.savez_compressed(path, **state)


def load_state_dict(module: Module, path: "str | os.PathLike") -> None:
    """Load parameters saved by :func:`save_state_dict` into ``module``."""
    if not os.path.exists(path):
        raise ModelError(f"no saved state at {os.fspath(path)!r}")
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
