"""Reverse-mode autograd over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; calling :meth:`Tensor.backward` on a scalar result propagates gradients
to every tensor with ``requires_grad=True`` via a topological sweep of the
recorded graph.  Broadcasting follows numpy semantics — gradients are
summed back over broadcast dimensions by :func:`_unbroadcast`.

The op set covers everything the MiLaN losses need: arithmetic, matmul,
reductions, ReLU/Tanh/Sigmoid/abs/sqrt/exp/log, transpose/reshape, and
``maximum`` against constants.  Gradient correctness is property-tested
against central differences in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator

import numpy as np

from ..errors import ShapeError, ValidationError

_grad_enabled = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away leading dimensions numpy added.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: "Tensor | np.ndarray | float | int | list") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """An ndarray with an optional gradient and a backward closure."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data: "np.ndarray | float | int | list",
                 requires_grad: bool = False, *,
                 _parents: "tuple[Tensor, ...]" = (), _op: str = "leaf") -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self.grad: "np.ndarray | None" = None
        self._backward: "Callable[[np.ndarray], None] | None" = None
        self._parents = _parents if _grad_enabled else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self._op!r}{grad_note})"

    def numpy(self) -> np.ndarray:
        """The underlying array (a view; do not mutate during training)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a 1-element tensor."""
        if self.data.size != 1:
            raise ShapeError(f"item() requires a 1-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing this tensor's data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #

    @staticmethod
    def _make(data: np.ndarray, parents: "tuple[Tensor, ...]", op: str,
              backward: "Callable[[np.ndarray], None]") -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires,
                     _parents=parents if requires else (), _op=op)
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #

    def __add__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other_t._accumulate(grad)

        return Tensor._make(data, (self, other_t), "add", backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), "neg", backward)

    def __sub__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        return self + (-(other if isinstance(other, Tensor) else Tensor(_as_array(other))))

    def __rsub__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)) + (-self)

    def __mul__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other_t.data)
            other_t._accumulate(grad * self.data)

        return Tensor._make(data, (self, other_t), "mul", backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other_t.data)
            other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor._make(data, (self, other_t), "div", backward)

    def __rtruediv__(self, other: "float | np.ndarray") -> "Tensor":
        return Tensor(_as_array(other)) / self

    def __pow__(self, exponent: "int | float") -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ValidationError("Tensor ** only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), "pow", backward)

    def __matmul__(self, other: "Tensor | np.ndarray") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other))
        if self.ndim not in (1, 2) or other_t.ndim not in (1, 2):
            raise ShapeError(
                f"matmul supports 1D/2D operands, got {self.shape} @ {other_t.shape}")
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 2 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other_t._accumulate(a.T @ grad)
            elif a.ndim == 1 and b.ndim == 2:
                self._accumulate(grad @ b.T)
                other_t._accumulate(np.outer(a, grad))
            elif a.ndim == 2 and b.ndim == 1:
                self._accumulate(np.outer(grad, b))
                other_t._accumulate(a.T @ grad)
            else:  # 1D @ 1D: scalar result
                self._accumulate(grad * b)
                other_t._accumulate(grad * a)

        return Tensor._make(data, (self, other_t), "matmul", backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), "relu", backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), "tanh", backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), "sigmoid", backward)

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), "log", backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return Tensor._make(data, (self,), "abs", backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._make(data, (self,), "sqrt", backward)

    def maximum(self, constant: float) -> "Tensor":
        """Elementwise ``max(x, constant)`` against a scalar constant."""
        mask = self.data > constant
        data = np.where(mask, self.data, constant)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), "maximum", backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Elementwise clamp; gradient flows only inside ``(lo, hi)``."""
        mask = (self.data > lo) & (self.data < hi)
        data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), "clip", backward)

    # ------------------------------------------------------------------ #
    # Reductions and reshaping
    # ------------------------------------------------------------------ #

    def sum(self, axis: "int | tuple[int, ...] | None" = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor._make(data, (self,), "sum", backward)

    def mean(self, axis: "int | tuple[int, ...] | None" = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).reshape(self.data.shape))

        return Tensor._make(data, (self,), "reshape", backward)

    @property
    def T(self) -> "Tensor":
        data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.asarray(grad).T)

        return Tensor._make(data, (self,), "transpose", backward)

    def __getitem__(self, key) -> "Tensor":
        data = self.data[key]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, key, grad)
            self._accumulate(full)

        return Tensor._make(data, (self,), "getitem", backward)

    # ------------------------------------------------------------------ #
    # Backpropagation
    # ------------------------------------------------------------------ #

    def backward(self, grad: "np.ndarray | float | None" = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1.0 and must then be a scalar tensor; for
        non-scalar outputs pass an explicit output gradient.
        """
        if not self.requires_grad:
            raise ValidationError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ShapeError(
                    f"backward() without a gradient requires a scalar output, "
                    f"got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        order = _topological_order(self)
        self._accumulate(grad)
        for node in order:
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Nodes of the graph reachable from ``root`` in reverse topological
    order (root first), iteratively to avoid recursion limits."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def stack_tensors(tensors: Iterable[Tensor]) -> Tensor:
    """Stack 1D/2D tensors of identical shape along a new leading axis."""
    tensor_list = list(tensors)
    if not tensor_list:
        raise ValidationError("cannot stack an empty tensor list")
    data = np.stack([t.data for t in tensor_list])

    def backward(grad: np.ndarray) -> None:
        for i, t in enumerate(tensor_list):
            t._accumulate(grad[i])

    return Tensor._make(data, tuple(tensor_list), "stack", backward)
