"""Neural-network layers over the autograd :class:`~repro.nn.tensor.Tensor`.

:class:`Module` is the composition base: it tracks parameters and submodules
by attribute assignment (like ``torch.nn.Module``), exposes
``parameters()`` / ``state_dict()`` / ``load_state_dict()``, and a
train/eval mode flag that :class:`Dropout` and :class:`BatchNorm1d` honor.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..errors import ShapeError, ValidationError
from ..utils.rng import as_rng
from .init import kaiming_uniform, xavier_uniform, zeros_
from .tensor import Tensor


class Module:
    """Base class for layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------ #

    def forward(self, x: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # ------------------------------------------------------------------ #

    def parameters(self) -> Iterator[Tensor]:
        """All trainable parameters, depth first."""
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set train/eval mode recursively; returns self for chaining."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (affects Dropout/BatchNorm)."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #

    def state_dict(self, prefix: str = "") -> dict[str, np.ndarray]:
        """Flat mapping of dotted names to parameter/buffer arrays (copies)."""
        state: dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[prefix + name] = param.data.copy()
        for name, buffer in self._buffers.items():
            state[prefix + name] = np.array(buffer, copy=True)
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], prefix: str = "") -> None:
        """Load arrays produced by :meth:`state_dict`; shapes must match."""
        for name, param in self._parameters.items():
            key = prefix + name
            if key not in state:
                raise ValidationError(f"state dict is missing parameter {key!r}")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {key!r} has shape {value.shape}, "
                    f"expected {param.data.shape}")
            param.data = value.copy()
        for name in self._buffers:
            key = prefix + name
            if key in state:
                self._buffers[name] = np.array(state[key], copy=True)
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix=f"{prefix}{name}.")


class Linear(Module):
    """Fully connected layer ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, *,
                 bias: bool = True, activation_hint: str = "relu",
                 rng: "np.random.Generator | int | None" = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValidationError(
                f"Linear sizes must be positive, got {in_features} -> {out_features}")
        rng = as_rng(rng)
        if activation_hint == "tanh":
            weight = xavier_uniform(in_features, out_features, rng)
        else:
            weight = kaiming_uniform(in_features, out_features, rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(weight, requires_grad=True)
        self.bias = Tensor(zeros_(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected input dim {self.in_features}, got {x.shape}")
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent (the MiLaN hash-layer activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5,
                 rng: "np.random.Generator | int | None" = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValidationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = as_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float64) / keep
        return x * Tensor(mask)


class BatchNorm1d(Module):
    """Batch normalization over feature columns of a ``(N, F)`` batch.

    Keeps running statistics for eval mode, like the framework original.
    """

    def __init__(self, num_features: int, *, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValidationError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValidationError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(num_features), requires_grad=True)
        self.beta = Tensor(np.zeros(num_features), requires_grad=True)
        self._buffers["running_mean"] = np.zeros(num_features)
        self._buffers["running_var"] = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expected (N, {self.num_features}), got {x.shape}")
        if self.training:
            mean = x.mean(axis=0)
            centered = x - mean
            var = (centered ** 2).mean(axis=0)
            m = self.momentum
            self._buffers["running_mean"] = (
                (1 - m) * self._buffers["running_mean"] + m * mean.data)
            self._buffers["running_var"] = (
                (1 - m) * self._buffers["running_var"] + m * var.data)
            normalized = centered / (var + self.eps).sqrt()
        else:
            mean = Tensor(self._buffers["running_mean"])
            var = Tensor(self._buffers["running_var"])
            normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        if not modules:
            raise ValidationError("Sequential needs at least one module")
        self.layers = list(modules)
        for i, module in enumerate(modules):
            self._modules[str(i)] = module

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self.layers:
            x = module(x)
        return x
