"""Weight initialization schemes."""

from __future__ import annotations

import math

import numpy as np

from ..errors import ValidationError
from ..utils.rng import as_rng


def xavier_uniform(fan_in: int, fan_out: int,
                   rng: "np.random.Generator | int | None" = None) -> np.ndarray:
    """Glorot/Xavier uniform init for a ``(fan_in, fan_out)`` weight matrix.

    Suited to tanh/sigmoid layers (MiLaN's hash layer is tanh).
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError(f"fan_in/fan_out must be positive, got {fan_in}, {fan_out}")
    rng = as_rng(rng)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(fan_in: int, fan_out: int,
                    rng: "np.random.Generator | int | None" = None) -> np.ndarray:
    """He/Kaiming uniform init, suited to ReLU hidden layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValidationError(f"fan_in/fan_out must be positive, got {fan_in}, {fan_out}")
    rng = as_rng(rng)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros_(shape: "int | tuple[int, ...]") -> np.ndarray:
    """Zero init (biases)."""
    return np.zeros(shape, dtype=np.float64)
