"""Optimizers: SGD with momentum and Adam."""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError
from .tensor import Tensor


class Optimizer:
    """Base optimizer over a fixed list of parameters."""

    def __init__(self, parameters, lr: float, weight_decay: float = 0.0) -> None:
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValidationError("optimizer received no parameters")
        if lr <= 0:
            raise ValidationError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValidationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear all parameter gradients."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _grad_of(self, param: Tensor) -> "np.ndarray | None":
        grad = param.grad
        if grad is None:
            return None
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        return grad


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, parameters, lr: float = 1e-2, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            grad = self._grad_of(param)
            if grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValidationError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = self._grad_of(param)
            if grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
