"""A small numpy autograd engine and neural-network toolkit.

This package is the substitute for PyTorch in the MiLaN training pipeline
(DESIGN.md §2): reverse-mode automatic differentiation over numpy arrays
(:mod:`repro.nn.tensor`), standard layers (:mod:`repro.nn.layers`),
optimizers (:mod:`repro.nn.optim`), initialization schemes
(:mod:`repro.nn.init`), and state (de)serialization
(:mod:`repro.nn.serialization`).

Only what the paper's hashing head needs is implemented — dense layers,
ReLU/Tanh/Sigmoid, BatchNorm, Dropout, Adam/SGD — but each piece is complete
and tested (gradients are property-checked against central differences).
"""

from .init import kaiming_uniform, xavier_uniform, zeros_
from .layers import (
    BatchNorm1d,
    Dropout,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Adam, Optimizer
from .serialization import load_state_dict, save_state_dict
from .tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "BatchNorm1d",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "xavier_uniform",
    "kaiming_uniform",
    "zeros_",
    "save_state_dict",
    "load_state_dict",
]
