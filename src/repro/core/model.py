"""The MiLaN hashing network: an MLP ending in a tanh code layer.

The GRSL MiLaN hashes *pre-extracted deep features* through fully connected
layers whose final activation is tanh, so the continuous codes live in
``(-1, 1)`` and sign-binarization is a small perturbation once the
quantization loss has done its work.  Hidden layers use ReLU.
"""

from __future__ import annotations

import numpy as np

from ..config import MiLaNConfig
from ..errors import ValidationError
from ..nn.layers import Dropout, Linear, Module, ReLU, Sequential, Tanh
from ..nn.tensor import Tensor, no_grad
from ..utils.rng import as_rng, spawn_rng


class MiLaNNetwork(Module):
    """feature vector -> continuous code in ``(-1, 1)^num_bits``."""

    def __init__(self, feature_dim: int, config: "MiLaNConfig | None" = None,
                 rng: "np.random.Generator | int | None" = None) -> None:
        super().__init__()
        if feature_dim <= 0:
            raise ValidationError(f"feature_dim must be positive, got {feature_dim}")
        self.config = config or MiLaNConfig()
        self.feature_dim = feature_dim
        rng = as_rng(rng)
        layer_rngs = spawn_rng(rng, len(self.config.hidden_sizes) + 1)

        layers: list[Module] = []
        in_dim = feature_dim
        for i, hidden in enumerate(self.config.hidden_sizes):
            layers.append(Linear(in_dim, hidden, activation_hint="relu", rng=layer_rngs[i]))
            layers.append(ReLU())
            if self.config.dropout > 0:
                layers.append(Dropout(self.config.dropout, rng=layer_rngs[i]))
            in_dim = hidden
        layers.append(Linear(in_dim, self.config.num_bits, activation_hint="tanh",
                             rng=layer_rngs[-1]))
        layers.append(Tanh())
        self.net = Sequential(*layers)

    @property
    def num_bits(self) -> int:
        """Length of the produced codes."""
        return self.config.num_bits

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    def encode(self, features: np.ndarray) -> np.ndarray:
        """Inference helper: ``(N, F)`` or ``(F,)`` features -> continuous
        codes as a plain ndarray (no graph, eval mode)."""
        features = np.asarray(features, dtype=np.float64)
        squeeze = features.ndim == 1
        if squeeze:
            features = features[None, :]
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                codes = self.net(Tensor(features)).numpy()
        finally:
            self.train(was_training)
        return codes[0] if squeeze else codes
