"""The high-level MiLaN facade: features in, binary codes out.

:class:`MiLaNHasher` owns the full paper pipeline:

1. fit a :class:`~repro.features.Standardizer` on training features,
2. train the :class:`~repro.core.model.MiLaNNetwork` with the three-part
   loss on label-derived triplets,
3. hash any features — archive or external "query-by-new-example" images —
   to continuous codes, ``{0,1}`` bits, or packed uint64 words ready for
   the Hamming indexes.

EarthQube keeps one fitted hasher: archive codes are produced once at
ingestion; external query images are hashed on the fly (paper, Section
3.3).
"""

from __future__ import annotations

import numpy as np

from ..config import MiLaNConfig, TrainConfig
from ..errors import NotFittedError, ValidationError
from ..features.normalization import Standardizer
from ..index.codes import pack_bits
from .binarize import binarize_continuous
from .model import MiLaNNetwork
from .trainer import MiLaNTrainer, TrainingHistory


class MiLaNHasher:
    """Trainable feature -> binary-hash-code pipeline."""

    def __init__(self, milan_config: "MiLaNConfig | None" = None,
                 train_config: "TrainConfig | None" = None) -> None:
        self.milan_config = milan_config or MiLaNConfig()
        self.train_config = train_config or TrainConfig()
        self.standardizer = Standardizer()
        self.network: "MiLaNNetwork | None" = None
        self.history: "TrainingHistory | None" = None

    @property
    def num_bits(self) -> int:
        """Code length in bits (128 in the demo)."""
        return self.milan_config.num_bits

    @property
    def is_fitted(self) -> bool:
        return self.network is not None

    def fit(self, features: np.ndarray, label_matrix: np.ndarray) -> "MiLaNHasher":
        """Standardize features and train the network; returns self."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValidationError(f"features must be (N, F), got shape {features.shape}")
        standardized = self.standardizer.fit_transform(features)
        trainer = MiLaNTrainer(self.milan_config, self.train_config)
        self.network, self.history = trainer.train(standardized, label_matrix)
        return self

    def _require_network(self) -> MiLaNNetwork:
        if self.network is None:
            raise NotFittedError("MiLaNHasher used before fit()")
        return self.network

    def hash_continuous(self, features: np.ndarray) -> np.ndarray:
        """Continuous codes in ``(-1, 1)`` (pre-binarization)."""
        network = self._require_network()
        standardized = self.standardizer.transform(features)
        return network.encode(standardized)

    def hash_bits(self, features: np.ndarray) -> np.ndarray:
        """``{0, 1}`` uint8 code bits."""
        return binarize_continuous(self.hash_continuous(features))

    def hash_packed(self, features: np.ndarray) -> np.ndarray:
        """Packed uint64 codes ready for the Hamming indexes."""
        return pack_bits(self.hash_bits(features))

    def state_dict(self) -> dict[str, np.ndarray]:
        """Serializable state: network weights + standardizer statistics."""
        network = self._require_network()
        state = network.state_dict(prefix="network.")
        state["standardizer.mean"] = np.asarray(self.standardizer.mean_)
        state["standardizer.scale"] = np.asarray(self.standardizer.scale_)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray], feature_dim: int) -> "MiLaNHasher":
        """Restore a fitted hasher (inverse of :meth:`state_dict`)."""
        if "standardizer.mean" not in state or "standardizer.scale" not in state:
            raise ValidationError("state dict is missing standardizer statistics")
        self.standardizer.mean_ = np.asarray(state["standardizer.mean"], dtype=np.float64)
        self.standardizer.scale_ = np.asarray(state["standardizer.scale"], dtype=np.float64)
        self.network = MiLaNNetwork(feature_dim, self.milan_config)
        self.network.load_state_dict(state, prefix="network.")
        self.network.eval()
        return self
