"""The three MiLaN training losses (paper, Section 2.2).

Given continuous code batches (tanh outputs in ``(-1, 1)``):

* :func:`triplet_loss` — "learn a metric space where semantically similar
  images are close to each other and dissimilar ones are separated";
* :func:`bit_balance_loss` + :func:`independence_loss` — "forces the hash
  codes to have a balanced number of binary values (i.e., each bit has a 50%
  chance to be activated) and makes the different bits independent from each
  other";
* :func:`quantization_loss` — "mitigates the performance degradation of the
  generated hash codes through binarization".

All losses are scalars built from autograd tensors; distances are averaged
over bits so the margin does not depend on the code length (experiment E9
sweeps ``num_bits`` with the same margin).
"""

from __future__ import annotations

import numpy as np

from ..config import MiLaNConfig
from ..errors import ShapeError
from ..nn.tensor import Tensor


def _check_batch(codes: Tensor, name: str) -> None:
    if codes.ndim != 2:
        raise ShapeError(f"{name} must be a (batch, bits) tensor, got shape {codes.shape}")


def squared_distances(codes_a: Tensor, codes_b: Tensor) -> Tensor:
    """Row-wise mean squared distance between two aligned code batches."""
    _check_batch(codes_a, "codes_a")
    _check_batch(codes_b, "codes_b")
    if codes_a.shape != codes_b.shape:
        raise ShapeError(f"code batches differ in shape: {codes_a.shape} vs {codes_b.shape}")
    diff = codes_a - codes_b
    return (diff ** 2).mean(axis=1)


def triplet_loss(anchors: Tensor, positives: Tensor, negatives: Tensor,
                 margin: float = 1.0) -> Tensor:
    """Mean hinge over triplets: ``max(0, d(a,p) - d(a,n) + margin)``."""
    d_ap = squared_distances(anchors, positives)
    d_an = squared_distances(anchors, negatives)
    return (d_ap - d_an + margin).maximum(0.0).mean()


def bit_balance_loss(codes: Tensor) -> Tensor:
    """Penalize imbalanced bits: squared batch-mean of each bit.

    Zero exactly when every bit is +1 on half the batch and -1 on the other
    half — the "50% chance to be activated" property.
    """
    _check_batch(codes, "codes")
    return (codes.mean(axis=0) ** 2).mean()


def independence_loss(codes: Tensor) -> Tensor:
    """Penalize correlated bits: ``mean((Hᵀ H / B - I)²)``.

    Off-diagonal terms push distinct bits toward decorrelation; diagonal
    terms push per-bit second moments toward 1, complementing the
    quantization loss.
    """
    _check_batch(codes, "codes")
    batch, bits = codes.shape
    gram = (codes.T @ codes) * (1.0 / batch)
    eye = Tensor(np.eye(bits))
    return ((gram - eye) ** 2).mean()


def quantization_loss(codes: Tensor) -> Tensor:
    """Push continuous codes toward ±1: ``mean((|h| - 1)²)``."""
    _check_batch(codes, "codes")
    return ((codes.abs() - 1.0) ** 2).mean()


def milan_loss(anchors: Tensor, positives: Tensor, negatives: Tensor,
               config: MiLaNConfig) -> tuple[Tensor, dict[str, float]]:
    """The weighted MiLaN objective over one triplet batch.

    Returns the scalar total plus a float breakdown (for logging and the
    E10 ablation bench).  Loss terms with zero weight are skipped entirely,
    so ablations genuinely remove the computation.
    """
    total: "Tensor | None" = None
    breakdown: dict[str, float] = {}

    def accumulate(term: Tensor, weight: float, name: str) -> None:
        nonlocal total
        breakdown[name] = term.item()
        weighted = term * weight
        total = weighted if total is None else total + weighted

    if config.weight_triplet > 0:
        accumulate(triplet_loss(anchors, positives, negatives, config.triplet_margin),
                   config.weight_triplet, "triplet")
    stacked = _vertical_concat(anchors, positives, negatives)
    if config.weight_bit_balance > 0:
        accumulate(bit_balance_loss(stacked), config.weight_bit_balance, "bit_balance")
    if config.weight_independence > 0:
        accumulate(independence_loss(stacked), config.weight_independence, "independence")
    if config.weight_quantization > 0:
        accumulate(quantization_loss(stacked), config.weight_quantization, "quantization")
    if total is None:
        # All weights zero: a constant zero with a graph-compatible type.
        total = (anchors * 0.0).sum()
        breakdown["zero"] = 0.0
    breakdown["total"] = total.item()
    return total, breakdown


def _vertical_concat(*tensors: Tensor) -> Tensor:
    """Concatenate (B, K) tensors along the batch axis, keeping gradients."""
    from ..nn.tensor import stack_tensors
    stacked = stack_tensors(tensors)          # (T, B, K)
    t, b, k = stacked.shape
    return stacked.reshape(t * b, k)
