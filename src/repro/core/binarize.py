"""Sign binarization of continuous codes.

The quantization loss keeps network outputs near ±1, so thresholding at zero
("sign binarization") loses little retrieval quality — exactly the design
argument of the paper.  Bits are ``{0, 1}`` uint8; packing into machine
words for fast Hamming arithmetic lives in :mod:`repro.index.codes`.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def binarize_continuous(codes: np.ndarray) -> np.ndarray:
    """Threshold continuous codes at zero -> ``{0, 1}`` uint8 bits.

    Accepts ``(N, K)`` or ``(K,)``; zero maps to bit 1 (ties are rare with
    tanh outputs and must be deterministic).
    """
    codes = np.asarray(codes)
    if codes.ndim not in (1, 2):
        raise ShapeError(f"codes must be 1D or 2D, got shape {codes.shape}")
    return (codes >= 0).astype(np.uint8)


def quantization_error(codes: np.ndarray) -> float:
    """Mean squared gap between continuous codes and their binarized ±1 form.

    The quantity the quantization loss minimizes; reported by the E10
    ablation bench.
    """
    codes = np.asarray(codes, dtype=np.float64)
    signs = np.where(codes >= 0, 1.0, -1.0)
    return float(((codes - signs) ** 2).mean())


def bit_activation_rates(bits: np.ndarray) -> np.ndarray:
    """Per-bit activation frequency over a code matrix (balance diagnostic)."""
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ShapeError(f"bits must be (N, K), got shape {bits.shape}")
    return bits.astype(np.float64).mean(axis=0)


def bit_entropy(bits: np.ndarray) -> float:
    """Mean per-bit Shannon entropy in bits (1.0 = perfectly balanced).

    The bit-balance loss drives this toward 1; the E10 bench reports it.
    """
    rates = bit_activation_rates(bits)
    rates = np.clip(rates, 1e-12, 1 - 1e-12)
    entropy = -(rates * np.log2(rates) + (1 - rates) * np.log2(1 - rates))
    return float(entropy.mean())
