"""MiLaN: metric-learning-based deep hashing (the paper's core technology).

"MiLaN is a deep hashing network based on metric learning that encodes
high-dimensional image features into compact binary hash codes" trained with
three losses — triplet, bit balance, quantization (paper, Sections 1 and
2.2).  This package implements that pipeline on the numpy autograd engine:

* :mod:`repro.core.similarity` — label-derived similarity ground truth
  (patches sharing CLC labels are "similar"),
* :mod:`repro.core.losses` — the three training losses,
* :mod:`repro.core.model` — the hashing MLP with a tanh code layer,
* :mod:`repro.core.sampler` — random and semi-hard triplet mining,
* :mod:`repro.core.trainer` — the optimization loop,
* :mod:`repro.core.binarize` — sign binarization of network outputs,
* :mod:`repro.core.hasher` — :class:`MiLaNHasher`, the high-level facade
  (fit on features + labels, then hash patches to packed binary codes).
"""

from .binarize import binarize_continuous
from .hasher import MiLaNHasher
from .losses import (
    bit_balance_loss,
    independence_loss,
    milan_loss,
    quantization_loss,
    triplet_loss,
)
from .model import MiLaNNetwork
from .sampler import TripletSampler
from .similarity import jaccard_similarity_matrix, shares_label_matrix
from .trainer import MiLaNTrainer, TrainingHistory

__all__ = [
    "MiLaNHasher",
    "MiLaNNetwork",
    "MiLaNTrainer",
    "TrainingHistory",
    "TripletSampler",
    "triplet_loss",
    "bit_balance_loss",
    "independence_loss",
    "quantization_loss",
    "milan_loss",
    "binarize_continuous",
    "shares_label_matrix",
    "jaccard_similarity_matrix",
]
