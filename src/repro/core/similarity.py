"""Label-derived similarity ground truth for metric learning and evaluation.

BigEarthNet is multi-label, so "semantically similar" is graded: the triplet
loss treats two patches as similar when they share at least one CLC label
(the convention of the MiLaN paper), while evaluation metrics can weight by
Jaccard overlap of the label sets (ACG/NDCG-style).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, ValidationError


def _check_label_matrix(labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ShapeError(f"label matrix must be (N, L), got shape {labels.shape}")
    if labels.dtype != bool:
        labels = labels.astype(bool)
    return labels


def shares_label_matrix(labels_a: np.ndarray,
                        labels_b: "np.ndarray | None" = None) -> np.ndarray:
    """Boolean ``(Na, Nb)`` matrix: do row ``i`` of A and row ``j`` of B share
    at least one label?  With one argument, the symmetric self-similarity."""
    a = _check_label_matrix(labels_a)
    b = a if labels_b is None else _check_label_matrix(labels_b)
    if a.shape[1] != b.shape[1]:
        raise ShapeError(f"label dimensions differ: {a.shape[1]} vs {b.shape[1]}")
    return (a.astype(np.int32) @ b.astype(np.int32).T) > 0


def jaccard_similarity_matrix(labels_a: np.ndarray,
                              labels_b: "np.ndarray | None" = None) -> np.ndarray:
    """``(Na, Nb)`` Jaccard overlap of label sets: |A∩B| / |A∪B|.

    Rows with empty label sets yield zeros against everything.
    """
    a = _check_label_matrix(labels_a).astype(np.int32)
    b = a if labels_b is None else _check_label_matrix(labels_b).astype(np.int32)
    if a.shape[1] != b.shape[1]:
        raise ShapeError(f"label dimensions differ: {a.shape[1]} vs {b.shape[1]}")
    intersection = a @ b.T
    sizes_a = a.sum(axis=1, keepdims=True)
    sizes_b = b.sum(axis=1, keepdims=True)
    union = sizes_a + sizes_b.T - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(union > 0, intersection / np.maximum(union, 1), 0.0)
    return out


def relevance_vector(query_labels: np.ndarray, archive_labels: np.ndarray,
                     *, mode: str = "share") -> np.ndarray:
    """Per-archive-item relevance of a single query.

    ``mode="share"`` returns booleans (shares >= 1 label);
    ``mode="jaccard"`` returns graded relevance in [0, 1].
    """
    query_labels = np.asarray(query_labels)
    if query_labels.ndim != 1:
        raise ShapeError(f"query_labels must be a 1D label indicator, got {query_labels.shape}")
    if mode == "share":
        return shares_label_matrix(query_labels[None, :], archive_labels)[0]
    if mode == "jaccard":
        return jaccard_similarity_matrix(query_labels[None, :], archive_labels)[0]
    raise ValidationError(f"unknown relevance mode {mode!r}; expected 'share' or 'jaccard'")
