"""The MiLaN training loop.

Per epoch: mine triplets (random or semi-hard), run minibatches through the
network (anchors, positives, and negatives share one forward pass for
efficiency), apply the weighted three-part loss, and step Adam.  Tracks a
:class:`TrainingHistory` of per-epoch loss components with optional early
stopping on the total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MiLaNConfig, TrainConfig
from ..errors import ShapeError, TrainingError, ValidationError
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..utils.rng import as_rng
from .losses import milan_loss
from .model import MiLaNNetwork
from .sampler import TripletSampler


@dataclass
class TrainingHistory:
    """Per-epoch means of each loss component."""

    epochs: list[int] = field(default_factory=list)
    components: dict[str, list[float]] = field(default_factory=dict)

    def record(self, epoch: int, breakdown: dict[str, float]) -> None:
        self.epochs.append(epoch)
        for name, value in breakdown.items():
            self.components.setdefault(name, []).append(value)

    @property
    def final_total(self) -> float:
        """Total loss of the last recorded epoch."""
        totals = self.components.get("total")
        if not totals:
            raise TrainingError("no epochs recorded")
        return totals[-1]


class MiLaNTrainer:
    """Trains a :class:`MiLaNNetwork` on features + multi-label ground truth."""

    def __init__(self, milan_config: "MiLaNConfig | None" = None,
                 train_config: "TrainConfig | None" = None) -> None:
        self.milan_config = milan_config or MiLaNConfig()
        self.train_config = train_config or TrainConfig()

    def train(self, features: np.ndarray, label_matrix: np.ndarray,
              network: "MiLaNNetwork | None" = None,
              ) -> tuple[MiLaNNetwork, TrainingHistory]:
        """Run the full loop; returns the trained network and its history.

        ``features`` must already be standardized; ``label_matrix`` is the
        ``(N, L)`` boolean ground truth aligned with feature rows.
        """
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(label_matrix)
        if features.ndim != 2:
            raise ShapeError(f"features must be (N, F), got {features.shape}")
        if labels.shape[0] != features.shape[0]:
            raise ValidationError(
                f"features ({features.shape[0]}) and labels ({labels.shape[0]}) disagree")
        cfg = self.train_config
        rng = as_rng(cfg.seed)
        network = network or MiLaNNetwork(features.shape[1], self.milan_config, rng=rng)
        sampler = TripletSampler(labels, rng=rng)
        optimizer = Adam(network.parameters(), lr=cfg.learning_rate,
                         weight_decay=cfg.weight_decay)
        history = TrainingHistory()
        best_total = np.inf
        stall = 0

        for epoch in range(cfg.epochs):
            if cfg.semi_hard and epoch > 0:
                current_codes = network.encode(features)
                anchors, positives, negatives = sampler.sample_semi_hard(
                    cfg.triplets_per_epoch, current_codes, self.milan_config.triplet_margin)
            else:
                anchors, positives, negatives = sampler.sample(cfg.triplets_per_epoch)

            epoch_sums: dict[str, float] = {}
            batches = 0
            network.train()
            for start in range(0, len(anchors), cfg.batch_size):
                stop = start + cfg.batch_size
                idx_a = anchors[start:stop]
                idx_p = positives[start:stop]
                idx_n = negatives[start:stop]
                if len(idx_a) < 2:
                    continue  # losses need at least 2 rows for batch statistics
                batch = np.concatenate([features[idx_a], features[idx_p], features[idx_n]])
                out = network(Tensor(batch))
                b = len(idx_a)
                code_a, code_p, code_n = out[:b], out[b:2 * b], out[2 * b:]
                total, breakdown = milan_loss(code_a, code_p, code_n, self.milan_config)
                optimizer.zero_grad()
                total.backward()
                optimizer.step()
                for name, value in breakdown.items():
                    epoch_sums[name] = epoch_sums.get(name, 0.0) + value
                batches += 1

            if batches == 0:
                raise TrainingError("no batches ran; increase triplets_per_epoch")
            epoch_means = {name: value / batches for name, value in epoch_sums.items()}
            history.record(epoch, epoch_means)
            if cfg.log_every and (epoch % cfg.log_every == 0 or epoch == cfg.epochs - 1):
                parts = ", ".join(f"{k}={v:.4f}" for k, v in sorted(epoch_means.items()))
                print(f"[milan] epoch {epoch + 1}/{cfg.epochs}: {parts}")

            if cfg.early_stop_patience:
                total_now = epoch_means.get("total", np.inf)
                if total_now < best_total - 1e-6:
                    best_total = total_now
                    stall = 0
                else:
                    stall += 1
                    if stall >= cfg.early_stop_patience:
                        break
        network.eval()
        return network, history
