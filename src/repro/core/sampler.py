"""Triplet mining over label-derived similarity.

A triplet is (anchor, positive, negative) where anchor and positive share at
least one CLC label and anchor and negative share none.  Two strategies:

* **random** — uniform positives/negatives per anchor; cheap, unbiased;
* **semi-hard** — given the network's current codes, prefer negatives that
  violate the margin (``d_an < d_ap + margin``) but are not *already* closer
  than the positive; the classic FaceNet refinement that speeds up
  convergence considerably on easy datasets.
"""

from __future__ import annotations

import numpy as np

from ..errors import TrainingError, ValidationError
from ..utils.rng import as_rng
from .similarity import shares_label_matrix


class TripletSampler:
    """Samples (anchor, positive, negative) index triples from labels."""

    def __init__(self, label_matrix: np.ndarray,
                 rng: "np.random.Generator | int | None" = None) -> None:
        labels = np.asarray(label_matrix)
        if labels.ndim != 2 or labels.shape[0] < 3:
            raise ValidationError(
                f"label matrix must be (N >= 3, L), got shape {labels.shape}")
        self._labels = labels.astype(bool)
        self._rng = as_rng(rng)
        self._similar = shares_label_matrix(self._labels)
        np.fill_diagonal(self._similar, False)
        # Anchors must have at least one positive and one negative.
        has_positive = self._similar.any(axis=1)
        has_negative = (~self._similar).sum(axis=1) > 1  # excluding self
        self._valid_anchors = np.flatnonzero(has_positive & has_negative)
        if self._valid_anchors.size == 0:
            raise TrainingError(
                "no valid anchors: every item is similar (or dissimilar) to all others")

    @property
    def num_items(self) -> int:
        return self._labels.shape[0]

    @property
    def valid_anchor_fraction(self) -> float:
        """Share of items usable as anchors (diagnostic)."""
        return self._valid_anchors.size / self._labels.shape[0]

    def sample(self, count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``count`` random triplets as (anchors, positives, negatives)."""
        if count <= 0:
            raise ValidationError(f"triplet count must be positive, got {count}")
        rng = self._rng
        anchors = rng.choice(self._valid_anchors, size=count, replace=True)
        positives = np.empty(count, dtype=np.int64)
        negatives = np.empty(count, dtype=np.int64)
        for i, anchor in enumerate(anchors):
            similar_row = self._similar[anchor]
            positive_pool = np.flatnonzero(similar_row)
            negative_pool = np.flatnonzero(~similar_row)
            negative_pool = negative_pool[negative_pool != anchor]
            positives[i] = rng.choice(positive_pool)
            negatives[i] = rng.choice(negative_pool)
        return anchors, positives, negatives

    def sample_semi_hard(self, count: int, codes: np.ndarray,
                         margin: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``count`` triplets preferring semi-hard negatives under ``codes``.

        ``codes`` are the network's current continuous codes, one row per
        item; distances are mean squared differences (matching the loss).
        Falls back to a random negative when an anchor has no semi-hard one.
        """
        codes = np.asarray(codes, dtype=np.float64)
        if codes.shape[0] != self._labels.shape[0]:
            raise ValidationError(
                f"codes rows ({codes.shape[0]}) must match items ({self._labels.shape[0]})")
        rng = self._rng
        anchors = rng.choice(self._valid_anchors, size=count, replace=True)
        positives = np.empty(count, dtype=np.int64)
        negatives = np.empty(count, dtype=np.int64)
        bits = codes.shape[1]
        for i, anchor in enumerate(anchors):
            similar_row = self._similar[anchor]
            positive_pool = np.flatnonzero(similar_row)
            negative_pool = np.flatnonzero(~similar_row)
            negative_pool = negative_pool[negative_pool != anchor]
            positive = int(rng.choice(positive_pool))
            d_ap = float(((codes[anchor] - codes[positive]) ** 2).mean())
            d_an = ((codes[negative_pool] - codes[anchor]) ** 2).sum(axis=1) / bits
            semi_hard = negative_pool[(d_an > d_ap) & (d_an < d_ap + margin)]
            if semi_hard.size:
                negative = int(rng.choice(semi_hard))
            else:
                # Next best: hardest violating negative, else random.
                violating = negative_pool[d_an < d_ap + margin]
                if violating.size:
                    negative = int(violating[np.argmax(d_an[d_an < d_ap + margin])])
                else:
                    negative = int(rng.choice(negative_pool))
            positives[i] = positive
            negatives[i] = negative
        return anchors, positives, negatives
