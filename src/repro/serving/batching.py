"""Micro-batching executor: coalesce concurrent queries into one scan.

Under concurrent load, per-query fixed costs (Python dispatch, one kernel
launch per query) dominate a Hamming scan.  The :class:`MicroBatcher`
exploits that queries are *combinable*: requests submitted concurrently
are queued, and a single worker thread drains up to ``max_batch_size`` of
them into one call of the supplied ``execute_batch`` function — for the
sharded index that is one vectorized distance-matrix scan covering every
query in the batch (see :meth:`ShardedHammingIndex.search_batch`).

The first request in an empty queue waits at most ``max_wait_s`` for
company before the batch is dispatched, so lightly-loaded latency is
bounded while heavily-loaded throughput approaches the vectorized scan
rate.  ``submit`` returns a :class:`concurrent.futures.Future`; callers
block on ``result()`` exactly as if the query had run inline, and a batch
function failure propagates to every member of the failed batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Any, Callable, Sequence

from ..errors import ValidationError


class BatcherClosedError(RuntimeError):
    """Submit was called on a batcher after :meth:`MicroBatcher.close`."""


class MicroBatcher:
    """Queue + single worker thread that executes requests in batches."""

    def __init__(self, execute_batch: "Callable[[list[Any]], Sequence[Any]]",
                 *, max_batch_size: int = 16, max_wait_s: float = 0.002,
                 name: str = "microbatch") -> None:
        if max_batch_size < 1:
            raise ValidationError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_s < 0.0:
            raise ValidationError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self._execute_batch = execute_batch
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._lock = threading.Lock()
        self._has_work = threading.Condition(self._lock)
        self._queue: deque[tuple[Any, Future]] = deque()
        self._closed = False
        # Stats (read via .stats; written only by the worker/submitters
        # under the lock).
        self._num_batches = 0
        self._num_requests = 0
        self._largest_batch = 0
        self._worker = threading.Thread(target=self._run, name=name, daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #

    def submit(self, request: Any) -> "Future[Any]":
        """Enqueue one request; the Future resolves to its result."""
        future: "Future[Any]" = Future()
        with self._lock:
            if self._closed:
                raise BatcherClosedError("submit on a closed MicroBatcher")
            self._num_requests += 1
            self._queue.append((request, future))
            self._has_work.notify()
        return future

    def submit_many(self, requests: Sequence[Any]) -> "list[Future[Any]]":
        """Enqueue several requests at once (they may share batches)."""
        futures = [Future() for _ in requests]
        with self._lock:
            if self._closed:
                raise BatcherClosedError("submit on a closed MicroBatcher")
            self._num_requests += len(requests)
            self._queue.extend(zip(requests, futures))
            self._has_work.notify()
        return futures

    @property
    def stats(self) -> dict:
        """Batch-formation accounting (mean batch size is the win metric)."""
        with self._lock:
            batches, requests = self._num_batches, self._num_requests
            largest, depth = self._largest_batch, len(self._queue)
        return {
            "requests": requests,
            "batches": batches,
            "largest_batch": largest,
            "mean_batch_size": round(requests / batches, 3) if batches else 0.0,
            "queue_depth": depth,
        }

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #

    def _take_batch(self) -> "list[tuple[Any, Future]] | None":
        """Block until a batch is ready; ``None`` means shut down."""
        with self._has_work:
            while not self._queue and not self._closed:
                self._has_work.wait()
            if not self._queue:
                return None
            # Give stragglers a grace window to join, unless already full.
            if len(self._queue) < self.max_batch_size and self.max_wait_s > 0.0:
                deadline = time.monotonic() + self.max_wait_s
                while (len(self._queue) < self.max_batch_size
                       and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0 or not self._has_work.wait(remaining):
                        break
            batch = [self._queue.popleft()
                     for _ in range(min(self.max_batch_size, len(self._queue)))]
            self._num_batches += 1
            self._largest_batch = max(self._largest_batch, len(batch))
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            requests = [request for request, _ in batch]
            try:
                results = list(self._execute_batch(requests))
                if len(results) != len(requests):
                    raise RuntimeError(
                        f"execute_batch returned {len(results)} results "
                        f"for {len(requests)} requests")
            except BaseException as exc:  # propagate to every waiter
                for _, future in batch:
                    future.set_exception(exc)
                continue
            for (_, future), result in zip(batch, results):
                future.set_result(result)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting work; by default process what is queued first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
                for _, future in abandoned:
                    future.set_exception(
                        BatcherClosedError("MicroBatcher closed before execution"))
            self._has_work.notify_all()
        self._worker.join()
        # Drain any batches the worker left behind on shutdown race.
        with self._lock:
            leftovers = list(self._queue)
            self._queue.clear()
        for _, future in leftovers:
            future.set_exception(
                BatcherClosedError("MicroBatcher closed before execution"))

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
