"""Sharded Hamming index with parallel scatter-gather query execution.

One monolithic index serializes every query behind one scan.  Here the
packed archive codes are partitioned round-robin into ``K`` shards, each a
self-contained Hamming index; a query is *scattered* to every shard (a
thread pool scans them in parallel — numpy's popcount kernels release the
GIL, so shard scans genuinely overlap), then the per-shard top-k candidate
lists are *gathered* and merged.

Determinism is load-bearing: every path orders candidates by the global
``(distance, insertion row)`` pair — exactly the tie-break of
:func:`repro.index.hamming.top_k_smallest` and of the monolithic indexes —
so the merged top-k of a K-shard index is byte-identical to the K=1 result
regardless of shard count or scan interleaving.

Two shard backends:

* ``"linear"`` — packed matrix scan per shard (the E6 baseline kernel);
  batches of queries become one vectorized ``pairwise_hamming`` call per
  shard, which is what the micro-batcher exploits.
* ``"mih"`` — a :class:`~repro.index.mih.MultiIndexHashing` per shard for
  bucket-probe behaviour on very large shards.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..errors import EmptyIndexError, ValidationError
from ..index.hamming import pairwise_hamming, top_k_smallest
from ..index.mih import MultiIndexHashing
from ..index.results import SearchResult


@dataclass(frozen=True)
class CodeQuery:
    """One retrieval request against packed codes: kNN or radius search."""

    code: np.ndarray
    k: "int | None" = None
    radius: "int | None" = None

    def __post_init__(self) -> None:
        if (self.k is None) == (self.radius is None):
            raise ValidationError("provide exactly one of k or radius")
        if self.k is not None and self.k <= 0:
            raise ValidationError(f"k must be positive, got {self.k}")
        if self.radius is not None and self.radius < 0:
            raise ValidationError(f"radius must be >= 0, got {self.radius}")


class _LinearShard:
    """Packed-code matrix scan over one shard's rows."""

    def __init__(self, num_bits: int) -> None:
        self.num_bits = num_bits
        self._rows: list[int] = []
        self._codes: "np.ndarray | None" = None
        self._pending: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._rows)

    def add(self, row: int, code: np.ndarray) -> None:
        self._rows.append(row)
        self._pending.append(code)

    def _materialize(self) -> "np.ndarray | None":
        if self._pending:
            stacked = np.stack(self._pending)
            self._codes = stacked if self._codes is None else np.vstack(
                [self._codes, stacked])
            self._pending = []
        return self._codes

    def prepare(self) -> None:
        """Fold pending codes in (called under the index lock, so scans
        running on pool threads never mutate shard state)."""
        self._materialize()

    def scan(self, queries: np.ndarray, jobs: Sequence[CodeQuery],
             chunk_rows: int) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Per-job ``(global_rows, distances)`` candidates from this shard.

        One vectorized distance-matrix scan covers the whole batch — this is
        the coalescing the micro-batcher buys.

        Read-only: runs on pool threads after :meth:`prepare` folded pending
        codes in under the index lock (an ``add`` racing with this scan
        becomes visible at the next prepare, never corrupts this one).
        """
        codes = self._codes
        if codes is None or codes.shape[0] == 0:
            empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
            return [empty for _ in jobs]
        rows = np.asarray(self._rows[:codes.shape[0]], dtype=np.int64)
        # Chunk over the *corpus* axis (the one that grows): peak memory is
        # chunk_rows * Q * W words however large the shard gets.
        distances = pairwise_hamming(codes, queries, chunk_rows=chunk_rows).T
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for i, job in enumerate(jobs):
            if job.radius is not None:
                local = np.flatnonzero(distances[i] <= job.radius)
            else:
                # Local selection order (distance, local row) equals global
                # (distance, global row): round-robin assignment appends
                # rows to a shard in increasing global order.
                local = top_k_smallest(distances[i], job.k)
            out.append((rows[local], distances[i][local]))
        return out


class _MIHShard:
    """A Multi-Index Hashing table over one shard's rows.

    Unlike the linear shard, MIH searches fold pending codes in lazily, so
    ``scan`` is *not* read-only; a per-shard lock serializes scans with
    concurrent ``add``/other scans on the same shard (cross-shard
    parallelism within a batch is unaffected — one pool thread per shard).
    """

    def __init__(self, num_bits: int, mih_tables: int) -> None:
        self.num_bits = num_bits
        self._index = MultiIndexHashing(num_bits, mih_tables)
        self._shard_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._index)

    def add(self, row: int, code: np.ndarray) -> None:
        with self._shard_lock:
            self._index.add(row, code)

    def prepare(self) -> None:
        with self._shard_lock:
            if len(self._index):
                self._index._materialize()

    def scan(self, queries: np.ndarray, jobs: Sequence[CodeQuery],
             chunk_rows: int) -> "list[tuple[np.ndarray, np.ndarray]]":
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        with self._shard_lock:
            if len(self._index) == 0:
                return [empty for _ in jobs]
            # Group jobs by (kind, parameter) and run each group through
            # the MIH batch path — candidate gathering and verification
            # vectorize across the group instead of looping queries.
            out: "list[tuple[np.ndarray, np.ndarray] | None]" = [None] * len(jobs)
            groups: dict[tuple, list[int]] = {}
            for i, job in enumerate(jobs):
                kind = (("radius", job.radius) if job.radius is not None
                        else ("knn", job.k))
                groups.setdefault(kind, []).append(i)
            for (kind, parameter), indices in groups.items():
                group_queries = queries[np.asarray(indices, dtype=np.int64)]
                if kind == "radius":
                    batches = self._index.search_radius_batch(
                        group_queries, parameter)
                else:
                    batches = self._index.search_knn_batch(
                        group_queries, parameter)
                for i, results in zip(indices, batches):
                    rows = np.fromiter((r.item_id for r in results),
                                       dtype=np.int64, count=len(results))
                    distances = np.fromiter((r.distance for r in results),
                                            dtype=np.int64, count=len(results))
                    out[i] = (rows, distances)
        return out  # type: ignore[return-value]


class ShardedHammingIndex:
    """K-shard Hamming index with a parallel scatter-gather executor."""

    def __init__(self, num_bits: int, num_shards: int = 4, *,
                 backend: str = "linear", mih_tables: int = 4,
                 max_workers: "int | None" = None,
                 scan_chunk_rows: int = 4096) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(
                f"num_bits must be a positive multiple of 8, got {num_bits}")
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        if backend not in ("linear", "mih"):
            raise ValidationError(
                f"backend must be 'linear' or 'mih', got {backend!r}")
        if scan_chunk_rows < 1:
            raise ValidationError(f"scan_chunk_rows must be >= 1, got {scan_chunk_rows}")
        self.num_bits = num_bits
        self.num_shards = num_shards
        self.backend = backend
        self.mih_tables = mih_tables
        self.scan_chunk_rows = scan_chunk_rows
        self._lock = threading.RLock()
        self._ids: list[Hashable] = []
        self._shards = self._new_shards()
        self._executor: "ThreadPoolExecutor | None" = None
        self._max_workers = max_workers if max_workers is not None else num_shards

    def _new_shards(self) -> list:
        if self.backend == "linear":
            return [_LinearShard(self.num_bits) for _ in range(self.num_shards)]
        return [_MIHShard(self.num_bits, self.mih_tables)
                for _ in range(self.num_shards)]

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def shard_sizes(self) -> list[int]:
        """Occupancy of each shard (exported as gauges by the gateway)."""
        with self._lock:
            return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """(Re)build from aligned ids and ``(N, W)`` packed codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        with self._lock:
            self._ids = []
            self._shards = self._new_shards()
            for item_id, code in zip(ids, codes):
                self.add(item_id, code)

    def add(self, item_id: Hashable, code: np.ndarray) -> None:
        """Append one item; it joins shard ``row % num_shards``."""
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(f"add expects a single packed code, got {code.shape}")
        with self._lock:
            row = len(self._ids)
            self._ids.append(item_id)
            self._shards[row % self.num_shards].add(row, code)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def search_knn(self, code: np.ndarray, k: int) -> list[SearchResult]:
        """The exact ``k`` nearest items, (distance, insertion row) order."""
        return self.search_batch([CodeQuery(code=code, k=k)])[0]

    def search_radius(self, code: np.ndarray, radius: int) -> list[SearchResult]:
        """All items within ``radius``, nearest first."""
        return self.search_batch([CodeQuery(code=code, radius=radius)])[0]

    def search_knn_batch(self, codes: np.ndarray, k: int,
                         ) -> "list[list[SearchResult]]":
        """Exact kNN for a ``(Q, W)`` batch: one scatter-gather pass."""
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        return self.search_batch([CodeQuery(code=query, k=k)
                                  for query in queries])

    def search_radius_batch(self, codes: np.ndarray, radius: int,
                            ) -> "list[list[SearchResult]]":
        """Radius search for a ``(Q, W)`` batch: one scatter-gather pass."""
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        return self.search_batch([CodeQuery(code=query, radius=radius)
                                  for query in queries])

    def search_batch(self, jobs: Sequence[CodeQuery]) -> list[list[SearchResult]]:
        """Scatter a batch of queries to every shard, gather and merge.

        Every shard scans the *whole batch* in one vectorized pass (linear
        backend), so the per-query overhead amortizes across the batch.
        """
        if not jobs:
            return []
        with self._lock:
            if not self._ids:
                raise EmptyIndexError("search on an empty ShardedHammingIndex")
            ids = list(self._ids)
            shards = list(self._shards)
            for shard in shards:
                shard.prepare()

        # Single-flight within the batch: concurrent users asking the same
        # question (popular patches) share one scan.
        unique_jobs: list[CodeQuery] = []
        slot_of: dict[tuple, int] = {}
        slots = []
        for job in jobs:
            code = np.ascontiguousarray(job.code, dtype=np.uint64)
            key = (code.tobytes(), job.k, job.radius)
            if key not in slot_of:
                slot_of[key] = len(unique_jobs)
                unique_jobs.append(job)
            slots.append(slot_of[key])

        queries = np.stack([np.asarray(job.code, dtype=np.uint64)
                            for job in unique_jobs])
        if queries.ndim != 2:
            raise ValidationError(f"queries must stack to (Q, W), got {queries.shape}")

        def scan(shard) -> "list[tuple[np.ndarray, np.ndarray]]":
            return shard.scan(queries, unique_jobs, self.scan_chunk_rows)

        if len(shards) == 1:
            per_shard = [scan(shards[0])]
        else:
            per_shard = list(self._pool().map(scan, shards))

        merged: list[list[SearchResult]] = []
        for i, job in enumerate(unique_jobs):
            rows = np.concatenate([per_shard[s][i][0] for s in range(len(shards))])
            dists = np.concatenate([per_shard[s][i][1] for s in range(len(shards))])
            order = np.lexsort((rows, dists))
            if job.k is not None:
                order = order[:job.k]
            merged.append([SearchResult(ids[int(rows[j])], int(dists[j]))
                           for j in order])
        # Duplicates get their own list (callers may truncate in place).
        out = []
        seen_slots: set[int] = set()
        for slot in slots:
            result = merged[slot]
            out.append(result if slot not in seen_slots else list(result))
            seen_slots.add(slot)
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="shard-scan")
            return self._executor

    def close(self) -> None:
        """Shut down the scatter-gather thread pool."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "ShardedHammingIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
