"""Sharded Hamming index with parallel scatter-gather query execution.

One monolithic index serializes every query behind one scan.  Here the
packed archive codes are partitioned round-robin into ``K`` shards, each a
self-contained Hamming index; a query is *scattered* to every shard (a
thread pool scans them in parallel — numpy's popcount kernels release the
GIL, so shard scans genuinely overlap), then the per-shard top-k candidate
lists are *gathered* and merged.

Determinism is load-bearing: every path orders candidates by the global
``(distance, insertion row)`` pair — exactly the tie-break of
:func:`repro.index.hamming.top_k_smallest` and of the monolithic indexes —
so the merged top-k of a K-shard index is byte-identical to the K=1 result
regardless of shard count or scan interleaving.

Two shard backends:

* ``"linear"`` — packed matrix scan per shard (the E6 baseline kernel);
  batches of queries become one vectorized ``pairwise_hamming`` call per
  shard, which is what the micro-batcher exploits.
* ``"mih"`` — a :class:`~repro.index.mih.MultiIndexHashing` per shard for
  bucket-probe behaviour on very large shards.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..errors import EmptyIndexError, ValidationError
from ..obs import tracing
from ..index.hamming import (
    TombstoneSet,
    as_allowed_mask,
    combine_allowed_masks,
    pairwise_hamming,
    top_k_smallest,
)
from ..index.mih import MultiIndexHashing
from ..index.results import SearchResult


@dataclass(frozen=True)
class CodeQuery:
    """One retrieval request against packed codes: kNN or radius search.

    ``allowed`` is an optional boolean mask over *global* insertion rows
    (the filtered-similarity pushdown): every shard restricts its scan /
    verification to the allowed rows, and the merged result equals
    filtering a global ranking.  ``filter_key`` is the filter's
    fingerprint — it joins the single-flight dedup key so two queries only
    share a scan when they share both code *and* filter, and it groups
    jobs within a micro-batch so one mask translation covers the group.

    ``trace`` carries the submitting thread's captured trace context
    across the micro-batch boundary (see :mod:`repro.obs.tracing`); it is
    observability-only — excluded from ``dedup_key`` — so a traced and an
    untraced query for the same code still share one scan and results stay
    byte-identical whether or not tracing is on.
    """

    code: np.ndarray
    k: "int | None" = None
    radius: "int | None" = None
    allowed: "np.ndarray | None" = None
    filter_key: "Hashable | None" = None
    trace: "object | None" = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if (self.k is None) == (self.radius is None):
            raise ValidationError("provide exactly one of k or radius")
        if self.k is not None and self.k <= 0:
            raise ValidationError(f"k must be positive, got {self.k}")
        if self.radius is not None and self.radius < 0:
            raise ValidationError(f"radius must be >= 0, got {self.radius}")
        if self.allowed is not None:
            object.__setattr__(self, "allowed", as_allowed_mask(self.allowed))

    @property
    def dedup_key(self) -> tuple:
        """Single-flight identity: code bytes + parameters + filter."""
        code = np.ascontiguousarray(self.code, dtype=np.uint64)
        filter_part = (None if self.allowed is None
                       else (self.filter_key if self.filter_key is not None
                             else id(self.allowed)))
        return (code.tobytes(), self.k, self.radius, filter_part)


class _LinearShard:
    """Packed-code matrix scan over one shard's rows."""

    def __init__(self, num_bits: int) -> None:
        self.num_bits = num_bits
        self._rows: list[int] = []
        self._codes: "np.ndarray | None" = None
        self._pending: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._rows)

    def add(self, row: int, code: np.ndarray) -> None:
        self._rows.append(row)
        self._pending.append(code)

    def _materialize(self) -> "np.ndarray | None":
        if self._pending:
            stacked = np.stack(self._pending)
            self._codes = stacked if self._codes is None else np.vstack(
                [self._codes, stacked])
            self._pending = []
        return self._codes

    def prepare(self) -> None:
        """Fold pending codes in (called under the index lock, so scans
        running on pool threads never mutate shard state)."""
        self._materialize()

    def snapshot(self) -> "tuple[np.ndarray, np.ndarray | None]":
        """Aligned ``(global rows, codes)`` of this shard (for compaction)."""
        codes = self._materialize()
        return np.asarray(self._rows, dtype=np.int64), codes

    def scan(self, queries: np.ndarray, jobs: Sequence[CodeQuery],
             chunk_rows: int) -> "list[tuple[np.ndarray, np.ndarray]]":
        """Per-job ``(global_rows, distances)`` candidates from this shard.

        Jobs are grouped by filter: the unfiltered group shares one
        vectorized distance-matrix scan over the whole shard (the
        coalescing the micro-batcher buys), and each filtered group
        gathers its allowed rows once and scans only that subset — the
        pre-filter pushdown, whose cost scales with the allowed rows.

        Read-only: runs on pool threads after :meth:`prepare` folded pending
        codes in under the index lock (an ``add`` racing with this scan
        becomes visible at the next prepare, never corrupts this one).
        """
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        codes = self._codes
        if codes is None or codes.shape[0] == 0:
            return [empty for _ in jobs]
        rows = np.asarray(self._rows[:codes.shape[0]], dtype=np.int64)
        groups: dict["Hashable | None", list[int]] = {}
        for i, job in enumerate(jobs):
            filter_part = (None if job.allowed is None
                           else (job.filter_key if job.filter_key is not None
                                 else id(job.allowed)))
            groups.setdefault(filter_part, []).append(i)
        out: "list[tuple[np.ndarray, np.ndarray] | None]" = [None] * len(jobs)
        for filter_part, indices in groups.items():
            if filter_part is None:
                sub_codes, sub_rows = codes, rows
            else:
                # Global allowed mask -> this shard's allowed subset (rows
                # beyond the mask were added after it was snapshotted and
                # are disallowed).
                allowed = jobs[indices[0]].allowed
                keep = rows < allowed.shape[0]
                keep[keep] = allowed[rows[keep]]
                local = np.flatnonzero(keep)
                sub_codes, sub_rows = codes[local], rows[local]
            if sub_codes.shape[0] == 0:
                for i in indices:
                    out[i] = empty
                continue
            # Chunk over the *corpus* axis (the one that grows): peak
            # memory is chunk_rows * Q * W words however large the shard
            # gets.
            group_queries = queries[np.asarray(indices, dtype=np.int64)]
            distances = pairwise_hamming(sub_codes, group_queries,
                                         chunk_rows=chunk_rows).T
            for position, i in enumerate(indices):
                job = jobs[i]
                if job.radius is not None:
                    local_sel = np.flatnonzero(distances[position] <= job.radius)
                else:
                    # Local selection order (distance, local row) equals
                    # global (distance, global row): sub_rows ascends with
                    # the local row index.
                    local_sel = top_k_smallest(distances[position], job.k)
                out[i] = (sub_rows[local_sel], distances[position][local_sel])
        return out  # type: ignore[return-value]


class _MIHShard:
    """A Multi-Index Hashing table over one shard's rows.

    Unlike the linear shard, MIH searches fold pending codes in lazily, so
    ``scan`` is *not* read-only; a per-shard lock serializes scans with
    concurrent ``add``/other scans on the same shard (cross-shard
    parallelism within a batch is unaffected — one pool thread per shard).
    """

    def __init__(self, num_bits: int, mih_tables: int) -> None:
        self.num_bits = num_bits
        self._index = MultiIndexHashing(num_bits, mih_tables)
        # Global row of each local insertion row, for translating a global
        # allowed mask into the local mask MIH's filtered search expects.
        self._global_rows: list[int] = []
        self._shard_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._index)

    def add(self, row: int, code: np.ndarray) -> None:
        with self._shard_lock:
            self._index.add(row, code)
            self._global_rows.append(row)

    def _local_mask(self, allowed: np.ndarray) -> np.ndarray:
        """The shard-local allowed mask for a global allowed mask."""
        global_rows = np.asarray(self._global_rows, dtype=np.int64)
        keep = global_rows < allowed.shape[0]
        mask = np.zeros(global_rows.shape[0], dtype=bool)
        mask[keep] = allowed[global_rows[keep]]
        return mask

    def prepare(self) -> None:
        with self._shard_lock:
            if len(self._index):
                self._index._materialize()

    def snapshot(self) -> "tuple[np.ndarray, np.ndarray | None]":
        """Aligned ``(global rows, codes)`` of this shard (for compaction)."""
        with self._shard_lock:
            codes = (self._index._materialize() if len(self._index) else None)
            return np.asarray(self._global_rows, dtype=np.int64), codes

    def scan(self, queries: np.ndarray, jobs: Sequence[CodeQuery],
             chunk_rows: int) -> "list[tuple[np.ndarray, np.ndarray]]":
        empty = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        with self._shard_lock:
            if len(self._index) == 0:
                return [empty for _ in jobs]
            # Group jobs by (kind, parameter, filter) and run each group
            # through the MIH batch path — candidate gathering and
            # verification vectorize across the group instead of looping
            # queries, and one global->local mask translation covers every
            # job sharing a filter.
            out: "list[tuple[np.ndarray, np.ndarray] | None]" = [None] * len(jobs)
            groups: dict[tuple, list[int]] = {}
            # One global->local mask translation per *filter* (not per
            # group): a kNN job and a radius job sharing a filter reuse it.
            masks: dict[object, "np.ndarray | None"] = {None: None}
            for i, job in enumerate(jobs):
                filter_part = (None if job.allowed is None
                               else (job.filter_key
                                     if job.filter_key is not None
                                     else id(job.allowed)))
                kind = (("radius", job.radius, filter_part)
                        if job.radius is not None
                        else ("knn", job.k, filter_part))
                groups.setdefault(kind, []).append(i)
                if filter_part not in masks:
                    masks[filter_part] = self._local_mask(job.allowed)
            for group_key, indices in groups.items():
                kind, parameter, filter_part = group_key
                group_queries = queries[np.asarray(indices, dtype=np.int64)]
                local_mask = masks[filter_part]
                if kind == "radius":
                    batches = self._index.search_radius_batch(
                        group_queries, parameter, allowed=local_mask)
                else:
                    batches = self._index.search_knn_batch(
                        group_queries, parameter, allowed=local_mask)
                for i, results in zip(indices, batches):
                    rows = np.fromiter((r.item_id for r in results),
                                       dtype=np.int64, count=len(results))
                    distances = np.fromiter((r.distance for r in results),
                                            dtype=np.int64, count=len(results))
                    out[i] = (rows, distances)
        return out  # type: ignore[return-value]


class ShardedHammingIndex:
    """K-shard Hamming index with a parallel scatter-gather executor."""

    def __init__(self, num_bits: int, num_shards: int = 4, *,
                 backend: str = "linear", mih_tables: int = 4,
                 max_workers: "int | None" = None,
                 scan_chunk_rows: int = 4096) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(
                f"num_bits must be a positive multiple of 8, got {num_bits}")
        if num_shards < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        if backend not in ("linear", "mih"):
            raise ValidationError(
                f"backend must be 'linear' or 'mih', got {backend!r}")
        if scan_chunk_rows < 1:
            raise ValidationError(f"scan_chunk_rows must be >= 1, got {scan_chunk_rows}")
        self.num_bits = num_bits
        self.num_shards = num_shards
        self.backend = backend
        self.mih_tables = mih_tables
        self.scan_chunk_rows = scan_chunk_rows
        self._lock = threading.RLock()
        self._ids: list[Hashable] = []
        self._shards = self._new_shards()
        self._executor: "ThreadPoolExecutor | None" = None
        self._max_workers = max_workers if max_workers is not None else num_shards
        # Tombstoned global rows: masked out of every scan (the alive mask
        # AND-combines with query filters) until compact() drops them.
        self._tombstones = TombstoneSet()
        self._row_of: "dict[Hashable, int] | None" = None

    def _new_shards(self) -> list:
        if self.backend == "linear":
            return [_LinearShard(self.num_bits) for _ in range(self.num_shards)]
        return [_MIHShard(self.num_bits, self.mih_tables)
                for _ in range(self.num_shards)]

    def __len__(self) -> int:
        """Searchable (alive) items."""
        with self._lock:
            return len(self._ids) - len(self._tombstones)

    @property
    def dead_count(self) -> int:
        """Tombstoned rows awaiting compaction."""
        with self._lock:
            return len(self._tombstones)

    @property
    def dead_fraction(self) -> float:
        """Dead rows as a fraction of physical rows (0 when empty)."""
        with self._lock:
            return self._tombstones.fraction(len(self._ids))

    @property
    def shard_sizes(self) -> list[int]:
        """Occupancy of each shard (exported as gauges by the gateway)."""
        with self._lock:
            return [len(shard) for shard in self._shards]

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def build(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """(Re)build from aligned ids and ``(N, W)`` packed codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        with self._lock:
            self._ids = []
            self._shards = self._new_shards()
            self._tombstones.clear()
            self._row_of = None
            for item_id, code in zip(ids, codes):
                self.add(item_id, code)

    def add(self, item_id: Hashable, code: np.ndarray) -> None:
        """Append one item; it joins shard ``row % num_shards``."""
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(f"add expects a single packed code, got {code.shape}")
        with self._lock:
            row = len(self._ids)
            self._ids.append(item_id)
            if self._row_of is not None:
                self._row_of[item_id] = row
            self._shards[row % self.num_shards].add(row, code)

    # ------------------------------------------------------------------ #
    # Deletion lifecycle: tombstones + per-shard compaction
    # ------------------------------------------------------------------ #

    def remove(self, item_id: Hashable) -> None:
        """Tombstone one item: O(1), excluded from every later scan."""
        with self._lock:
            if self._row_of is None:
                self._row_of = {item_id: row
                                for row, item_id in enumerate(self._ids)}
            row = self._row_of.pop(item_id, None)
            if row is None or row in self._tombstones:
                raise ValidationError(f"no indexed item {item_id!r} to remove")
            self._tombstones.mark(row)

    def compact_due(self) -> bool:
        """Default policy: dead rows exceed the standalone threshold."""
        with self._lock:
            return self._tombstones.due(len(self._ids))

    def compact(self) -> None:
        """Rebuild every shard without the dead rows.

        Surviving items keep their relative insertion order, so the global
        (distance, insertion row) merge order — and therefore every query
        result — is byte-identical before and after.
        """
        with self._lock:
            if not len(self._tombstones):
                return
            row_parts: list[np.ndarray] = []
            code_parts: list[np.ndarray] = []
            for shard in self._shards:
                rows, codes = shard.snapshot()
                if codes is not None and codes.shape[0]:
                    row_parts.append(rows[:codes.shape[0]])
                    code_parts.append(codes)
            all_rows = np.concatenate(row_parts)
            all_codes = np.vstack(code_parts)
            order = np.argsort(all_rows)
            alive_mask = self._alive_allowed()
            keep = order[alive_mask[all_rows[order]]]
            ids = [self._ids[int(row)] for row in all_rows[keep]]
            self.build(ids, all_codes[keep])

    def _alive_allowed(self) -> "np.ndarray | None":
        """The alive-row mask (callers must hold the index lock)."""
        return self._tombstones.alive_mask(len(self._ids))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def search_knn(self, code: np.ndarray, k: int) -> list[SearchResult]:
        """The exact ``k`` nearest items, (distance, insertion row) order."""
        return self.search_batch([CodeQuery(code=code, k=k)])[0]

    def search_radius(self, code: np.ndarray, radius: int) -> list[SearchResult]:
        """All items within ``radius``, nearest first."""
        return self.search_batch([CodeQuery(code=code, radius=radius)])[0]

    def search_knn_batch(self, codes: np.ndarray, k: int,
                         ) -> "list[list[SearchResult]]":
        """Exact kNN for a ``(Q, W)`` batch: one scatter-gather pass."""
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        return self.search_batch([CodeQuery(code=query, k=k)
                                  for query in queries])

    def search_radius_batch(self, codes: np.ndarray, radius: int,
                            ) -> "list[list[SearchResult]]":
        """Radius search for a ``(Q, W)`` batch: one scatter-gather pass."""
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        return self.search_batch([CodeQuery(code=query, radius=radius)
                                  for query in queries])

    def search_batch(self, jobs: Sequence[CodeQuery]) -> list[list[SearchResult]]:
        """Scatter a batch of queries to every shard, gather and merge.

        Every shard scans the *whole batch* in one vectorized pass (linear
        backend), so the per-query overhead amortizes across the batch.
        """
        if not jobs:
            return []
        with self._lock:
            if not self._ids or len(self._tombstones) >= len(self._ids):
                raise EmptyIndexError("search on an empty ShardedHammingIndex")
            ids = list(self._ids)
            shards = list(self._shards)
            alive = self._alive_allowed()
            for shard in shards:
                shard.prepare()

        # Single-flight within the batch: concurrent users asking the same
        # question (popular patches, same filter) share one scan.
        unique_jobs: list[CodeQuery] = []
        slot_of: dict[tuple, int] = {}
        slots = []
        for job in jobs:
            key = job.dedup_key
            if key not in slot_of:
                slot_of[key] = len(unique_jobs)
                unique_jobs.append(job)
            slots.append(slot_of[key])

        if alive is not None:
            # Fold tombstones into every job's allowed mask.  Combined
            # masks are memoized per original filter identity so jobs
            # sharing a filter keep sharing one mask object — the shard
            # scan groups by that identity and translates it once.
            combined: dict[object, np.ndarray] = {}
            folded: list[CodeQuery] = []
            for job in unique_jobs:
                part = (None if job.allowed is None
                        else (job.filter_key if job.filter_key is not None
                              else id(job.allowed)))
                mask = combined.get(part)
                if mask is None:
                    mask = combine_allowed_masks(alive, job.allowed)
                    combined[part] = mask
                folded.append(replace(job, allowed=mask))
            unique_jobs = folded

        queries = np.stack([np.asarray(job.code, dtype=np.uint64)
                            for job in unique_jobs])
        if queries.ndim != 2:
            raise ValidationError(f"queries must stack to (Q, W), got {queries.shape}")

        with tracing.span("shards.search", jobs=len(jobs),
                          unique=len(unique_jobs),
                          shards=len(shards)) as search_span:
            search_span.annotate(backend=self.backend)
            search_span.add_cost(shards_scanned=len(shards))
            # Shard scans run on pool threads; hand the (possibly traced)
            # context across explicitly so per-shard spans stitch in.
            parent = tracing.capture()

            def scan(item) -> "list[tuple[np.ndarray, np.ndarray]]":
                shard_index, shard = item
                if parent is None:
                    return shard.scan(queries, unique_jobs,
                                      self.scan_chunk_rows)
                with tracing.attach(parent), \
                        tracing.span("shard.scan", shard=shard_index,
                                     items=len(shard)):
                    return shard.scan(queries, unique_jobs,
                                      self.scan_chunk_rows)

            if len(shards) == 1:
                per_shard = [scan((0, shards[0]))]
            else:
                per_shard = list(self._pool().map(scan, enumerate(shards)))

            merged: list[list[SearchResult]] = []
            for i, job in enumerate(unique_jobs):
                rows = np.concatenate([per_shard[s][i][0] for s in range(len(shards))])
                dists = np.concatenate([per_shard[s][i][1] for s in range(len(shards))])
                order = np.lexsort((rows, dists))
                if job.k is not None:
                    order = order[:job.k]
                merged.append([SearchResult(ids[int(rows[j])], int(dists[j]))
                               for j in order])
        # Duplicates get their own list (callers may truncate in place).
        out = []
        seen_slots: set[int] = set()
        for slot in slots:
            result = merged[slot]
            out.append(result if slot not in seen_slots else list(result))
            seen_slots.add(slot)
        return out

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="shard-scan")
            return self._executor

    def close(self) -> None:
        """Shut down the scatter-gather thread pool."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "ShardedHammingIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
