"""LRU+TTL query-result cache for the serving tier.

Interactive EO exploration is dominated by repeated queries: a browser
re-fires the same search as the user pans back, and popular patches are
queried by many users.  The gateway therefore memoizes *canonicalized*
query keys — a packed-code CBIR query or a :class:`QuerySpec` search — in a
bounded least-recently-used map whose entries also expire after a TTL (the
archive mutates on ingest, and even without explicit invalidation a stale
entry must not outlive ``ttl_seconds``).

Every mutation of the underlying archive must call :meth:`QueryResultCache.
invalidate`; the gateway wires this to online ingestion.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable

import numpy as np

from ..errors import ValidationError

_MISSING = object()


def canonical_code_key(code: np.ndarray, *, k: "int | None",
                       radius: "int | None",
                       filter_fingerprint: "Hashable | None" = None) -> tuple:
    """Canonical cache key for a packed-code CBIR query.

    Two queries that would scan identically map to the same key: the code's
    bytes (packed uint64, little-endian by construction) plus the selection
    parameters.  A metadata-filtered query additionally carries the
    filter's fingerprint, so filtered and unfiltered traffic for the same
    code never share entries (unfiltered keys keep their historical shape).
    """
    code = np.ascontiguousarray(code, dtype=np.uint64)
    if filter_fingerprint is None:
        return ("cbir", code.tobytes(), k, radius)
    return ("cbir", code.tobytes(), k, radius, filter_fingerprint)


def canonical_spec_key(spec: Any) -> tuple:
    """Canonical cache key for a metadata search.

    :class:`~repro.earthqube.query.QuerySpec` is a frozen dataclass with a
    deterministic ``repr`` (shapes included), which makes the repr a stable
    canonical form without requiring every nested shape to be hashable.
    """
    return ("search", repr(spec))


@dataclass
class CacheStats:
    """Hit/miss accounting exposed through the metrics snapshot."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "expirations": self.expirations,
                "invalidations": self.invalidations,
                "hit_ratio": round(self.hit_ratio, 4)}


class QueryResultCache:
    """Thread-safe LRU map with per-entry TTL expiry.

    ``max_entries=0`` disables caching entirely (every lookup misses, puts
    are dropped) so the gateway code path stays uniform.  ``clock`` is
    injectable for deterministic TTL tests.
    """

    def __init__(self, max_entries: int = 1024, ttl_seconds: float = 300.0,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 0:
            raise ValidationError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_seconds <= 0.0:
            raise ValidationError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (expiry deadline, value); insertion order is recency order.
        self._entries: "OrderedDict[Hashable, tuple[float, Any]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_snapshot(self) -> dict:
        """A consistent copy of the hit/miss stats plus current size.

        Taken under the cache lock, so the snapshot can never pair a
        post-increment hit count with a pre-increment miss count (reading
        ``self.stats`` field-by-field without the lock can).
        """
        with self._lock:
            stats = CacheStats(hits=self.stats.hits, misses=self.stats.misses,
                               evictions=self.stats.evictions,
                               expirations=self.stats.expirations,
                               invalidations=self.stats.invalidations)
            entries = len(self._entries)
        return {**stats.as_dict(), "entries": entries}

    def get(self, key: Hashable, default: Any = None) -> Any:
        """The cached value, or ``default`` on miss/expiry."""
        with self._lock:
            entry = self._entries.get(key, _MISSING)
            if entry is _MISSING:
                self.stats.misses += 1
                return default
            deadline, value = entry
            if self._clock() >= deadline:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                return default
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        if self.max_entries == 0:
            return
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = (self._clock() + self.ttl_seconds, value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate(self) -> int:
        """Drop every entry (archive mutated); returns entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += 1
            return dropped

    def purge_expired(self) -> int:
        """Proactively drop expired entries; returns entries dropped."""
        now = self._clock()
        with self._lock:
            stale = [key for key, (deadline, _) in self._entries.items()
                     if now >= deadline]
            for key in stale:
                del self._entries[key]
            self.stats.expirations += len(stale)
            return len(stale)
