"""The serving gateway: sharding + batching + caching behind one facade.

:class:`ServingGateway` sits between :class:`~repro.earthqube.api.
EarthQubeAPI` and the index/store tiers.  It answers the same questions as
:meth:`EarthQube.search` and :meth:`EarthQube.similar_images` — with the
same response types and byte-identical rankings — but executes them
through the concurrent hot path:

1. **cache** — canonicalized query keys hit an LRU+TTL result cache
   (:mod:`repro.serving.cache`); online ingestion invalidates it,
2. **batch** — cache misses are coalesced by a :class:`~repro.serving.
   batching.MicroBatcher` so concurrent queries share one scan,
3. **scatter-gather** — each batch is executed by a
   :class:`~repro.serving.sharding.ShardedHammingIndex` that scans K
   shards in parallel and merges per-shard top-k deterministically,
4. **metrics** — every stage records latency histograms, counters, and
   occupancy gauges into a :class:`~repro.serving.metrics.MetricsRegistry`.

Metadata searches (document-store queries) do not go through the Hamming
tiers; they get the cache + metrics treatment only.
"""

from __future__ import annotations

import copy
import math
import threading
import time
from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from ..config import ServingConfig
from ..earthqube.cbir import SimilarityResponse, shape_name_response
from ..earthqube.query import QuerySpec
from ..earthqube.search import SearchResponse
from ..errors import ValidationError
from ..obs import tracing
from ..planner import PhysicalPlan, PlanChoice, deprecated_overrides
from .batching import MicroBatcher
from .cache import QueryResultCache, canonical_code_key, canonical_spec_key
from .metrics import MetricsRegistry
from .sharding import CodeQuery, ShardedHammingIndex

if TYPE_CHECKING:  # avoid a runtime import cycle with earthqube.server
    from ..bigearthnet.patch import Patch
    from ..earthqube.server import EarthQube


class ServingGateway:
    """Concurrent, sharded, cached, observable query execution."""

    def __init__(self, system: "EarthQube",
                 config: "ServingConfig | None" = None) -> None:
        self.system = system
        self.config = config if config is not None else system.config.serving
        self.metrics = MetricsRegistry(
            histogram_window=self.config.histogram_window)
        self.cache = QueryResultCache(
            max_entries=self.config.cache_entries,
            ttl_seconds=self.config.cache_ttl_seconds)
        names, codes = system.cbir.indexed_items()
        self.index = ShardedHammingIndex(
            system.hasher.num_bits,
            self.config.num_shards,
            backend=self.config.shard_backend,
            mih_tables=self.config.mih_tables,
            max_workers=self.config.max_workers,
            scan_chunk_rows=self.config.scan_chunk_rows)
        if names:
            self.index.build(names, codes)
        self.batcher = MicroBatcher(
            self._execute_batch,
            max_batch_size=self.config.batch_max_size,
            max_wait_s=self.config.batch_max_delay_ms / 1e3,
            name="serving-batch")
        # Archive generation: bumped by on_ingest.  A result computed
        # against generation G is only cached if the generation is still G
        # at put time, so a scan racing an ingest can never re-insert a
        # stale entry after the invalidation.
        self._generation = 0
        self._generation_lock = threading.Lock()
        self._update_occupancy()

    # ------------------------------------------------------------------ #
    # Hot path: CBIR
    # ------------------------------------------------------------------ #

    @staticmethod
    def _validate_code_query(k: "int | None", radius: "int | None") -> None:
        if radius is not None and radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        if radius is None and (k is None or k <= 0):
            raise ValidationError("provide k > 0 or an explicit radius")

    @staticmethod
    def _code_key_and_job(code: np.ndarray, *, k: "int | None",
                          radius: "int | None") -> "tuple[tuple, CodeQuery]":
        """Canonical cache key and index job for one packed-code query.

        A radius query executes identically whatever k the caller wants
        afterwards (truncation happens at the response layer), so k is
        dropped from the key to let mixed radius traffic share entries.
        """
        key = canonical_code_key(code, k=None if radius is not None else k,
                                 radius=radius)
        trace = tracing.capture()
        job = (CodeQuery(code=code, radius=radius, trace=trace)
               if radius is not None
               else CodeQuery(code=code, k=k, trace=trace))
        return key, job

    @staticmethod
    def _used_radius(results: list, radius: "int | None") -> int:
        if radius is not None:
            return radius
        return results[-1].distance if results else 0

    def similar_images(self, name: str, *, k: "int | None" = 10,
                       radius: "int | None" = None,
                       filter: "QuerySpec | None" = None) -> SimilarityResponse:
        """Query-by-existing-example through cache -> batcher -> shards.

        ``filter`` (a metadata :class:`QuerySpec`) restricts the ranking to
        matching images; the filter fingerprint joins the cache key and
        micro-batch grouping so filtered and unfiltered traffic never mix.
        """
        with self.metrics.timer("similar.total"):
            code = self.system.cbir.code_of(name)
            # The query matches itself at distance 0; fetch one extra and
            # drop it, exactly like CBIRService.query_by_name.
            request_k = None if k is None else k + 1
            results, used = self._cached_code_query(code, k=request_k,
                                                    radius=radius,
                                                    filter_spec=filter)
            return shape_name_response(name, results, used, k)

    def similar_images_batch(self, names: "list[str]", *,
                             k: "int | None" = 10,
                             radius: "int | None" = None,
                             filter: "QuerySpec | None" = None,
                             ) -> list[SimilarityResponse]:
        """Batch CBIR through the same cache -> batcher -> shards pipeline.

        One response per name, in request order.  Cache hits are answered
        immediately; all misses are submitted to the micro-batcher in one
        go (they coalesce into one scatter-gather scan, sharing it with any
        concurrent single queries).  Responses are byte-identical to
        calling :meth:`similar_images` per name.
        """
        with self.metrics.timer("similar.total"):
            self._validate_code_query(k, radius)
            codes = [self.system.cbir.code_of(name) for name in names]
            request_k = None if k is None else k + 1
            outcomes = self.query_codes_batch(codes, k=request_k,
                                              radius=radius, filter=filter)
            return [shape_name_response(name, results, used, k)
                    for name, (results, used) in zip(names, outcomes)]

    def query_code(self, code: np.ndarray, *, k: "int | None" = None,
                   radius: "int | None" = None,
                   filter: "QuerySpec | None" = None,
                   strategy: str = "auto",
                   plan_hint: "dict | None" = None) -> tuple[list, int]:
        """Raw packed-code search: ``(results, radius_used)``.

        The federation tier's per-node entry point — the same
        cache -> batcher -> shards pipeline as :meth:`similar_images`, but
        without name resolution or self-match shaping (the federated
        caller shapes the merged response itself).  ``strategy`` pins the
        pre/post filter plan; ``plan_hint`` carries the federation owner's
        plan summary so members decide consistently.
        """
        return self._cached_code_query(np.asarray(code, dtype=np.uint64),
                                       k=k, radius=radius, filter_spec=filter,
                                       strategy=strategy, plan_hint=plan_hint)

    def query_codes_batch(self, codes, *, k: "int | None" = None,
                          radius: "int | None" = None,
                          filter: "QuerySpec | None" = None,
                          strategy: str = "auto",
                          plan_hint: "dict | None" = None,
                          ) -> "list[tuple[list, int]]":
        """Batch :meth:`query_code`: one ``(results, radius_used)`` per code.

        Cache hits are answered immediately; all misses are submitted to
        the micro-batcher in one go (they coalesce into one scatter-gather
        scan, sharing it with any concurrent single queries).  Filtered
        misses that take the pre-filter plan carry the shared allowed mask
        into the batch, so they still coalesce with each other.
        """
        self._validate_code_query(k, radius)
        codes = [np.asarray(code, dtype=np.uint64) for code in codes]
        if filter is not None:
            return self._filtered_codes_batch(codes, k=k, radius=radius,
                                              filter_spec=filter,
                                              strategy=strategy,
                                              plan_hint=plan_hint)
        outcomes: "list[tuple[list, int] | None]" = [None] * len(codes)
        miss_positions: list[int] = []
        miss_keys: list[tuple] = []
        miss_jobs: list[CodeQuery] = []
        with tracing.span("cache.lookup", queries=len(codes)) as lookup_span:
            for position, code in enumerate(codes):
                key, job = self._code_key_and_job(code, k=k, radius=radius)
                cached = self.cache.get(key)
                if cached is not None:
                    cached_results, cached_used = cached
                    outcomes[position] = (list(cached_results), cached_used)
                else:
                    miss_positions.append(position)
                    miss_keys.append(key)
                    miss_jobs.append(job)
            lookup_span.annotate(hits=len(codes) - len(miss_jobs),
                                 misses=len(miss_jobs))
            lookup_span.add_cost(cache_hits=len(codes) - len(miss_jobs),
                                 cache_misses=len(miss_jobs))
        if miss_jobs:
            generation = self._generation
            choice = self._plan_code_query(None, k=k, radius=radius)
            started = time.perf_counter_ns()
            with self.metrics.timer("similar.execute"), \
                    tracing.span("batch.wait", jobs=len(miss_jobs)):
                futures = self.batcher.submit_many(miss_jobs)
                resolved = [future.result() for future in futures]
            tracing.annotate(plan=choice.explain(
                measured_ns=time.perf_counter_ns() - started))
            for position, key, results in zip(miss_positions, miss_keys,
                                              resolved):
                used = self._used_radius(results, radius)
                if generation == self._generation:
                    self.cache.put(key, (tuple(results), used))
                outcomes[position] = (results, used)
        return outcomes  # type: ignore[return-value]

    def similar_to_features(self, features: np.ndarray, *,
                            k: "int | None" = 10,
                            radius: "int | None" = None,
                            filter: "QuerySpec | None" = None) -> SimilarityResponse:
        """Query-by-new-example from a raw feature vector."""
        with self.metrics.timer("similar.total"):
            features = np.asarray(features, dtype=np.float64)
            if features.ndim != 1:
                raise ValidationError(
                    f"query features must be 1D, got shape {features.shape}")
            code = self.system.hasher.hash_packed(features[None, :])[0]
            results, used = self._cached_code_query(code, k=k, radius=radius,
                                                    filter_spec=filter)
            return SimilarityResponse(None, results, used)

    def similar_to_new_image(self, patch: "Patch", *, k: "int | None" = 10,
                             radius: "int | None" = None,
                             filter: "QuerySpec | None" = None) -> SimilarityResponse:
        """Query-by-new-example: extract, hash, and search."""
        features = self.system.extractor.extract(patch)
        return self.similar_to_features(features, k=k, radius=radius,
                                        filter=filter)

    # ------------------------------------------------------------------ #
    # Filtered execution (metadata pushdown)
    # ------------------------------------------------------------------ #

    def _row_filter(self, filter_spec: "QuerySpec"):
        """Resolve (and cache) the allowed-row filter of a metadata spec.

        The resolved mask is memoized in the result cache under the spec's
        fingerprint, guarded by the archive generation like every other
        entry — online ingestion both invalidates it and bumps the
        generation, so a stale mask can never be re-inserted by a racing
        resolution.
        """
        key = ("cbir-filter", repr(filter_spec))
        cached = self.cache.get(key)
        if cached is not None:
            tracing.annotate(filter_mask_cached=True)
            return cached
        generation = self._generation
        with self.metrics.timer("filter.resolve"), \
                tracing.span("filter.resolve"):
            row_filter = self.system.row_filter_for(filter_spec)
        if generation == self._generation:
            self.cache.put(key, row_filter)
        return row_filter

    def _planner(self):
        """The shared cost-based planner (system-level when available)."""
        planner = getattr(self.system, "planner", None)
        return planner if planner is not None else self.system.cbir.planner

    def _plan_code_query(self, row_filter, *, k: "int | None",
                         radius: "int | None", strategy: str = "auto",
                         plan_hint: "dict | None" = None) -> PlanChoice:
        """Plan one gateway code query (``row_filter`` may be ``None``).

        The gateway's backend is pinned by configuration (the sharded index
        scans through ``shard_backend``), so the planner prices the other
        backend only as a reported alternative; the live decisions are the
        pre/post filter mode and the post-filter over-fetch.  The shards
        keep their own ladder policy — the plan's probe budget is never
        pushed down, so index-internal spans stay intact.
        """
        corpus = len(self.index)
        inner = "linear" if self.config.shard_backend == "linear" else "mih"
        cbir_config = self.system.cbir.config
        planner = self._planner()
        context = {"tier": "sharded", "shards": self.index.num_shards}
        selectivity = filter_count = None
        forced_mode = None
        if row_filter is not None:
            selectivity = row_filter.selectivity(corpus)
            filter_count = row_filter.count
            if strategy in ("pre", "post"):
                forced_mode = strategy
            elif plan_hint and plan_hint.get("filter_mode"):
                forced_mode = plan_hint["filter_mode"]
        if not planner.config.enabled:
            mode = overfetch = None
            if row_filter is not None:
                mode = forced_mode or (
                    "pre" if selectivity
                    <= cbir_config.prefilter_max_selectivity else "post")
                if mode == "post" and k is not None:
                    overfetch = min(corpus, max(k, math.ceil(
                        k * corpus * cbir_config.postfilter_overfetch
                        / max(filter_count, 1))))
            return PlanChoice(
                chosen=PhysicalPlan(backend=inner, filter_mode=mode,
                                    overfetch=overfetch, estimator="legacy"),
                forced=True, context={"corpus_size": corpus, **context})
        overrides = deprecated_overrides(cbir_config, warn=False)
        threshold = overrides.get("prefilter_max_selectivity")
        if forced_mode is None and row_filter is not None \
                and threshold is not None:
            forced_mode = "pre" if selectivity <= threshold else "post"
        choice = planner.plan_similarity(
            corpus_size=corpus, k=k, radius=radius, selectivity=selectivity,
            filter_count=filter_count, num_bits=self.system.hasher.num_bits,
            num_tables=self.config.mih_tables, forced_backend=inner,
            forced_mode=forced_mode,
            overfetch_factor=overrides.get("overfetch_factor"))
        return replace(choice,
                       chosen=replace(choice.chosen, probe_budget=None),
                       forced=forced_mode is not None,
                       context={**choice.context, **context})

    def _execute_filtered(self, code: np.ndarray, *, k: "int | None",
                          radius: "int | None", row_filter,
                          fingerprint, strategy: str = "auto",
                          plan_hint: "dict | None" = None) -> tuple[list, int]:
        """Run one filtered code query through the chosen plan.

        *Pre-filter*: the allowed mask rides the :class:`CodeQuery` into
        the micro-batch, and every shard restricts its scan to the mask.
        *Post-filter*: the unfiltered query runs through the normal cached
        path (sharing scans and cache entries with unfiltered traffic),
        over-fetched and screened by name, refilling adaptively.  Both
        plans produce rankings byte-identical to filter-then-rank.
        """
        if row_filter.count == 0:
            return [], (radius if radius is not None else 0)
        choice = self._plan_code_query(row_filter, k=k, radius=radius,
                                       strategy=strategy, plan_hint=plan_hint)
        selectivity = row_filter.selectivity(len(self.index))
        started = time.perf_counter_ns()
        if choice.chosen.filter_mode == "pre":
            self.metrics.counter("filter.prefilter").increment()
            tracing.annotate(filter_plan="pre", strategy="prefilter",
                             selectivity=selectivity)
            trace = tracing.capture()
            job = (CodeQuery(code=code, radius=radius,
                             allowed=row_filter.mask, filter_key=fingerprint,
                             trace=trace)
                   if radius is not None
                   else CodeQuery(code=code, k=k, allowed=row_filter.mask,
                                  filter_key=fingerprint, trace=trace))
            with self.metrics.timer("similar.execute"), \
                    tracing.span("batch.wait", jobs=1):
                results = self.batcher.submit(job).result()
            outcome = results, self._used_radius(results, radius)
            tracing.annotate(plan=choice.explain(
                measured_ns=time.perf_counter_ns() - started))
            return outcome
        self.metrics.counter("filter.postfilter").increment()
        tracing.annotate(filter_plan="post", strategy="postfilter",
                         selectivity=selectivity)
        if radius is not None:
            results, _ = self._cached_code_query(code, k=None, radius=radius)
            kept = [r for r in results if r.item_id in row_filter.names]
            tracing.annotate(plan=choice.explain(
                measured_ns=time.perf_counter_ns() - started))
            return kept, radius
        corpus = len(self.index)
        cbir_config = self.system.cbir.config
        fetch = choice.chosen.overfetch
        if fetch is None:
            fetch = min(corpus, max(k, math.ceil(
                k * corpus * cbir_config.postfilter_overfetch
                / max(row_filter.count, 1))))
        while True:
            results, _ = self._cached_code_query(code, k=fetch, radius=None)
            kept = [r for r in results if r.item_id in row_filter.names]
            if len(kept) >= k or fetch >= corpus:
                kept = kept[:k]
                tracing.annotate(plan=choice.explain(
                    measured_ns=time.perf_counter_ns() - started))
                return kept, self._used_radius(kept, None)
            fetch = min(corpus, fetch * 4)

    def _filtered_codes_batch(self, codes: "list[np.ndarray]", *,
                              k: "int | None", radius: "int | None",
                              filter_spec: "QuerySpec",
                              strategy: str = "auto",
                              plan_hint: "dict | None" = None,
                              ) -> "list[tuple[list, int]]":
        """Batch path for filtered queries: per-code cache, one shared
        filter resolution, coalesced pre-filter misses."""
        fingerprint = repr(filter_spec)
        keys = [canonical_code_key(code,
                                   k=None if radius is not None else k,
                                   radius=radius,
                                   filter_fingerprint=fingerprint)
                for code in codes]
        outcomes: "list[tuple[list, int] | None]" = [None] * len(codes)
        miss_positions: list[int] = []
        with tracing.span("cache.lookup", queries=len(codes)) as lookup_span:
            for position, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    outcomes[position] = (list(cached[0]), cached[1])
                else:
                    miss_positions.append(position)
            lookup_span.annotate(hits=len(codes) - len(miss_positions),
                                 misses=len(miss_positions))
            lookup_span.add_cost(cache_hits=len(codes) - len(miss_positions),
                                 cache_misses=len(miss_positions))
        if not miss_positions:
            return outcomes  # type: ignore[return-value]
        # Snapshot the generation BEFORE resolving the mask: a racing
        # ingest invalidates mid-resolution, and results computed from the
        # stale mask must not be re-cached afterwards.
        generation = self._generation
        row_filter = self._row_filter(filter_spec)
        choice = None
        if row_filter.count:
            choice = self._plan_code_query(row_filter, k=k, radius=radius,
                                           strategy=strategy,
                                           plan_hint=plan_hint)
        if choice is not None and choice.chosen.filter_mode == "pre":
            # All misses share one mask and fingerprint: submitted in one
            # go, they coalesce into one scatter-gather scan (the
            # micro-batch groups by filter_key).
            self.metrics.counter("filter.prefilter").increment(
                len(miss_positions))
            tracing.annotate(filter_plan="pre", strategy="prefilter",
                             selectivity=row_filter.selectivity(
                                 len(self.index)))
            trace = tracing.capture()
            started = time.perf_counter_ns()
            jobs = [(CodeQuery(code=codes[p], radius=radius,
                               allowed=row_filter.mask,
                               filter_key=fingerprint, trace=trace)
                     if radius is not None
                     else CodeQuery(code=codes[p], k=k,
                                    allowed=row_filter.mask,
                                    filter_key=fingerprint, trace=trace))
                    for p in miss_positions]
            with self.metrics.timer("similar.execute"), \
                    tracing.span("batch.wait", jobs=len(jobs)):
                futures = self.batcher.submit_many(jobs)
                resolved = [future.result() for future in futures]
            tracing.annotate(plan=choice.explain(
                measured_ns=time.perf_counter_ns() - started))
            for position, results in zip(miss_positions, resolved):
                used = self._used_radius(results, radius)
                if generation == self._generation:
                    self.cache.put(keys[position], (tuple(results), used))
                outcomes[position] = (results, used)
        else:
            for position in miss_positions:
                results, used = self._execute_filtered(
                    codes[position], k=k, radius=radius,
                    row_filter=row_filter, fingerprint=fingerprint,
                    strategy=strategy, plan_hint=plan_hint)
                if generation == self._generation:
                    self.cache.put(keys[position], (tuple(results), used))
                outcomes[position] = (results, used)
        return outcomes  # type: ignore[return-value]

    def _cached_code_query(self, code: np.ndarray, *, k: "int | None",
                           radius: "int | None",
                           filter_spec: "QuerySpec | None" = None,
                           strategy: str = "auto",
                           plan_hint: "dict | None" = None,
                           ) -> tuple[list, int]:
        self._validate_code_query(k, radius)
        if filter_spec is not None:
            fingerprint = repr(filter_spec)
            key = canonical_code_key(code,
                                     k=None if radius is not None else k,
                                     radius=radius,
                                     filter_fingerprint=fingerprint)
            with tracing.span("cache.lookup") as lookup_span:
                cached = self.cache.get(key)
                lookup_span.annotate(hit=cached is not None)
                lookup_span.add_cost(cache_hits=int(cached is not None),
                                     cache_misses=int(cached is None))
            if cached is not None:
                results, used = cached
                tracing.annotate(plan={"source": "cache"})
                return list(results), used
            # Generation snapshot precedes mask resolution (see
            # _filtered_codes_batch): stale-mask results must not be cached.
            generation = self._generation
            row_filter = self._row_filter(filter_spec)
            results, used = self._execute_filtered(
                code, k=k, radius=radius, row_filter=row_filter,
                fingerprint=fingerprint, strategy=strategy,
                plan_hint=plan_hint)
            if generation == self._generation:
                self.cache.put(key, (tuple(results), used))
            return results, used
        key, job = self._code_key_and_job(code, k=k, radius=radius)
        with tracing.span("cache.lookup") as lookup_span:
            cached = self.cache.get(key)
            lookup_span.annotate(hit=cached is not None)
            lookup_span.add_cost(cache_hits=int(cached is not None),
                                 cache_misses=int(cached is None))
        if cached is not None:
            results, used = cached
            tracing.annotate(plan={"source": "cache"})
            return list(results), used
        generation = self._generation
        choice = self._plan_code_query(None, k=k, radius=radius)
        started = time.perf_counter_ns()
        # Queue wait + scan, as seen by the submitting thread; the scan
        # alone is recorded as similar.scan on the batch worker, so queue
        # time is the difference between the two.
        with self.metrics.timer("similar.execute"), \
                tracing.span("batch.wait", jobs=1):
            results = self.batcher.submit(job).result()
        tracing.annotate(plan=choice.explain(
            measured_ns=time.perf_counter_ns() - started))
        used = self._used_radius(results, radius)
        if generation == self._generation:
            self.cache.put(key, (tuple(results), used))
        return results, used

    def _execute_batch(self, jobs: "list[CodeQuery]") -> "list[list]":
        """Batch executor: one scatter-gather scan for the whole batch.

        Runs on the micro-batch worker thread, so the submitter's trace
        context (carried by the first traced job) is re-attached here —
        the batch-execution subtree stitches under that query's span while
        coalesced riders simply share the scan.
        """
        ctx = next((job.trace for job in jobs if job.trace is not None), None)
        with tracing.attach(ctx), \
                tracing.span("batch.execute", batch_size=len(jobs)):
            with self.metrics.timer("similar.scan"):
                merged = self.index.search_batch(jobs)
        self.metrics.counter("batch.executed").increment()
        self.metrics.gauge("batch.last_size").set(len(jobs))
        return merged

    # ------------------------------------------------------------------ #
    # Metadata search path
    # ------------------------------------------------------------------ #

    def search(self, spec: QuerySpec) -> SearchResponse:
        """Query-panel search with result caching and latency metrics.

        The document store hands out reference-independent document copies;
        the cache preserves that isolation by deep-copying documents on
        every hit, so one caller mutating its response can never poison
        what other callers receive.
        """
        with self.metrics.timer("search.total"):
            key = canonical_spec_key(spec)
            with tracing.span("cache.lookup") as lookup_span:
                cached = self.cache.get(key)
                lookup_span.annotate(hit=cached is not None)
                lookup_span.add_cost(cache_hits=int(cached is not None),
                                     cache_misses=int(cached is None))
            if cached is not None:
                tracing.annotate(plan=cached.plan,
                                 candidates_examined=cached.candidates_examined)
                return SearchResponse(
                    documents=copy.deepcopy(cached.documents),
                    total_matches=cached.total_matches,
                    plan=cached.plan,
                    candidates_examined=cached.candidates_examined)
            generation = self._generation
            with self.metrics.timer("search.store"), \
                    tracing.span("search.store") as store_span:
                response = self.system.search_service.search(spec)
            store_span.annotate(plan=response.plan,
                                candidates_examined=response.candidates_examined)
            if generation == self._generation:
                self.cache.put(key, SearchResponse(
                    documents=copy.deepcopy(response.documents),
                    total_matches=response.total_matches,
                    plan=response.plan,
                    candidates_examined=response.candidates_examined))
            return response

    # ------------------------------------------------------------------ #
    # Mutation hooks
    # ------------------------------------------------------------------ #

    def on_ingest(self, name: str, code: np.ndarray) -> None:
        """Archive grew: index the new code, drop every cached result."""
        self.index.add(name, code)
        self._invalidate("ingest")
        self.metrics.counter("ingest.items").increment()
        self._update_occupancy()

    def on_delete(self, name: str) -> None:
        """Archive shrank: tombstone the code, drop every cached result.

        Cached entries include the memoized ``RowFilter`` masks of metadata
        filters — they are row-aligned snapshots of the (now mutated)
        corpus, so they are invalidated together with the query results,
        and the generation bump stops any in-flight scan from re-inserting
        either.
        """
        self.index.remove(name)
        self._invalidate("delete")
        self.metrics.counter("delete.items").increment()
        self._update_occupancy()

    def on_update(self, name: str, code: np.ndarray) -> None:
        """An image was re-embedded: tombstone the old code, append the new.

        Mirrors :meth:`CBIRService.update_image` exactly (remove + re-add
        under the same name) so the gateway's global rows stay aligned with
        the service's insertion order.
        """
        self.index.remove(name)
        self.index.add(name, code)
        self._invalidate("update")
        self.metrics.counter("update.items").increment()
        self._update_occupancy()

    def on_compact(self) -> None:
        """The service compacted: rebuild the shards on the new row layout.

        Row numbers changed, so the sharded index is rebuilt from the
        service's canonical snapshot and every cached result/mask (all
        row-aligned) is dropped.
        """
        names, codes = self.system.cbir.indexed_items()
        self.index.build(names, codes)
        self._invalidate("compact")
        self.metrics.counter("compact.runs").increment()
        self._update_occupancy()

    def _invalidate(self, reason: str) -> None:
        """Bump the generation and drop every cached entry (see on_ingest:
        a result computed against an older generation is never re-cached)."""
        with self._generation_lock:
            self._generation += 1
        dropped = self.cache.invalidate()
        self.metrics.counter(f"{reason}.cache_dropped").increment(dropped)

    def restore_generation(self, floor: int) -> None:
        """Crash-recovery: fast-forward the generation past a pre-crash one.

        A recovered node rebuilds its gateway from scratch (empty cache),
        but any client that captured a generation number before the crash
        must see it strictly superseded — generations stay monotone across
        restarts.  The cache is dropped too, for the same reason
        :meth:`_invalidate` drops it: nothing computed before the restore
        may be served after it.
        """
        with self._generation_lock:
            self._generation = max(self._generation, int(floor)) + 1
        self.cache.invalidate()

    def _update_occupancy(self) -> None:
        for i, size in enumerate(self.index.shard_sizes):
            self.metrics.gauge(f"shard.{i}.items").set(size)
        self.metrics.gauge("cache.entries").set(len(self.cache))
        self.metrics.gauge("index.alive").set(len(self.index))
        self.metrics.gauge("index.dead_rows").set(self.index.dead_count)
        # 1 when pricing from a measured calibration, 0 on shipped defaults.
        self.metrics.gauge("planner.calibrated").set(
            int(self._planner().calibrated))

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #

    def metrics_snapshot(self) -> dict:
        """Everything observable in one JSON-compatible dict.

        Cache hit/miss accounting and micro-batcher coalescing stats are
        surfaced twice: as structured ``cache``/``batcher`` sections and
        flattened into the standard ``counters``/``gauges`` maps, so a
        metrics scraper that only understands the flat series still sees
        them.
        """
        self._update_occupancy()
        snapshot = self.metrics.snapshot()
        cache_stats = self.cache.stats_snapshot()
        batcher_stats = self.batcher.stats
        snapshot["cache"] = cache_stats
        snapshot["batcher"] = batcher_stats
        snapshot["counters"].update({
            "cache.hits": cache_stats["hits"],
            "cache.misses": cache_stats["misses"],
            "cache.evictions": cache_stats["evictions"],
            "cache.expirations": cache_stats["expirations"],
            "cache.invalidations": cache_stats["invalidations"],
            "batch.requests": batcher_stats["requests"],
            "batch.batches": batcher_stats["batches"],
        })
        snapshot["gauges"].update({
            "cache.hit_ratio": cache_stats["hit_ratio"],
            "batch.mean_size": batcher_stats["mean_batch_size"],
            "batch.largest": batcher_stats["largest_batch"],
            "batch.queue_depth": batcher_stats["queue_depth"],
        })
        snapshot["shards"] = {
            "count": self.index.num_shards,
            "backend": self.index.backend,
            "sizes": self.index.shard_sizes,
        }
        return snapshot

    def describe(self) -> dict:
        """Static serving configuration (joins EarthQube.describe)."""
        return {
            "num_shards": self.config.num_shards,
            "shard_backend": self.config.shard_backend,
            "batch_max_size": self.config.batch_max_size,
            "batch_max_delay_ms": self.config.batch_max_delay_ms,
            "cache_entries": self.config.cache_entries,
            "cache_ttl_seconds": self.config.cache_ttl_seconds,
            "indexed_items": len(self.index),
        }

    def close(self) -> None:
        """Stop the batch worker and the scatter-gather pool."""
        self.batcher.close()
        self.index.close()

    def __enter__(self) -> "ServingGateway":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
