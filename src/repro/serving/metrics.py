"""Serving-tier observability: latency histograms, counters, gauges.

The paper demos EarthQube as an *interactive* portal; an interactive query
tier is only tunable when every stage of the hot path is measured.  This
module is a dependency-free miniature of the usual Prometheus client:

* :class:`Counter` — monotonically increasing event count (QPS numerators,
  cache hits/misses),
* :class:`Gauge` — last-written value (shard occupancy, cache size),
* :class:`LatencyHistogram` — sliding window of durations with p50/p95/p99
  summaries,
* :class:`MetricsRegistry` — the named collection the gateway exposes as a
  JSON-compatible snapshot.

All types are thread-safe: the scatter-gather executor and the micro-batch
worker record from multiple threads concurrently.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager

import numpy as np

#: Fixed bucket upper edges (seconds) for the lifetime latency histogram —
#: 1ms through 5s covers everything from a cache hit to a cold federated
#: scatter; slower samples land in the implicit ``+Inf`` bucket.
BUCKET_EDGES_SECONDS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                        0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

_BUCKET_LABELS = tuple(f"{edge:g}" for edge in BUCKET_EDGES_SECONDS)


class Counter:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)


class LatencyHistogram:
    """Sliding-window latency recorder with percentile summaries.

    Keeps the most recent ``window`` samples (old traffic ages out, so the
    percentiles track current behaviour) plus lifetime count/total for QPS
    and mean-over-all-time accounting, plus lifetime counts in the fixed
    :data:`BUCKET_EDGES_SECONDS` buckets — the cumulative ``_bucket``
    series a native Prometheus histogram exposes (unlike the windowed
    percentiles, bucket counts never age out, so rate() over a scrape
    interval is exact).
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._bucket_counts = [0] * len(BUCKET_EDGES_SECONDS)

    @property
    def count(self) -> int:
        """Lifetime number of recorded durations."""
        with self._lock:
            return self._count

    @property
    def total_seconds(self) -> float:
        """Lifetime sum of recorded durations."""
        with self._lock:
            return self._total

    def record(self, seconds: float) -> None:
        seconds = float(seconds)
        bucket = bisect_left(BUCKET_EDGES_SECONDS, seconds)
        with self._lock:
            self._samples.append(seconds)
            self._count += 1
            self._total += seconds
            if bucket < len(self._bucket_counts):
                self._bucket_counts[bucket] += 1

    def buckets(self) -> dict:
        """Lifetime cumulative bucket counts, Prometheus ``le`` convention.

        ``{"0.001": 3, ..., "5": 40, "+Inf": 41}`` — each entry counts
        every sample ``<=`` its edge, and ``+Inf`` equals the lifetime
        count.
        """
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
        cumulative = 0
        out: dict[str, int] = {}
        for label, count in zip(_BUCKET_LABELS, counts):
            cumulative += count
            out[label] = cumulative
        out["+Inf"] = total
        return out

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the current window, seconds."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q))

    def summary(self) -> dict:
        """JSON-compatible summary: count, mean and p50/p95/p99 in ms,
        plus the lifetime cumulative ``buckets`` (see :meth:`buckets`)."""
        with self._lock:
            count, total = self._count, self._total
            bucket_counts = list(self._bucket_counts)
            window = np.fromiter(self._samples, dtype=np.float64)
        buckets: dict[str, int] = {}
        cumulative = 0
        for label, bucket_count in zip(_BUCKET_LABELS, bucket_counts):
            cumulative += bucket_count
            buckets[label] = cumulative
        buckets["+Inf"] = count
        if window.size == 0:
            return {"count": count, "mean_ms": 0.0,
                    "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                    "max_ms": 0.0, "buckets": buckets}
        p50, p95, p99 = np.percentile(window, (50, 95, 99))
        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 4),
            "p50_ms": round(float(p50) * 1e3, 4),
            "p95_ms": round(float(p95) * 1e3, 4),
            "p99_ms": round(float(p99) * 1e3, 4),
            "max_ms": round(float(window.max()) * 1e3, 4),
            "buckets": buckets,
        }


_MetricKey = "tuple[str, tuple[tuple[str, str], ...]]"


class MetricsRegistry:
    """Named (and optionally labeled) metrics for one serving gateway.

    Metrics are created lazily on first access, so instrumentation sites
    never need registration boilerplate::

        metrics = MetricsRegistry()
        with metrics.timer("similar.scan"):
            run_scan()
        metrics.counter("cache.hits").increment()
        metrics.counter("node.failures", node="a").increment()
        print(metrics.snapshot())

    A metric is identified by its name plus an optional label set
    (Prometheus-style): ``counter("node.failures", node="a")`` and
    ``node="b"`` are independent series of one family.  Unlabeled metrics
    keep their historical place in the ``counters`` / ``gauges`` /
    ``latency`` snapshot sections; labeled series are reported in the
    ``families`` section (and with real labels in the Prometheus
    exposition).

    ``snapshot()`` reads every metric under its own lock after taking one
    consistent view of the registry, so a scrape never observes a
    pre-increment/post-increment mix of a pair updated under a shared lock
    (e.g. cache hits exceeding lookups).
    """

    def __init__(self, *, histogram_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._histogram_window = histogram_window
        self._counters: "dict[_MetricKey, Counter]" = {}
        self._gauges: "dict[_MetricKey, Gauge]" = {}
        self._histograms: "dict[_MetricKey, LatencyHistogram]" = {}
        self._started_at = time.perf_counter()

    @staticmethod
    def _key(name: str, labels: dict) -> "tuple[str, tuple]":
        if not labels:
            return (name, ())
        return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))

    def counter(self, name: str, **labels: object) -> Counter:
        key = self._key(name, labels)
        with self._lock:
            if key not in self._counters:
                self._counters[key] = Counter()
            return self._counters[key]

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = self._key(name, labels)
        with self._lock:
            if key not in self._gauges:
                self._gauges[key] = Gauge()
            return self._gauges[key]

    def histogram(self, name: str, **labels: object) -> LatencyHistogram:
        key = self._key(name, labels)
        with self._lock:
            if key not in self._histograms:
                self._histograms[key] = LatencyHistogram(self._histogram_window)
            return self._histograms[key]

    @contextmanager
    def timer(self, name: str, **labels: object):
        """Record the duration of a ``with`` block into histogram ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name, **labels).record(time.perf_counter() - start)

    def family(self, prefix: str) -> dict:
        """Summaries of every histogram named ``<prefix>.<label>``, by label.

        The historical name-mangled convention predating real labels:
        per-entity series registered as ``prefix.label`` read back as one
        ``{label: summary}`` family.  Kept for dotted-name series; new
        instrumentation should prefer ``histogram(name, **labels)`` plus
        :meth:`labeled_family`.
        """
        with self._lock:
            histograms = {name: h
                          for (name, labels), h in self._histograms.items()
                          if not labels and name.startswith(prefix + ".")}
        return {name[len(prefix) + 1:]: h.summary()
                for name, h in sorted(histograms.items())}

    def labeled_family(self, name: str, label: str) -> dict:
        """``{label_value: summary}`` for histogram family ``name``.

        Reads every series of the family that carries ``label``::

            with metrics.timer("node.latency", node=node_name):
                query(node)
            metrics.labeled_family("node.latency", "node")
            # {"a": {count, p50_ms, ...}, "b": {...}}
        """
        with self._lock:
            series = [(dict(labels), h)
                      for (n, labels), h in self._histograms.items()
                      if n == name and labels]
        return {labels[label]: h.summary()
                for labels, h in sorted(series, key=lambda pair: pair[0].get(label, ""))
                if label in labels}

    def qps(self, name: str) -> float:
        """Lifetime queries-per-second of histogram ``name``."""
        elapsed = time.perf_counter() - self._started_at
        if elapsed <= 0.0:
            return 0.0
        return self.histogram(name).count / elapsed

    @staticmethod
    def _labeled(entries: list) -> list:
        entries.sort(key=lambda item: item[0])
        return [{"labels": dict(labels), **payload} for labels, payload in entries]

    def snapshot(self) -> dict:
        """One JSON-compatible dict with every metric's current state.

        The registry map is copied under the registry lock, then each
        metric is read under its own lock — a single consistent scrape.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        elapsed = time.perf_counter() - self._started_at
        plain_counters, labeled_counters = {}, {}
        for (name, labels), c in sorted(counters.items()):
            if labels:
                labeled_counters.setdefault(name, []).append(
                    (labels, {"value": c.value}))
            else:
                plain_counters[name] = c.value
        plain_gauges, labeled_gauges = {}, {}
        for (name, labels), g in sorted(gauges.items()):
            if labels:
                labeled_gauges.setdefault(name, []).append(
                    (labels, {"value": g.value}))
            else:
                plain_gauges[name] = g.value
        plain_latency, labeled_latency = {}, {}
        for (name, labels), h in sorted(histograms.items()):
            summary = h.summary()
            if labels:
                labeled_latency.setdefault(name, []).append((labels, summary))
            else:
                qps = round(summary["count"] / elapsed, 3) if elapsed > 0 else 0.0
                plain_latency[name] = {**summary, "qps": qps}
        return {
            "uptime_seconds": round(elapsed, 3),
            "counters": plain_counters,
            "gauges": plain_gauges,
            "latency": plain_latency,
            "families": {
                "counters": {name: self._labeled(series)
                             for name, series in labeled_counters.items()},
                "gauges": {name: self._labeled(series)
                           for name, series in labeled_gauges.items()},
                "latency": {name: self._labeled(series)
                            for name, series in labeled_latency.items()},
            },
        }
