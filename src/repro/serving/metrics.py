"""Serving-tier observability: latency histograms, counters, gauges.

The paper demos EarthQube as an *interactive* portal; an interactive query
tier is only tunable when every stage of the hot path is measured.  This
module is a dependency-free miniature of the usual Prometheus client:

* :class:`Counter` — monotonically increasing event count (QPS numerators,
  cache hits/misses),
* :class:`Gauge` — last-written value (shard occupancy, cache size),
* :class:`LatencyHistogram` — sliding window of durations with p50/p95/p99
  summaries,
* :class:`MetricsRegistry` — the named collection the gateway exposes as a
  JSON-compatible snapshot.

All types are thread-safe: the scatter-gather executor and the micro-batch
worker record from multiple threads concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager

import numpy as np


class Counter:
    """A monotonically increasing counter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def increment(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount


class Gauge:
    """A value that can go up and down (occupancy, queue depth)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: float = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)


class LatencyHistogram:
    """Sliding-window latency recorder with percentile summaries.

    Keeps the most recent ``window`` samples (old traffic ages out, so the
    percentiles track current behaviour) plus lifetime count/total for QPS
    and mean-over-all-time accounting.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._lock = threading.Lock()
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    @property
    def count(self) -> int:
        """Lifetime number of recorded durations."""
        return self._count

    @property
    def total_seconds(self) -> float:
        """Lifetime sum of recorded durations."""
        return self._total

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of the current window, seconds."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.fromiter(self._samples, dtype=np.float64), q))

    def summary(self) -> dict:
        """JSON-compatible summary: count, mean and p50/p95/p99 in ms."""
        with self._lock:
            count, total = self._count, self._total
            window = np.fromiter(self._samples, dtype=np.float64)
        if window.size == 0:
            return {"count": count, "mean_ms": 0.0,
                    "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        p50, p95, p99 = np.percentile(window, (50, 95, 99))
        return {
            "count": count,
            "mean_ms": round(total / count * 1e3, 4),
            "p50_ms": round(float(p50) * 1e3, 4),
            "p95_ms": round(float(p95) * 1e3, 4),
            "p99_ms": round(float(p99) * 1e3, 4),
            "max_ms": round(float(window.max()) * 1e3, 4),
        }


class MetricsRegistry:
    """Named metrics for one serving gateway.

    Metrics are created lazily on first access, so instrumentation sites
    never need registration boilerplate::

        metrics = MetricsRegistry()
        with metrics.timer("similar.scan"):
            run_scan()
        metrics.counter("cache.hits").increment()
        print(metrics.snapshot())
    """

    def __init__(self, *, histogram_window: int = 4096) -> None:
        self._lock = threading.Lock()
        self._histogram_window = histogram_window
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}
        self._started_at = time.perf_counter()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram(self._histogram_window)
            return self._histograms[name]

    @contextmanager
    def timer(self, name: str):
        """Record the duration of a ``with`` block into histogram ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).record(time.perf_counter() - start)

    def family(self, prefix: str) -> dict:
        """Summaries of every histogram named ``<prefix>.<label>``, by label.

        The labeled-series convention: per-entity latency series (one
        histogram per federation node, for example) are registered as
        ``prefix.label`` and read back as one ``{label: summary}`` family —
        a dependency-free stand-in for Prometheus labels::

            with metrics.timer(f"node.{node_name}"):
                query(node)
            metrics.family("node")   # {node_name: {count, p50_ms, ...}}
        """
        with self._lock:
            histograms = {name: h for name, h in self._histograms.items()
                          if name.startswith(prefix + ".")}
        return {name[len(prefix) + 1:]: h.summary()
                for name, h in sorted(histograms.items())}

    def qps(self, name: str) -> float:
        """Lifetime queries-per-second of histogram ``name``."""
        elapsed = time.perf_counter() - self._started_at
        if elapsed <= 0.0:
            return 0.0
        return self.histogram(name).count / elapsed

    def snapshot(self) -> dict:
        """One JSON-compatible dict with every metric's current state."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        elapsed = time.perf_counter() - self._started_at
        return {
            "uptime_seconds": round(elapsed, 3),
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "latency": {
                name: {**h.summary(),
                       "qps": round(h.count / elapsed, 3) if elapsed > 0 else 0.0}
                for name, h in sorted(histograms.items())
            },
        }
