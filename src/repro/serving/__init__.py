"""The query-serving tier: concurrent, sharded, cached, observable.

The ROADMAP's north star is a portal that survives "heavy traffic from
millions of users" — the paper's interactivity claim at production scale.
This package makes the hot query path of the reproduction concurrent and
measurable while preserving the single-threaded path's exact results:

* :mod:`repro.serving.sharding` — :class:`ShardedHammingIndex`, K-way
  partitioned codes with a parallel scatter-gather executor and a
  deterministic (distance, insertion row) merge,
* :mod:`repro.serving.batching` — :class:`MicroBatcher`, coalescing
  concurrent queries into one vectorized scan,
* :mod:`repro.serving.cache` — :class:`QueryResultCache`, LRU+TTL result
  memoization with ingest invalidation,
* :mod:`repro.serving.metrics` — latency histograms (p50/p95/p99), QPS
  counters, occupancy gauges,
* :mod:`repro.serving.gateway` — :class:`ServingGateway`, the facade
  wiring cache -> batcher -> shards behind the same response types as
  :class:`~repro.earthqube.server.EarthQube`, enabled by
  ``EarthQubeConfig.serving.enabled``.
"""

from .batching import BatcherClosedError, MicroBatcher
from .cache import (
    CacheStats,
    QueryResultCache,
    canonical_code_key,
    canonical_spec_key,
)
from .gateway import ServingGateway
from .metrics import Counter, Gauge, LatencyHistogram, MetricsRegistry
from .sharding import CodeQuery, ShardedHammingIndex

__all__ = [
    "ServingGateway",
    "ShardedHammingIndex",
    "CodeQuery",
    "MicroBatcher",
    "BatcherClosedError",
    "QueryResultCache",
    "CacheStats",
    "canonical_code_key",
    "canonical_spec_key",
    "MetricsRegistry",
    "LatencyHistogram",
    "Counter",
    "Gauge",
]
