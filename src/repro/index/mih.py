"""Multi-Index Hashing (Norouzi, Punjani & Fleet, CVPR 2012).

Bucket enumeration explodes combinatorially with the radius; MIH fixes this
with the pigeonhole principle: split ``K`` bits into ``m`` disjoint
substrings and index each substring in its own table.  If two codes differ
by at most ``r`` bits overall, then in at least one substring they differ by
at most ``floor(r/m)`` bits.  A radius-``r`` query therefore probes each
substring table with the much smaller radius ``floor(r/m)``, unions the
candidates, and verifies full distances — exact results at a tiny fraction
of the enumeration cost.  This is the scalable half of experiment E8.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterable

import numpy as np

from ..errors import EmptyIndexError, ValidationError
from .codes import unpack_bits
from .hamming import hamming_distances_to_query
from .results import RadiusSearchStats, SearchResult


def _bits_to_int(bits: np.ndarray) -> int:
    """Little-endian integer value of a short bit vector."""
    value = 0
    for i, bit in enumerate(bits):
        if bit:
            value |= 1 << i
    return value


class MultiIndexHashing:
    """Exact Hamming-radius/KNN search via substring tables."""

    def __init__(self, num_bits: int, num_tables: int = 4) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        if num_tables < 1 or num_tables > num_bits:
            raise ValidationError(
                f"num_tables must be in [1, num_bits], got {num_tables}")
        self.num_bits = num_bits
        self.num_tables = num_tables
        # Substring boundaries: as equal as possible.
        base = num_bits // num_tables
        extra = num_bits % num_tables
        sizes = [base + (1 if i < extra else 0) for i in range(num_tables)]
        starts = np.cumsum([0] + sizes[:-1])
        self._spans = [(int(s), int(s + size)) for s, size in zip(starts, sizes)]
        self._tables: list[dict[int, list[int]]] = [{} for _ in range(num_tables)]
        self._codes: "np.ndarray | None" = None  # (N, W) packed, for verification
        self._pending: list[np.ndarray] = []
        self._ids: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def substring_spans(self) -> list[tuple[int, int]]:
        """The (start, stop) bit spans of each substring table."""
        return list(self._spans)

    def build(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """(Re)build the index from aligned ids and packed codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        self._codes = codes
        self._pending: list[np.ndarray] = []
        self._ids = ids
        self._tables = [{} for _ in range(self.num_tables)]
        bits = unpack_bits(codes, self.num_bits)
        for table, (start, stop) in zip(self._tables, self._spans):
            substrings = bits[:, start:stop]
            # Vectorized little-endian integer per row.
            weights = (1 << np.arange(stop - start, dtype=np.uint64))
            keys = (substrings.astype(np.uint64) * weights).sum(axis=1)
            for row, key in enumerate(keys.tolist()):
                table.setdefault(key, []).append(row)

    def add(self, item_id: Hashable, code: np.ndarray) -> None:
        """Incrementally index one new item (online ingestion path).

        New codes are buffered and folded into the verification matrix
        lazily at the next search; substring tables are updated immediately,
        so the item is retrievable right away.
        """
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(f"add expects a single packed code, got {code.shape}")
        if self._codes is None:
            self._codes = np.empty((0, code.shape[0]), dtype=np.uint64)
            self._pending = []
        row = len(self._ids)
        self._ids.append(item_id)
        self._pending.append(code)
        bits = unpack_bits(code, self.num_bits)
        for table, (start, stop) in zip(self._tables, self._spans):
            key = _bits_to_int(bits[start:stop])
            table.setdefault(key, []).append(row)

    def _materialize(self) -> np.ndarray:
        """Fold buffered codes into the verification matrix."""
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        return self._codes

    def _candidate_rows(self, query_bits: np.ndarray, substring_radius: int,
                        stats: RadiusSearchStats) -> set[int]:
        candidates: set[int] = set()
        for table, (start, stop) in zip(self._tables, self._spans):
            sub = query_bits[start:stop]
            width = stop - start
            base_key = _bits_to_int(sub)
            keys = [base_key]
            for flips in range(1, substring_radius + 1):
                for positions in combinations(range(width), flips):
                    key = base_key
                    for p in positions:
                        key ^= 1 << p
                    keys.append(key)
            for key in keys:
                stats.buckets_probed += 1
                rows = table.get(key)
                if rows:
                    candidates.update(rows)
        return candidates

    def search_radius(self, code: np.ndarray, radius: int,
                      *, with_stats: bool = False,
                      ) -> "list[SearchResult] | tuple[list[SearchResult], RadiusSearchStats]":
        """All items within Hamming ``radius``, nearest first (exact)."""
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        if self._codes is None or not self._ids:
            raise EmptyIndexError("search on an empty MultiIndexHashing index")
        stats = RadiusSearchStats(radius=radius)
        archive_codes = self._materialize()
        query_bits = unpack_bits(np.asarray(code, dtype=np.uint64), self.num_bits)
        substring_radius = radius // self.num_tables
        rows = self._candidate_rows(query_bits, substring_radius, stats)
        stats.candidates = len(rows)
        results: list[SearchResult] = []
        if rows:
            row_array = np.fromiter(rows, dtype=np.int64, count=len(rows))
            distances = hamming_distances_to_query(
                archive_codes[row_array], np.asarray(code, dtype=np.uint64))
            within = distances <= radius
            # Canonical result order: (distance, insertion row) — matches
            # LinearScanIndex so kNN results are identical across indexes.
            order = np.lexsort((row_array[within], distances[within]))
            for row, distance in zip(row_array[within][order],
                                     distances[within][order]):
                results.append(SearchResult(self._ids[int(row)], int(distance)))
        stats.results = len(results)
        if with_stats:
            return results, stats
        return results

    def search_knn(self, code: np.ndarray, k: int,
                   *, max_radius: "int | None" = None) -> list[SearchResult]:
        """The ``k`` nearest items, growing the radius in substring steps.

        Radius grows by ``num_tables`` per step (smaller growth cannot
        enlarge the substring radius), so each step reuses strictly more
        buckets; stops when ``k`` verified results exist or ``max_radius``
        is reached.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        if self._codes is None or not self._ids:
            raise EmptyIndexError("search on an empty MultiIndexHashing index")
        limit = max_radius if max_radius is not None else self.num_bits
        radius = 0
        while True:
            results = self.search_radius(code, radius)
            if len(results) >= k or radius >= limit:
                return results[:k]
            radius = min(limit, radius + self.num_tables)
