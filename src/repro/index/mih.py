"""Multi-Index Hashing (Norouzi, Punjani & Fleet, CVPR 2012) — array-native.

Bucket enumeration explodes combinatorially with the radius; MIH fixes this
with the pigeonhole principle: split ``K`` bits into ``m`` disjoint
substrings and index each substring in its own table.  If two codes differ
by at most ``r`` bits overall, then in at least one substring they differ by
at most ``floor(r/m)`` bits.  A radius-``r`` query therefore probes each
substring table with the much smaller radius ``floor(r/m)``, unions the
candidates, and verifies full distances — exact results at a tiny fraction
of the enumeration cost.  This is the scalable half of experiment E8.

Data layout (the vectorized core)
---------------------------------

Each substring table is stored in **CSR form** rather than a dict of
Python lists:

* ``keys``     — ``(N,)`` uint64, the substring key of every indexed row,
* ``rows``     — ``(N,)`` int64, row numbers sorted (stably) by key, so
  each bucket is one contiguous slice and rows within a bucket keep
  insertion order,
* ``unique_keys`` / ``indptr`` — the sorted distinct keys and their
  CSR offsets: bucket ``b`` is ``rows[indptr[b]:indptr[b + 1]]``.

Building the table is a single vectorized key computation over all rows
followed by one ``np.argsort`` — no per-row Python.  A probe is one
``np.searchsorted`` over *all* probe keys of *all* queries at once.

Bucket enumeration uses a **flip-mask cache**: for a substring of
``width`` bits searched at substring radius ``r``, the set of XOR masks
with popcount ``<= r`` depends only on ``(width, r)``, so it is computed
once (module-level cache) and every query derives its probe keys as
``base_key ^ masks`` — one vectorized XOR instead of re-enumerating
``itertools.combinations`` per query.

Candidate gathering concatenates the matched bucket slices of every table
and deduplicates with one ``np.unique`` over ``(query, row)`` pairs; full
Hamming distances are then verified with the packed popcount kernel.

Incremental ``add`` appends to a small per-table overflow dict (probed
alongside the CSR arrays) and is folded back into CSR form once the
overflow grows past a fraction of the table — so online ingestion stays
O(1) per item while searches stay vectorized.

Batch queries (``search_radius_batch`` / ``search_knn_batch``) push whole
query matrices through this pipeline, amortizing every fixed cost across
the batch; the single-query methods are thin wrappers over batches of one.

kNN searches grow the radius in substring-sized steps, and the ladder is
**incremental**: the radius-``s`` candidate set is the radius-``(s-1)``
set plus the buckets of the new popcount-``s`` mask layer, so each round
probes only that layer and verifies only never-seen candidates —
accumulated (candidate, distance) arrays carry across rounds and every
pair is XOR-verified at most once per search.

When the probe count for a radius would exceed the archive size (far
queries, k beyond the reachable neighborhood), bucket enumeration costs
more than reading every row — the search falls back to an exact scan with
byte-identical results, bounding both time and flip-mask memory where the
dict-based implementation degenerated combinatorially.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Hashable, Iterable

import numpy as np

from ..errors import EmptyIndexError, ValidationError
from ..obs import tracing
from .codes import WORD_BITS
from .hamming import TombstoneSet, as_allowed_mask, combine_allowed_masks
from .results import RadiusSearchStats, SearchResult

# Flip-mask sets depend only on (substring width, substring radius); they
# are shared by every index in the process.  Sets larger than the limit are
# still computed correctly but not memoized (they only arise when a kNN
# search degenerates to near-exhaustive radii).
_FLIP_MASK_CACHE: dict[tuple[int, int], np.ndarray] = {}
_FLIP_MASK_CACHE_LIMIT = 1 << 20

# Candidate dedup uses a scatter-into-bitmap when the (query, row) domain
# fits in this many flags (64 MiB of bools); np.unique otherwise.
_DEDUP_BITMAP_LIMIT = 1 << 26


def _sorted_unique(values: np.ndarray, domain: int) -> np.ndarray:
    """Sorted unique non-negative int64 values from ``[0, domain)``.

    Equivalent to ``np.unique(values)``.  When the values are *dense* in
    their domain a scatter-into-bitmap plus one scan beats sorting; when
    they are sparse the O(domain) scan would dominate, so sort instead.
    The dedup sits on the hot path of every search.
    """
    if 0 < domain <= _DEDUP_BITMAP_LIMIT and domain <= 16 * values.shape[0]:
        flags = np.zeros(domain, dtype=bool)
        flags[values] = True
        return np.flatnonzero(flags)
    return np.unique(values)


def _allowed_keep(rows: np.ndarray, allowed: np.ndarray) -> np.ndarray:
    """Boolean keep-flags for candidate ``rows`` under an allowed mask.

    Rows at or beyond the mask length are disallowed (the mask may have
    been snapshotted before online adds).  Used to restrict verification
    to the allowed-row mask: disallowed candidates are dropped *before*
    their full Hamming distance is computed.
    """
    keep = rows < allowed.shape[0]
    if keep.all():
        return allowed[rows]
    keep[keep] = allowed[rows[keep]]
    return keep


def flip_masks(width: int, radius: int) -> np.ndarray:
    """All ``width``-bit XOR masks with popcount ``<= radius``, as uint64.

    The zero mask comes first, then masks of 1 flip, 2 flips, ... — the
    same enumeration order as probing the base bucket before its
    neighborhood.  Cached per ``(width, radius)``.
    """
    if width < 1 or width > 64:
        raise ValidationError(f"substring width must be in [1, 64], got {width}")
    if radius < 0:
        raise ValidationError(f"radius must be >= 0, got {radius}")
    radius = min(radius, width)
    key = (width, radius)
    cached = _FLIP_MASK_CACHE.get(key)
    if cached is not None:
        return cached
    parts = [np.zeros(1, dtype=np.uint64)]
    for flips in range(1, radius + 1):
        positions = np.array(list(combinations(range(width), flips)),
                             dtype=np.uint64)
        parts.append((np.uint64(1) << positions).sum(axis=1, dtype=np.uint64))
    masks = np.concatenate(parts)
    if masks.shape[0] <= _FLIP_MASK_CACHE_LIMIT:
        _FLIP_MASK_CACHE[key] = masks
    return masks


def _substring_keys(codes: np.ndarray, start: int, stop: int) -> np.ndarray:
    """``(N,)`` substring keys straight from ``(N, W)`` packed words.

    The key of a row is its bits ``[start, stop)`` as a little-endian
    integer — extracted with two word shifts and a mask, no bit
    unpacking.  Requires ``stop - start <= 64`` (enforced at index
    construction).
    """
    width = stop - start
    word, offset = divmod(start, WORD_BITS)
    keys = codes[:, word] >> np.uint64(offset)
    bits_from_first = WORD_BITS - offset
    if bits_from_first < width:
        keys = keys | (codes[:, word + 1] << np.uint64(bits_from_first))
    if width < WORD_BITS:
        keys = keys & np.uint64((1 << width) - 1)
    return keys


class _CSRTable:
    """One substring table: CSR bucket arrays plus a small add-overflow."""

    __slots__ = ("keys", "unique_keys", "indptr", "rows",
                 "overflow", "pending_keys", "_overflow_sorted")

    def __init__(self) -> None:
        self.keys = np.empty(0, dtype=np.uint64)
        self.unique_keys = np.empty(0, dtype=np.uint64)
        self.indptr = np.zeros(1, dtype=np.int64)
        self.rows = np.empty(0, dtype=np.int64)
        # key -> [row, ...] for items added since the last compaction, and
        # the per-row key log needed to fold them back into CSR form.
        self.overflow: dict[int, list[int]] = {}
        self.pending_keys: list[int] = []
        self._overflow_sorted: "np.ndarray | None" = None

    def overflow_lookup(self, flat_keys: np.ndarray,
                        ) -> "list[tuple[int, list[int]]]":
        """``(probe position, rows)`` for every overflow hit.

        Membership is tested with one searchsorted over all probe keys
        (the sorted key array is cached between adds); Python touches only
        the actual hits, so a tiny overflow costs the batch hot path one
        vectorized lookup instead of a loop over every probe key.
        """
        if self._overflow_sorted is None:
            self._overflow_sorted = np.sort(np.fromiter(
                self.overflow.keys(), dtype=np.uint64, count=len(self.overflow)))
        keys_sorted = self._overflow_sorted
        pos = np.minimum(np.searchsorted(keys_sorted, flat_keys),
                         keys_sorted.shape[0] - 1)
        hits = np.flatnonzero(keys_sorted[pos] == flat_keys)
        return [(probe_index, self.overflow[int(flat_keys[probe_index])])
                for probe_index in hits.tolist()]

    def rebuild(self, keys: np.ndarray) -> None:
        """Lay the table out from the key of every row (one argsort)."""
        self.keys = np.ascontiguousarray(keys, dtype=np.uint64)
        order = np.argsort(self.keys, kind="stable")
        self.rows = order.astype(np.int64, copy=False)
        self._overflow_sorted = None
        sorted_keys = self.keys[order]
        total = sorted_keys.shape[0]
        if total:
            # Bucket boundaries straight off the sorted keys — cheaper
            # than a second sort inside np.unique.
            first = np.flatnonzero(np.concatenate(
                [np.ones(1, dtype=bool), sorted_keys[1:] != sorted_keys[:-1]]))
            self.unique_keys = sorted_keys[first]
            self.indptr = np.concatenate(
                [first, np.array([total])]).astype(np.int64)
        else:
            self.unique_keys = np.empty(0, dtype=np.uint64)
            self.indptr = np.zeros(1, dtype=np.int64)
        self.overflow = {}
        self.pending_keys = []

    def add(self, key: int, row: int) -> None:
        self.overflow.setdefault(key, []).append(row)
        self.pending_keys.append(key)
        self._overflow_sorted = None

    def compact_due(self) -> bool:
        pending = len(self.pending_keys)
        return pending > 0 and pending > max(64, self.keys.shape[0] >> 3)

    def compact(self) -> None:
        if self.pending_keys:
            self.rebuild(np.concatenate(
                [self.keys, np.array(self.pending_keys, dtype=np.uint64)]))


class MultiIndexHashing:
    """Exact Hamming-radius/KNN search via CSR substring tables."""

    def __init__(self, num_bits: int, num_tables: int = 4) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        if num_tables < 1 or num_tables > num_bits:
            raise ValidationError(
                f"num_tables must be in [1, num_bits], got {num_tables}")
        self.num_bits = num_bits
        self.num_tables = num_tables
        # Substring boundaries: as equal as possible.
        base = num_bits // num_tables
        extra = num_bits % num_tables
        sizes = [base + (1 if i < extra else 0) for i in range(num_tables)]
        if max(sizes) > WORD_BITS:
            raise ValidationError(
                f"substring width {max(sizes)} exceeds {WORD_BITS} bits; "
                f"use num_tables >= {-(-num_bits // WORD_BITS)} for "
                f"{num_bits}-bit codes")
        starts = np.cumsum([0] + sizes[:-1])
        self._spans = [(int(s), int(s + size)) for s, size in zip(starts, sizes)]
        self._tables = [_CSRTable() for _ in range(num_tables)]
        self._codes: "np.ndarray | None" = None  # (N, W) packed, for verification
        self._pending: list[np.ndarray] = []
        self._ids: list[Hashable] = []
        # Mutable-corpus lifecycle: tombstoned rows stay in the tables and
        # the verification matrix but are masked out of every search (the
        # alive mask AND-combines with query filters) until compaction.
        self._tombstones = TombstoneSet()
        self._row_of: "dict[Hashable, int] | None" = None

    def __len__(self) -> int:
        """Searchable (alive) items."""
        return len(self._ids) - len(self._tombstones)

    @property
    def dead_count(self) -> int:
        """Tombstoned rows awaiting compaction."""
        return len(self._tombstones)

    @property
    def dead_fraction(self) -> float:
        """Dead rows as a fraction of physical rows (0 when empty)."""
        return self._tombstones.fraction(len(self._ids))

    @property
    def substring_spans(self) -> list[tuple[int, int]]:
        """The (start, stop) bit spans of each substring table."""
        return list(self._spans)

    def build(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """(Re)build the index from aligned ids and packed codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        self._check_words(codes.shape[1])
        self._codes = codes
        self._pending = []
        self._ids = ids
        self._tombstones.clear()
        self._row_of = None
        self._tables = [_CSRTable() for _ in range(self.num_tables)]
        for table, (start, stop) in zip(self._tables, self._spans):
            table.rebuild(_substring_keys(codes, start, stop))

    def restore(self, item_ids: Iterable[Hashable], codes: np.ndarray,
                dead_rows: Iterable[int]) -> None:
        """Rebuild from checkpointed *physical* state, tombstones included.

        The durability tier persists the full row-aligned code matrix plus
        the alive mask; restoring must reproduce the exact physical layout
        (dead rows occupy their original positions) so recovered query
        results are byte-identical to the pre-crash node, including the
        (distance, insertion row) tie-break.  ``codes`` may be an mmapped
        read-only array — it is only copied if a later ingest appends.
        """
        self.build(item_ids, codes)
        for row in dead_rows:
            row = int(row)
            if not 0 <= row < len(self._ids):
                raise ValidationError(
                    f"dead row {row} out of range for {len(self._ids)} rows")
            self._tombstones.mark(row)

    def add(self, item_id: Hashable, code: np.ndarray) -> None:
        """Incrementally index one new item (online ingestion path).

        New codes are buffered and folded into the verification matrix
        lazily at the next search; substring tables get the item in their
        overflow immediately, so it is retrievable right away.  Overflow is
        folded back into the CSR arrays once it grows past a fraction of
        the table.
        """
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(f"add expects a single packed code, got {code.shape}")
        self._check_words(code.shape[0])
        if self._codes is None:
            self._codes = np.empty((0, code.shape[0]), dtype=np.uint64)
            self._pending = []
        row = len(self._ids)
        self._ids.append(item_id)
        if self._row_of is not None:
            self._row_of[item_id] = row
        self._pending.append(code)
        for table, (start, stop) in zip(self._tables, self._spans):
            table.add(int(_substring_keys(code[None, :], start, stop)[0]), row)
            if table.compact_due():
                table.compact()

    # ------------------------------------------------------------------ #
    # Deletion lifecycle: tombstones + compaction
    # ------------------------------------------------------------------ #

    def remove(self, item_id: Hashable) -> None:
        """Tombstone one item: O(1), excluded from every later search.

        The substring tables keep the dead row (its buckets are probed but
        the alive mask drops it before verification); :meth:`compact`
        rebuilds the tables without it once dead rows pile up.
        """
        if self._row_of is None:
            self._row_of = {item_id: row
                            for row, item_id in enumerate(self._ids)}
        row = self._row_of.pop(item_id, None)
        if row is None or row in self._tombstones:
            raise ValidationError(f"no indexed item {item_id!r} to remove")
        self._tombstones.mark(row)

    def compact_due(self) -> bool:
        """Default policy: dead rows exceed the standalone threshold."""
        return self._tombstones.due(len(self._ids))

    def compact(self) -> None:
        """Rebuild without the dead rows; results stay byte-identical.

        Surviving rows keep their relative order, so the canonical
        (distance, insertion row) tie-break is unchanged.  Callers holding
        row-aligned masks must refresh them after compaction.
        """
        if not len(self._tombstones):
            return
        codes = self._materialize()
        alive = np.flatnonzero(self._tombstones.alive_mask(len(self._ids)))
        self.build([self._ids[int(row)] for row in alive], codes[alive])

    def _alive_allowed(self) -> "np.ndarray | None":
        """The alive-row mask, or ``None`` when nothing is tombstoned."""
        return self._tombstones.alive_mask(len(self._ids))

    def _materialize(self) -> np.ndarray:
        """Fold buffered codes into the verification matrix."""
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        return self._codes

    def _probe_cost(self, substring_radius: int) -> int:
        """Bucket probes a search at ``substring_radius`` would issue
        (arithmetic only — no mask generation)."""
        total = 0
        for start, stop in self._spans:
            width = stop - start
            total += sum(comb(width, i)
                         for i in range(min(substring_radius, width) + 1))
        return total

    def _probe_budget(self) -> int:
        """Probe count beyond which bucket enumeration costs more than
        scanning the archive outright — the exact-fallback threshold.

        Beyond it the flip-mask sets also grow combinatorially large, so
        the budget doubles as a memory bound: mask arrays are never
        generated for radii past it.
        """
        return max(len(self._ids), 1024)

    def _effective_budget(self, probe_budget: "int | None") -> int:
        """Resolve a caller-supplied probe budget override.

        The cost-based planner passes its calibrated ladder-depth bound
        here; ``0`` forces the exact-scan path outright (how a plan
        expresses the *linear* backend on this index), ``None`` keeps the
        row-count default.  Any budget yields byte-identical results —
        the fallback is exact — so this knob only moves cost around.
        """
        if probe_budget is None:
            return self._probe_budget()
        return max(int(probe_budget), 0)

    # ------------------------------------------------------------------ #
    # Candidate gathering (shared by every search path)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _probe_table(table: _CSRTable, probe_keys: np.ndarray,
                     query_parts: "list[np.ndarray]",
                     row_parts: "list[np.ndarray]") -> None:
        """Gather bucket rows for a ``(Q, M)`` probe-key matrix.

        Appends aligned ``(query index, archive row)`` arrays for every
        matched bucket — CSR slices expanded in one shot, overflow dict
        probed per key.
        """
        num_masks = probe_keys.shape[1]
        flat_keys = probe_keys.ravel()
        num_buckets = table.unique_keys.shape[0]
        if num_buckets:
            pos = np.searchsorted(table.unique_keys, flat_keys)
            pos_clipped = np.minimum(pos, num_buckets - 1)
            hit = table.unique_keys[pos_clipped] == flat_keys
            if hit.any():
                buckets = pos_clipped[hit]
                starts = table.indptr[buckets]
                counts = table.indptr[buckets + 1] - starts
                total = int(counts.sum())
                if total:
                    # Expand every matched bucket slice in one shot:
                    # within[j] counts 0..count-1 inside its slice.
                    boundaries = np.cumsum(counts) - counts
                    within = (np.arange(total, dtype=np.int64)
                              - np.repeat(boundaries, counts))
                    row_parts.append(table.rows[np.repeat(starts, counts) + within])
                    query_of_bucket = np.flatnonzero(hit) // num_masks
                    query_parts.append(np.repeat(query_of_bucket, counts))
        if table.overflow:
            for probe_index, bucket in table.overflow_lookup(flat_keys):
                row_parts.append(np.asarray(bucket, dtype=np.int64))
                query_parts.append(np.full(len(bucket),
                                           probe_index // num_masks,
                                           dtype=np.int64))

    def _batch_candidates(self, queries: np.ndarray, substring_radius: int,
                          ) -> "tuple[np.ndarray, np.ndarray, int]":
        """Unique ``(query, row)`` candidate pairs for a whole query batch.

        Returns ``(query_of, row_of, buckets_probed_per_query)`` where the
        first two are aligned int64 arrays sorted by (query, row).
        """
        total_rows = len(self._ids)
        query_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        probes_per_query = 0
        for table, (start, stop) in zip(self._tables, self._spans):
            width = stop - start
            masks = flip_masks(width, substring_radius)
            probes_per_query += masks.shape[0]
            base_keys = _substring_keys(queries, start, stop)
            probe_keys = base_keys[:, None] ^ masks[None, :]  # (Q, M)
            self._probe_table(table, probe_keys, query_parts, row_parts)
        if not row_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, probes_per_query
        query_of = np.concatenate(query_parts)
        row_of = np.concatenate(row_parts)
        # One dedup over combined (query, row) pairs replaces the
        # per-query Python set union of the dict-based implementation.
        combined = query_of * np.int64(total_rows) + row_of
        unique_pairs = _sorted_unique(combined, queries.shape[0] * total_rows)
        return (unique_pairs // total_rows, unique_pairs % total_rows,
                probes_per_query)

    def _layer_pairs(self, queries: np.ndarray, active: np.ndarray,
                     layer: int) -> np.ndarray:
        """Sorted unique ``query * N + row`` pairs from probing ONLY the
        flip masks with popcount == ``layer`` for the active queries.

        The kNN ladder grows the substring radius by one per round; the
        radius-``s`` candidate set is the radius-``(s-1)`` set plus these
        layer-``s`` buckets, so each round probes just the new layer
        instead of re-enumerating (and re-verifying) everything below it.
        """
        total_rows = len(self._ids)
        sub_queries = queries[active]
        query_parts: list[np.ndarray] = []
        row_parts: list[np.ndarray] = []
        for table, (start, stop) in zip(self._tables, self._spans):
            width = stop - start
            if layer > width:
                continue
            layer_start = sum(comb(width, i) for i in range(layer))
            masks = flip_masks(width, layer)[layer_start:]
            base_keys = _substring_keys(sub_queries, start, stop)
            probe_keys = base_keys[:, None] ^ masks[None, :]
            self._probe_table(table, probe_keys, query_parts, row_parts)
        if not row_parts:
            return np.empty(0, dtype=np.int64)
        query_of = active[np.concatenate(query_parts)]
        row_of = np.concatenate(row_parts)
        combined = query_of * np.int64(total_rows) + row_of
        return _sorted_unique(combined, queries.shape[0] * total_rows)

    def _single_candidates(self, query: np.ndarray, substring_radius: int,
                           *, layer: "int | None" = None,
                           ) -> "tuple[np.ndarray, int]":
        """Q=1 specialization of :meth:`_batch_candidates`.

        Same probes and the same unique candidate set, but without the
        query-axis bookkeeping — the fixed cost of a one-query search is a
        handful of array ops instead of the full batch machinery.  With
        ``layer`` set, probes only the masks of that popcount (the kNN
        ladder's incremental round).
        """
        row_parts: list[np.ndarray] = []
        probes = 0
        for table, (start, stop) in zip(self._tables, self._spans):
            width = stop - start
            if layer is None:
                masks = flip_masks(width, substring_radius)
            else:
                if layer > width:
                    continue
                layer_start = sum(comb(width, i) for i in range(layer))
                masks = flip_masks(width, layer)[layer_start:]
            probes += masks.shape[0]
            base = _substring_keys(query[None, :], start, stop)
            # XOR unconditionally: a one-mask set is the zero mask only in
            # cumulative radius-0 mode; in layer mode it is the all-ones
            # mask of a full-width layer and must still flip the key.
            probe_keys = base ^ masks
            num_buckets = table.unique_keys.shape[0]
            if num_buckets:
                pos = np.searchsorted(table.unique_keys, probe_keys)
                pos_clipped = np.minimum(pos, num_buckets - 1)
                hits = np.flatnonzero(table.unique_keys[pos_clipped] == probe_keys)
                for bucket in pos_clipped[hits].tolist():
                    row_parts.append(table.rows[
                        table.indptr[bucket]:table.indptr[bucket + 1]])
            if table.overflow:
                for _, bucket_rows in table.overflow_lookup(probe_keys):
                    row_parts.append(np.asarray(bucket_rows, dtype=np.int64))
        if not row_parts:
            return np.empty(0, dtype=np.int64), probes
        return _sorted_unique(np.concatenate(row_parts), len(self._ids)), probes

    # ------------------------------------------------------------------ #
    # Radius search
    # ------------------------------------------------------------------ #

    def _check_words(self, words: int) -> None:
        if words * WORD_BITS < self.num_bits:
            raise ValidationError(
                f"num_bits={self.num_bits} incompatible with {words} words")

    def _validate_batch(self, codes: np.ndarray) -> np.ndarray:
        if self._codes is None or not self._ids or len(self) == 0:
            raise EmptyIndexError("search on an empty MultiIndexHashing index")
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        self._check_words(queries.shape[1])
        return queries

    def _radius_arrays(self, queries: np.ndarray, radius: int,
                       allowed: "np.ndarray | None" = None,
                       probe_budget: "int | None" = None,
                       ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, int, np.ndarray]":
        """Verified results of a radius batch, as raw arrays.

        Returns ``(rows, distances, bounds, probes, candidate_counts)``:
        rows/distances are sorted by (query, distance, row), and query
        ``q`` owns the slice ``[bounds[q], bounds[q + 1])``.  Shared by the
        radius and kNN paths so intermediate kNN rounds never pay for
        materializing result objects they are about to discard.  With
        ``allowed`` set, disallowed candidates are dropped before
        verification (candidate counts report post-mask candidates).
        """
        num_queries = queries.shape[0]
        archive_codes = self._materialize()
        substring_radius = radius // self.num_tables
        if self._probe_cost(substring_radius) > self._effective_budget(probe_budget):
            # Bucket enumeration would cost more than scanning the archive
            # (and its mask sets would be combinatorially large): verify
            # every row instead.  Same exact results, bounded cost.
            return self._linear_radius_arrays(queries, radius, archive_codes,
                                              allowed)
        empty = np.empty(0, dtype=np.int64)
        if num_queries == 1:
            with tracing.span("mih.candidates",
                              substring_radius=substring_radius) as cand_span:
                row_of, probes = self._single_candidates(
                    queries[0], substring_radius)
                if allowed is not None and row_of.shape[0]:
                    row_of = row_of[_allowed_keep(row_of, allowed)]
                cand_span.annotate(buckets_probed=probes,
                                   candidates=int(row_of.shape[0]))
                cand_span.add_cost(buckets_probed=probes,
                                   candidates_deduped=int(row_of.shape[0]))
            candidate_counts = np.array([row_of.shape[0]], dtype=np.int64)
            if row_of.shape[0]:
                with tracing.span("mih.verify",
                                  candidates=int(row_of.shape[0])) as verify_span:
                    verify_span.add_cost(
                        candidates_verified=int(row_of.shape[0]))
                    distances = np.bitwise_count(
                        archive_codes[row_of] ^ queries[0]).sum(axis=1).astype(np.int64)
                    within = distances <= radius
                    rows_kept = row_of[within]
                    distances_kept = distances[within]
                    # row_of is ascending (np.unique), so a stable sort by
                    # distance yields the canonical (distance, row) order.
                    order = np.argsort(distances_kept, kind="stable")
                    rows_sorted = rows_kept[order]
                    distances_sorted = distances_kept[order]
            else:
                rows_sorted, distances_sorted = empty, empty
            bounds = np.array([0, rows_sorted.shape[0]], dtype=np.int64)
            return rows_sorted, distances_sorted, bounds, probes, candidate_counts
        with tracing.span("mih.candidates",
                          substring_radius=substring_radius) as cand_span:
            query_of, row_of, probes = self._batch_candidates(
                queries, substring_radius)
            if allowed is not None and row_of.shape[0]:
                keep = _allowed_keep(row_of, allowed)
                query_of = query_of[keep]
                row_of = row_of[keep]
            cand_span.annotate(buckets_probed=probes,
                               candidates=int(row_of.shape[0]))
            cand_span.add_cost(buckets_probed=probes,
                               candidates_deduped=int(row_of.shape[0]))
        if not row_of.shape[0]:
            return (empty, empty, np.zeros(num_queries + 1, dtype=np.int64),
                    probes, np.zeros(num_queries, dtype=np.int64))
        candidate_counts = np.bincount(query_of, minlength=num_queries)
        with tracing.span("mih.verify",
                          candidates=int(row_of.shape[0])) as verify_span:
            verify_span.add_cost(candidates_verified=int(row_of.shape[0]))
            distances = np.bitwise_count(
                archive_codes[row_of] ^ queries[query_of]).sum(axis=1).astype(np.int64)
            within = distances <= radius
            query_kept = query_of[within]
            rows_kept = row_of[within]
            distances_kept = distances[within]
            # Canonical per-query order: (distance, insertion row) — matches
            # LinearScanIndex so kNN results are identical across indexes.
            order = np.lexsort((rows_kept, distances_kept, query_kept))
            bounds = np.searchsorted(query_kept[order],
                                     np.arange(num_queries + 1)).astype(np.int64)
        return (rows_kept[order], distances_kept[order], bounds, probes,
                candidate_counts)

    def _linear_radius_arrays(self, queries: np.ndarray, radius: int,
                              archive_codes: np.ndarray,
                              allowed: "np.ndarray | None" = None,
                              ) -> "tuple[np.ndarray, np.ndarray, np.ndarray, int, np.ndarray]":
        """Exact-scan fallback with the same return shape as
        :meth:`_radius_arrays` (probes reported as the archive size)."""
        num_queries = queries.shape[0]
        total_rows = len(self._ids)
        with tracing.span("mih.exact_fallback", rows=total_rows,
                          queries=num_queries) as fallback_span:
            row_chunks: list[np.ndarray] = []
            distance_chunks: list[np.ndarray] = []
            bounds = np.zeros(num_queries + 1, dtype=np.int64)
            if allowed is not None:
                # Gather the allowed subset once: the fallback scan then
                # costs O(|allowed|) per query instead of O(N).
                rows0 = np.flatnonzero(allowed[:archive_codes.shape[0]])
                archive_codes = archive_codes[rows0]
            fallback_span.add_cost(
                fallback_rows=int(archive_codes.shape[0]) * num_queries)
            for query_index in range(num_queries):
                distances = np.bitwise_count(
                    archive_codes ^ queries[query_index]).sum(axis=1).astype(np.int64)
                within = np.flatnonzero(distances <= radius)
                rows = within if allowed is None else rows0[within]
                kept = distances[within]
                order = np.argsort(kept, kind="stable")  # rows ascending -> canonical
                row_chunks.append(rows[order])
                distance_chunks.append(kept[order])
                bounds[query_index + 1] = bounds[query_index] + rows.shape[0]
            return (np.concatenate(row_chunks) if row_chunks
                    else np.empty(0, dtype=np.int64),
                    np.concatenate(distance_chunks) if distance_chunks
                    else np.empty(0, dtype=np.int64),
                    bounds, total_rows,
                    np.full(num_queries, total_rows, dtype=np.int64))

    def _linear_knn(self, query: np.ndarray, k: int, limit: int,
                    archive_codes: np.ndarray,
                    allowed: "np.ndarray | None" = None) -> list[SearchResult]:
        """Exact-scan kNN fallback; byte-identical to a finished ladder.

        With an allowed mask, only the allowed subset is gathered and
        scanned (pre-filter pushdown)."""
        with tracing.span("mih.exact_fallback", rows=len(self._ids),
                          k=k) as fallback_span:
            if allowed is None:
                rows0 = None
            else:
                rows0 = np.flatnonzero(allowed[:archive_codes.shape[0]])
                archive_codes = archive_codes[rows0]
            fallback_span.add_cost(fallback_rows=int(archive_codes.shape[0]))
            distances = np.bitwise_count(
                archive_codes ^ query).sum(axis=1).astype(np.int64)
            within = np.flatnonzero(distances <= limit)
            rows = within if rows0 is None else rows0[within]
            kept = distances[within]
            order = np.argsort(kept, kind="stable")[:k]
            ids = self._ids
            return [SearchResult(ids[row], distance)
                    for row, distance in zip(rows[order].tolist(),
                                             kept[order].tolist())]

    def _materialize_results(self, rows: np.ndarray, distances: np.ndarray,
                             lo: int, hi: int) -> list[SearchResult]:
        ids = self._ids
        return [SearchResult(ids[row], distance)
                for row, distance in zip(rows[lo:hi].tolist(),
                                         distances[lo:hi].tolist())]

    def search_radius_batch(self, codes: np.ndarray, radius: int,
                            *, with_stats: bool = False,
                            allowed: "np.ndarray | None" = None,
                            probe_budget: "int | None" = None,
                            ) -> ("list[list[SearchResult]] | tuple[list[list[SearchResult]], "
                                  "list[RadiusSearchStats]]"):
        """Radius search for a ``(Q, W)`` batch of packed queries.

        One vectorized probe/gather/verify pass covers the whole batch;
        each query's results are exact and ordered by
        ``(distance, insertion row)``, byte-identical to running
        :meth:`search_radius` per query.  ``allowed`` (one mask shared by
        the batch) restricts verification to the allowed rows.
        """
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        queries = self._validate_batch(codes)
        if allowed is not None:
            allowed = as_allowed_mask(allowed)
        allowed = combine_allowed_masks(self._alive_allowed(), allowed)
        num_queries = queries.shape[0]
        with tracing.span("mih.radius", radius=radius,
                          queries=num_queries) as radius_span:
            rows, distances, bounds, probes, candidate_counts = \
                self._radius_arrays(queries, radius, allowed, probe_budget)
            radius_span.annotate(buckets_probed=probes,
                                 candidates=int(candidate_counts.sum()))
        out = [self._materialize_results(rows, distances, int(bounds[query]),
                                         int(bounds[query + 1]))
               for query in range(num_queries)]
        if with_stats:
            stats_list = [
                RadiusSearchStats(radius=radius, buckets_probed=probes,
                                  candidates=int(candidate_counts[query]),
                                  results=len(out[query]))
                for query in range(num_queries)]
            return out, stats_list
        return out

    def search_radius(self, code: np.ndarray, radius: int,
                      *, with_stats: bool = False,
                      allowed: "np.ndarray | None" = None,
                      probe_budget: "int | None" = None,
                      ) -> "list[SearchResult] | tuple[list[SearchResult], RadiusSearchStats]":
        """All (allowed) items within Hamming ``radius``, nearest first."""
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(
                f"search_radius expects a single packed code, got {code.shape}")
        batch = self.search_radius_batch(code[None, :], radius,
                                         with_stats=with_stats,
                                         allowed=allowed,
                                         probe_budget=probe_budget)
        if with_stats:
            results, stats_list = batch
            return results[0], stats_list[0]
        return batch[0]

    # ------------------------------------------------------------------ #
    # kNN search
    # ------------------------------------------------------------------ #

    def search_knn_batch(self, codes: np.ndarray, k: int,
                         *, max_radius: "int | None" = None,
                         allowed: "np.ndarray | None" = None,
                         probe_budget: "int | None" = None,
                         ) -> "list[list[SearchResult]]":
        """The ``k`` nearest items for a ``(Q, W)`` batch of queries.

        All queries follow the same radius schedule (grow by
        ``num_tables`` per step), executed incrementally: each round
        probes only the new flip-mask layer and verifies only candidates
        not seen in earlier rounds; queries that have gathered ``k``
        verified results drop out of later, more expensive rounds.
        Results are byte-identical to calling :meth:`search_knn` per
        query.  ``allowed`` (one mask shared by the batch) restricts the
        ladder to allowed rows: disallowed candidates are dropped before
        verification and never count toward ``k``.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        queries = self._validate_batch(codes)
        if allowed is not None:
            allowed = as_allowed_mask(allowed)
        allowed = combine_allowed_masks(self._alive_allowed(), allowed)
        archive_codes = self._materialize()
        limit = max_radius if max_radius is not None else self.num_bits
        num_queries = queries.shape[0]
        if num_queries == 1:
            return [self._knn_single(queries[0], k, limit, archive_codes,
                                     allowed, probe_budget)]
        total_rows = np.int64(len(self._ids))
        out: "list[list[SearchResult] | None]" = [None] * num_queries
        active = np.arange(num_queries, dtype=np.int64)
        # Accumulated verified candidates across rounds, sorted by
        # (query, row) pair key; each pair is probed and verified at most
        # once over the whole ladder.
        acc_pairs = np.empty(0, dtype=np.int64)
        acc_distances = np.empty(0, dtype=np.int64)
        radius = 0
        probed_layer = -1
        with tracing.span("mih.knn", queries=num_queries, k=k) as knn_span:
            while active.shape[0]:
                substring_radius = radius // self.num_tables
                if self._probe_cost(substring_radius) > self._effective_budget(probe_budget):
                    # The ladder degenerated (far queries / k beyond the
                    # reachable neighborhood): finishing by exact scan gives
                    # identical results at bounded cost instead of probing a
                    # combinatorial number of buckets.
                    knn_span.annotate(fallback=True)
                    for query in active.tolist():
                        out[query] = self._linear_knn(queries[query], k, limit,
                                                      archive_codes, allowed)
                    break
                while probed_layer < substring_radius:
                    probed_layer += 1
                    with tracing.span("mih.layer", layer=probed_layer,
                                      active=int(active.shape[0])) as layer_span:
                        fresh = self._layer_pairs(queries, active, probed_layer)
                        if allowed is not None and fresh.shape[0]:
                            fresh = fresh[_allowed_keep(fresh % total_rows,
                                                        allowed)]
                        if acc_pairs.shape[0] and fresh.shape[0]:
                            # A layer-s bucket can hold pairs already seen in
                            # a lower layer of another table; verify each
                            # pair once.
                            pos = np.minimum(np.searchsorted(acc_pairs, fresh),
                                             acc_pairs.shape[0] - 1)
                            fresh = fresh[acc_pairs[pos] != fresh]
                        layer_span.annotate(fresh=int(fresh.shape[0]))
                        if layer_span is not tracing.NULL_SPAN:
                            layer_buckets = (
                                self._probe_cost(probed_layer)
                                - self._probe_cost(probed_layer - 1)
                            ) * int(active.shape[0])
                            layer_span.add_cost(
                                ladder_layers=1,
                                buckets_probed=layer_buckets,
                                candidates_verified=int(fresh.shape[0]))
                        if fresh.shape[0]:
                            rows = fresh % total_rows
                            query_of = fresh // total_rows
                            distances = np.bitwise_count(
                                archive_codes[rows] ^ queries[query_of]
                            ).sum(axis=1).astype(np.int64)
                            insert_at = np.searchsorted(acc_pairs, fresh)
                            acc_pairs = np.insert(acc_pairs, insert_at, fresh)
                            acc_distances = np.insert(acc_distances, insert_at,
                                                      distances)
                if acc_pairs.shape[0]:
                    within = acc_distances <= radius
                    counts = np.bincount(acc_pairs[within] // total_rows,
                                         minlength=num_queries)
                else:
                    counts = np.zeros(num_queries, dtype=np.int64)
                still_active = []
                for query in active.tolist():
                    if counts[query] >= k or radius >= limit:
                        out[query] = self._materialize_knn(
                            acc_pairs, acc_distances, query, radius, k)
                    else:
                        still_active.append(query)
                active = np.asarray(still_active, dtype=np.int64)
                radius = min(limit, radius + self.num_tables)
            knn_span.annotate(ladder_radius=radius,
                              layers_probed=probed_layer + 1)
        return out  # type: ignore[return-value]

    def _knn_single(self, query: np.ndarray, k: int, limit: int,
                    archive_codes: np.ndarray,
                    allowed: "np.ndarray | None" = None,
                    probe_budget: "int | None" = None) -> list[SearchResult]:
        """The incremental kNN ladder for one query (no pair keys)."""
        acc_rows = np.empty(0, dtype=np.int64)
        acc_distances = np.empty(0, dtype=np.int64)
        radius = 0
        probed_layer = -1
        with tracing.span("mih.knn", queries=1, k=k) as knn_span:
            while True:
                substring_radius = radius // self.num_tables
                if self._probe_cost(substring_radius) > self._effective_budget(probe_budget):
                    knn_span.annotate(fallback=True, ladder_radius=radius,
                                      layers_probed=probed_layer + 1)
                    return self._linear_knn(query, k, limit, archive_codes,
                                            allowed)
                while probed_layer < substring_radius:
                    probed_layer += 1
                    with tracing.span("mih.layer", layer=probed_layer,
                                      active=1) as layer_span:
                        fresh, layer_probes = self._single_candidates(
                            query, substring_radius, layer=probed_layer)
                        if allowed is not None and fresh.shape[0]:
                            fresh = fresh[_allowed_keep(fresh, allowed)]
                        if acc_rows.shape[0] and fresh.shape[0]:
                            pos = np.minimum(np.searchsorted(acc_rows, fresh),
                                             acc_rows.shape[0] - 1)
                            fresh = fresh[acc_rows[pos] != fresh]
                        layer_span.annotate(fresh=int(fresh.shape[0]))
                        layer_span.add_cost(
                            ladder_layers=1, buckets_probed=layer_probes,
                            candidates_verified=int(fresh.shape[0]))
                        if fresh.shape[0]:
                            distances = np.bitwise_count(
                                archive_codes[fresh] ^ query).sum(axis=1).astype(np.int64)
                            insert_at = np.searchsorted(acc_rows, fresh)
                            acc_rows = np.insert(acc_rows, insert_at, fresh)
                            acc_distances = np.insert(acc_distances, insert_at,
                                                      distances)
                within = acc_distances <= radius
                if int(within.sum()) >= k or radius >= limit:
                    knn_span.annotate(ladder_radius=radius,
                                      layers_probed=probed_layer + 1)
                    rows = acc_rows[within]
                    distances = acc_distances[within]
                    order = np.argsort(distances, kind="stable")[:k]
                    ids = self._ids
                    return [SearchResult(ids[row], distance)
                            for row, distance in zip(rows[order].tolist(),
                                                     distances[order].tolist())]
                radius = min(limit, radius + self.num_tables)

    def _materialize_knn(self, acc_pairs: np.ndarray,
                         acc_distances: np.ndarray, query: int,
                         radius: int, k: int) -> list[SearchResult]:
        """Canonical top-k of one query from the accumulated candidates."""
        total_rows = np.int64(len(self._ids))
        lo = int(np.searchsorted(acc_pairs, query * total_rows))
        hi = int(np.searchsorted(acc_pairs, (query + 1) * total_rows))
        rows = acc_pairs[lo:hi] % total_rows  # ascending insertion rows
        distances = acc_distances[lo:hi]
        keep = distances <= radius
        rows = rows[keep]
        distances = distances[keep]
        # Rows are ascending, so a stable sort by distance yields the
        # canonical (distance, insertion row) order.
        order = np.argsort(distances, kind="stable")[:k]
        ids = self._ids
        return [SearchResult(ids[row], distance)
                for row, distance in zip(rows[order].tolist(),
                                         distances[order].tolist())]

    def search_knn(self, code: np.ndarray, k: int,
                   *, max_radius: "int | None" = None,
                   allowed: "np.ndarray | None" = None,
                   probe_budget: "int | None" = None) -> list[SearchResult]:
        """The ``k`` nearest (allowed) items, growing the radius in
        substring steps.

        Radius grows by ``num_tables`` per step (smaller growth cannot
        enlarge the substring radius), so each step reuses strictly more
        buckets; stops when ``k`` verified results exist or ``max_radius``
        is reached.
        """
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(
                f"search_knn expects a single packed code, got {code.shape}")
        return self.search_knn_batch(code[None, :], k, max_radius=max_radius,
                                     allowed=allowed,
                                     probe_budget=probe_budget)[0]
