"""Binary-code indexes: the retrieval layer behind EarthQube's CBIR.

The paper stores hash codes "as keys in a hash table, thereby enabling
real-time nearest neighbor search"; queries "retrieve all images in the hash
buckets that are within a small hamming radius of the query image"
(Sections 1 and 2.2).  This package implements that mechanism plus the
infrastructure to benchmark it:

* :mod:`repro.index.codes` — bit packing into uint64 words,
* :mod:`repro.index.hamming` — popcount-based distance kernels,
* :mod:`repro.index.hashtable` — exact bucket table with Hamming-radius
  enumeration (the paper's structure),
* :mod:`repro.index.mih` — Multi-Index Hashing (Norouzi & Fleet) for larger
  radii on long codes,
* :mod:`repro.index.linear_scan` — packed brute-force scan (baseline).
"""

from .codes import pack_bits, unpack_bits, codes_allclose
from .hamming import (
    hamming_distance,
    hamming_distances_to_query,
    pairwise_hamming,
    top_k_smallest,
)
from .hashtable import HashTableIndex
from .linear_scan import LinearScanIndex
from .mih import MultiIndexHashing
from .results import SearchResult

__all__ = [
    "pack_bits",
    "unpack_bits",
    "codes_allclose",
    "hamming_distance",
    "hamming_distances_to_query",
    "pairwise_hamming",
    "top_k_smallest",
    "HashTableIndex",
    "MultiIndexHashing",
    "LinearScanIndex",
    "SearchResult",
]
