"""The paper's hash-table index with Hamming-radius bucket lookups.

"We generate a hash table that stores all images with the same hash code in
the same hash bucket.  Then, we perform image retrieval through hash
lookups, i.e., we retrieve all images in the hash buckets that are within a
small hamming radius of the query image" (paper, Section 2.2).

Codes are stored under arbitrary-precision integer keys; a radius-``r``
query enumerates every key within Hamming distance ``r`` of the query by
XOR-ing single-bit masks (``sum_{i<=r} C(K, i)`` probes) and probes each
bucket.  That is exact and fast for the paper's "small radius" regime
(r <= 2 on 128 bits); for larger radii
:class:`repro.index.mih.MultiIndexHashing` is the right tool, which
experiment E8 demonstrates.
"""

from __future__ import annotations

from itertools import combinations
from math import comb as _binomial
from typing import Hashable, Iterable, Iterator

import numpy as np

from ..errors import EmptyIndexError, SearchError, ValidationError
from .hamming import hamming_distance
from .results import RadiusSearchStats, SearchResult

_WORD_BYTES = 8


def _code_to_int(code: np.ndarray) -> int:
    """Packed uint64 words -> one arbitrary-precision integer key."""
    words = np.ascontiguousarray(code, dtype=np.uint64)
    if words.ndim != 1:
        raise ValidationError(f"expected a single packed code, got shape {words.shape}")
    return int.from_bytes(words.tobytes(), "little")


def _int_to_code(key: int, num_words: int) -> np.ndarray:
    """Inverse of :func:`_code_to_int`."""
    return np.frombuffer(key.to_bytes(num_words * _WORD_BYTES, "little"),
                         dtype=np.uint64).copy()


class HashTableIndex:
    """Exact bucket table: integer code key -> list of item ids."""

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        self.num_bits = num_bits
        self.num_words = -(-num_bits // 64)
        self._buckets: dict[int, list[Hashable]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def num_buckets(self) -> int:
        """Number of distinct codes present (bucket count)."""
        return len(self._buckets)

    def add(self, item_id: Hashable, code: np.ndarray) -> None:
        """Insert one item under its packed code."""
        self._buckets.setdefault(_code_to_int(code), []).append(item_id)
        self._count += 1

    def add_many(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """Insert aligned ids and packed code rows."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        for item_id, code in zip(ids, codes):
            self.add(item_id, code)

    def bucket_of(self, code: np.ndarray) -> list[Hashable]:
        """Items stored under exactly this code (radius 0)."""
        return list(self._buckets.get(_code_to_int(code), ()))

    # ------------------------------------------------------------------ #
    # Radius search
    # ------------------------------------------------------------------ #

    def _enumerate_neighbor_keys(self, base: int, radius: int) -> Iterator[tuple[int, int]]:
        """Yield (key, distance) for every code within ``radius`` of the
        base key, nearest first.  Pure integer XOR — no array round-trips."""
        yield base, 0
        positions = range(self.num_bits)
        for distance in range(1, radius + 1):
            for flip in combinations(positions, distance):
                key = base
                for bit in flip:
                    key ^= 1 << bit
                yield key, distance

    def search_radius(self, code: np.ndarray, radius: int,
                      *, with_stats: bool = False,
                      ) -> "list[SearchResult] | tuple[list[SearchResult], RadiusSearchStats]":
        """All items within Hamming ``radius`` of ``code``, nearest first.

        Cost grows combinatorially with the radius; radii above 3 on long
        codes are rejected — use :class:`MultiIndexHashing` instead.
        """
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        if self._count == 0:
            raise EmptyIndexError("search on an empty HashTableIndex")
        if radius > 3 and self.num_bits > 32:
            raise SearchError(
                f"bucket enumeration at radius {radius} on {self.num_bits}-bit codes "
                f"is infeasible; use MultiIndexHashing")
        stats = RadiusSearchStats(radius=radius)
        results: list[SearchResult] = []
        buckets = self._buckets
        for key, distance in self._enumerate_neighbor_keys(_code_to_int(code), radius):
            stats.buckets_probed += 1
            bucket = buckets.get(key)
            if bucket:
                results.extend(SearchResult(item_id, distance) for item_id in bucket)
        stats.candidates = len(results)
        stats.results = len(results)
        # Enumeration yields radii in order, so results are already sorted
        # by distance; keep insertion order within equal distances.
        if with_stats:
            return results, stats
        return results

    def search_knn(self, code: np.ndarray, k: int,
                   *, max_radius: "int | None" = None,
                   max_probes: int = 100_000) -> list[SearchResult]:
        """The ``k`` nearest items by growing the probe radius.

        Grows the radius until at least ``k`` items are found (or
        ``max_radius`` is hit), then truncates.  Because enumeration visits
        radii in order, results are exact nearest neighbors within the
        explored radius.

        Bucket enumeration costs ``C(num_bits, r)`` probes at radius ``r``;
        when growing one more radius would exceed ``max_probes`` total
        probes before ``k`` items are found, the search raises
        :class:`SearchError` instead of stalling — sparse/uniform code sets
        should use :class:`~repro.index.mih.MultiIndexHashing` or a linear
        scan for kNN.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        if self._count == 0:
            raise EmptyIndexError("search on an empty HashTableIndex")
        limit = max_radius if max_radius is not None else self.num_bits
        collected: list[SearchResult] = []
        probes = 0
        next_radius_cost = 1
        for radius in range(limit + 1):
            probes += next_radius_cost
            if probes > max_probes:
                raise SearchError(
                    f"knn at radius {radius} needs {probes} bucket probes "
                    f"(> {max_probes}); use MultiIndexHashing or LinearScanIndex")
            collected = self.search_radius(code, radius)
            if len(collected) >= k:
                break
            next_radius_cost = _binomial(self.num_bits, radius + 1)
        return collected[:k]

    def stored_codes(self) -> np.ndarray:
        """All distinct packed codes in the table (for diagnostics)."""
        if not self._buckets:
            return np.empty((0, self.num_words), dtype=np.uint64)
        return np.stack([_int_to_code(key, self.num_words) for key in self._buckets])

    def verify_distance(self, code_a: np.ndarray, code_b: np.ndarray) -> int:
        """Exact distance helper (exposed for tests/benches)."""
        return hamming_distance(code_a, code_b)
