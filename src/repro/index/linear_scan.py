"""Packed-code linear scan: the brute-force baseline of experiment E6.

Computes the distance from the query to *every* stored code with the
popcount kernel, then selects.  O(N) per query but with a tiny constant —
this is what FAISS's ``IndexBinaryFlat`` does — so it is the honest baseline
for demonstrating when bucket lookups actually win.

Every search accepts an optional ``allowed`` row mask (filtered-similarity
pushdown): selection is restricted to allowed insertion rows with the same
(distance, row) order, byte-identical to ranking everything and dropping
disallowed rows afterwards.

Deletion uses the same machinery: :meth:`LinearScanIndex.remove` tombstones
a row, the alive mask AND-combines with any query filter, and
:meth:`LinearScanIndex.compact` physically drops the dead rows once they
pile up.  Because tombstoning preserves the relative order of surviving
rows, results are byte-identical to an index rebuilt from scratch on the
surviving corpus, before and after compaction.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from ..errors import EmptyIndexError, ValidationError
from ..obs import tracing
from .hamming import (
    TombstoneSet,
    allowed_row_indices,
    as_allowed_mask,
    combine_allowed_masks,
    hamming_distances_to_query,
    pairwise_hamming,
    top_k_smallest,
)
from .results import SearchResult

# Batch scans chunk the query axis so peak memory stays bounded at
# _BATCH_CHUNK_QUERIES * N words however large the batch gets.
_BATCH_CHUNK_QUERIES = 256


class LinearScanIndex:
    """Flat array of packed codes scanned per query."""

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        self.num_bits = num_bits
        self._codes: "np.ndarray | None" = None
        self._ids: list[Hashable] = []
        self._pending: list[np.ndarray] = []
        self._tombstones = TombstoneSet()
        self._row_of: "dict[Hashable, int] | None" = None

    def __len__(self) -> int:
        """Searchable (alive) items."""
        return len(self._ids) - len(self._tombstones)

    @property
    def dead_count(self) -> int:
        """Tombstoned rows awaiting compaction."""
        return len(self._tombstones)

    @property
    def dead_fraction(self) -> float:
        """Dead rows as a fraction of physical rows (0 when empty)."""
        return self._tombstones.fraction(len(self._ids))

    def build(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """(Re)build from aligned ids and (N, W) packed codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        self._codes = codes
        self._ids = ids
        self._pending = []
        self._tombstones.clear()
        self._row_of = None

    def add(self, item_id: Hashable, code: np.ndarray) -> None:
        """Append one item online; buffered codes fold in at the next scan."""
        code = np.asarray(code, dtype=np.uint64)
        if code.ndim != 1:
            raise ValidationError(f"add expects a single packed code, got {code.shape}")
        words = (self._codes.shape[1] if self._codes is not None
                 else -(-self.num_bits // 64))
        if code.shape[0] != words:
            raise ValidationError(
                f"packed code has {code.shape[0]} words, index stores {words}")
        if self._codes is None:
            self._codes = np.empty((0, code.shape[0]), dtype=np.uint64)
        if self._row_of is not None:
            self._row_of[item_id] = len(self._ids)
        self._ids.append(item_id)
        self._pending.append(code)

    # ------------------------------------------------------------------ #
    # Deletion lifecycle: tombstones + compaction
    # ------------------------------------------------------------------ #

    def remove(self, item_id: Hashable) -> None:
        """Tombstone one item: O(1), excluded from every later search.

        The row keeps its number (masks snapshotted by callers stay
        aligned) until :meth:`compact` physically drops dead rows.
        """
        if self._row_of is None:
            self._row_of = {item_id: row
                            for row, item_id in enumerate(self._ids)}
        row = self._row_of.pop(item_id, None)
        if row is None or row in self._tombstones:
            raise ValidationError(f"no indexed item {item_id!r} to remove")
        self._tombstones.mark(row)

    def compact_due(self) -> bool:
        """Default policy: dead rows exceed the standalone threshold."""
        return self._tombstones.due(len(self._ids))

    def compact(self) -> None:
        """Drop dead rows and renumber; results stay byte-identical.

        Surviving rows keep their relative order, so the canonical
        (distance, insertion row) tie-break is unchanged.  Callers holding
        row-aligned masks must refresh them after compaction.
        """
        if not len(self._tombstones):
            return
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        alive = np.flatnonzero(self._tombstones.alive_mask(len(self._ids)))
        self._codes = self._codes[alive]
        self._ids = [self._ids[int(row)] for row in alive]
        self._tombstones.clear()
        self._row_of = None

    def _effective_allowed(self, allowed: "np.ndarray | None",
                           ) -> "np.ndarray | None":
        return combine_allowed_masks(
            self._tombstones.alive_mask(len(self._ids)), allowed)

    def _require_built(self) -> np.ndarray:
        if self._codes is None or not self._ids or len(self) == 0:
            raise EmptyIndexError("search on an empty LinearScanIndex")
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        return self._codes

    def _allowed_rows(self, allowed: np.ndarray) -> np.ndarray:
        """The allowed insertion rows (pre-filter gather set)."""
        return allowed_row_indices(allowed, len(self._ids))

    def search_radius(self, code: np.ndarray, radius: int,
                      *, allowed: "np.ndarray | None" = None,
                      ) -> list[SearchResult]:
        """All (allowed) items within ``radius``, nearest first.

        With ``allowed`` set, only the allowed rows are gathered and
        scanned — the pre-filter pushdown: cost scales with the allowed
        subset, not the corpus.
        """
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        codes = self._require_built()
        query = np.asarray(code, dtype=np.uint64)
        allowed = self._effective_allowed(allowed)
        with tracing.span("linear.scan", rows=len(self._ids), queries=1,
                          radius=radius) as scan_span:
            if allowed is None:
                scan_span.add_cost(rows_scanned=len(self._ids))
                distances = hamming_distances_to_query(codes, query)
                within = np.flatnonzero(distances <= radius)
                order = np.lexsort((within, distances[within]))
                rows, kept = within[order], distances[within[order]]
            else:
                rows0 = self._allowed_rows(as_allowed_mask(allowed))
                scan_span.add_cost(rows_scanned=len(rows0))
                sub = hamming_distances_to_query(codes[rows0], query)
                inside = sub <= radius
                # rows0 ascending -> stable sort by distance is canonical.
                order = np.argsort(sub[inside], kind="stable")
                rows, kept = rows0[inside][order], sub[inside][order]
        return [SearchResult(self._ids[int(row)], int(distance))
                for row, distance in zip(rows.tolist(), kept.tolist())]

    def search_knn(self, code: np.ndarray, k: int,
                   *, allowed: "np.ndarray | None" = None) -> list[SearchResult]:
        """The exact ``k`` nearest (allowed) items."""
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        codes = self._require_built()
        query = np.asarray(code, dtype=np.uint64)
        allowed = self._effective_allowed(allowed)
        with tracing.span("linear.scan", rows=len(self._ids), queries=1,
                          k=k) as scan_span:
            if allowed is None:
                scan_span.add_cost(rows_scanned=len(self._ids))
                distances = hamming_distances_to_query(codes, query)
                rows = top_k_smallest(distances, k)
                return [SearchResult(self._ids[int(row)], int(distances[row]))
                        for row in rows]
            rows0 = self._allowed_rows(as_allowed_mask(allowed))
            scan_span.add_cost(rows_scanned=len(rows0))
            sub = hamming_distances_to_query(codes[rows0], query)
            selection = top_k_smallest(sub, k)  # index tie-break == row tie-break
            return [SearchResult(self._ids[int(rows0[s])], int(sub[s]))
                    for s in selection.tolist()]

    # ------------------------------------------------------------------ #
    # Batch queries: one distance-matrix scan covers the whole batch
    # ------------------------------------------------------------------ #

    def _batch_distances(self, codes: np.ndarray,
                         rows: "np.ndarray | None" = None) -> np.ndarray:
        """``(Q, N)`` (or ``(Q, |rows|)``) distances of a query batch."""
        archive = self._require_built()
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        if rows is not None:
            archive = archive[rows]
        return pairwise_hamming(queries, archive,
                                chunk_rows=_BATCH_CHUNK_QUERIES)

    def search_knn_batch(self, codes: np.ndarray, k: int,
                         *, allowed: "np.ndarray | None" = None,
                         ) -> "list[list[SearchResult]]":
        """Exact kNN for a ``(Q, W)`` batch of packed queries.

        Byte-identical to calling :meth:`search_knn` per query, but the
        XOR/popcount work runs as one vectorized distance-matrix scan.
        ``allowed`` (one mask shared by the whole batch) restricts every
        query to the allowed rows, gathered once for the batch.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        allowed = self._effective_allowed(allowed)
        rows0 = (None if allowed is None
                 else self._allowed_rows(as_allowed_mask(allowed)))
        with tracing.span("linear.scan", rows=len(self._ids),
                          k=k) as scan_span:
            distances = self._batch_distances(codes, rows0)
            scan_span.annotate(queries=int(distances.shape[0]))
            scan_span.add_cost(
                rows_scanned=int(distances.shape[0]) * int(distances.shape[1]))
        out: "list[list[SearchResult]]" = []
        for row_distances in distances:
            selection = top_k_smallest(row_distances, k)
            if rows0 is None:
                out.append([SearchResult(self._ids[int(s)], int(row_distances[s]))
                            for s in selection.tolist()])
            else:
                out.append([SearchResult(self._ids[int(rows0[s])],
                                         int(row_distances[s]))
                            for s in selection.tolist()])
        return out

    def search_radius_batch(self, codes: np.ndarray, radius: int,
                            *, allowed: "np.ndarray | None" = None,
                            ) -> "list[list[SearchResult]]":
        """Radius search for a ``(Q, W)`` batch of packed queries."""
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        allowed = self._effective_allowed(allowed)
        rows0 = (None if allowed is None
                 else self._allowed_rows(as_allowed_mask(allowed)))
        with tracing.span("linear.scan", rows=len(self._ids),
                          radius=radius) as scan_span:
            distances = self._batch_distances(codes, rows0)
            scan_span.annotate(queries=int(distances.shape[0]))
            scan_span.add_cost(
                rows_scanned=int(distances.shape[0]) * int(distances.shape[1]))
        out: "list[list[SearchResult]]" = []
        for row_distances in distances:
            inside = np.flatnonzero(row_distances <= radius)
            order = np.argsort(row_distances[inside], kind="stable")
            selection = inside[order]
            if rows0 is None:
                out.append([SearchResult(self._ids[int(s)], int(row_distances[s]))
                            for s in selection.tolist()])
            else:
                out.append([SearchResult(self._ids[int(rows0[s])],
                                         int(row_distances[s]))
                            for s in selection.tolist()])
        return out
