"""Packed-code linear scan: the brute-force baseline of experiment E6.

Computes the distance from the query to *every* stored code with the
popcount kernel, then selects.  O(N) per query but with a tiny constant —
this is what FAISS's ``IndexBinaryFlat`` does — so it is the honest baseline
for demonstrating when bucket lookups actually win.
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from ..errors import EmptyIndexError, ValidationError
from .hamming import hamming_distances_to_query, pairwise_hamming, top_k_smallest
from .results import SearchResult

# Batch scans chunk the query axis so peak memory stays bounded at
# _BATCH_CHUNK_QUERIES * N words however large the batch gets.
_BATCH_CHUNK_QUERIES = 256


class LinearScanIndex:
    """Flat array of packed codes scanned per query."""

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        self.num_bits = num_bits
        self._codes: "np.ndarray | None" = None
        self._ids: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._ids)

    def build(self, item_ids: Iterable[Hashable], codes: np.ndarray) -> None:
        """(Re)build from aligned ids and (N, W) packed codes."""
        codes = np.asarray(codes, dtype=np.uint64)
        ids = list(item_ids)
        if codes.ndim != 2 or len(ids) != codes.shape[0]:
            raise ValidationError(
                f"need (N, W) codes aligned with N ids, got {codes.shape} and {len(ids)} ids")
        self._codes = codes
        self._ids = ids

    def _require_built(self) -> np.ndarray:
        if self._codes is None or not self._ids:
            raise EmptyIndexError("search on an empty LinearScanIndex")
        return self._codes

    def search_radius(self, code: np.ndarray, radius: int) -> list[SearchResult]:
        """All items within ``radius``, nearest first."""
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        codes = self._require_built()
        distances = hamming_distances_to_query(codes, np.asarray(code, dtype=np.uint64))
        within = np.flatnonzero(distances <= radius)
        # Canonical (distance, insertion row) order, same as search_knn.
        order = np.lexsort((within, distances[within]))
        return [SearchResult(self._ids[int(row)], int(distances[row]))
                for row in within[order]]

    def search_knn(self, code: np.ndarray, k: int) -> list[SearchResult]:
        """The exact ``k`` nearest items."""
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        codes = self._require_built()
        distances = hamming_distances_to_query(codes, np.asarray(code, dtype=np.uint64))
        rows = top_k_smallest(distances, k)
        return [SearchResult(self._ids[int(row)], int(distances[row])) for row in rows]

    # ------------------------------------------------------------------ #
    # Batch queries: one distance-matrix scan covers the whole batch
    # ------------------------------------------------------------------ #

    def _batch_distances(self, codes: np.ndarray) -> np.ndarray:
        """``(Q, N)`` distances of a query batch to every stored code."""
        archive = self._require_built()
        queries = np.asarray(codes, dtype=np.uint64)
        if queries.ndim != 2:
            raise ValidationError(
                f"batch search expects (Q, W) packed codes, got {queries.shape}")
        return pairwise_hamming(queries, archive,
                                chunk_rows=_BATCH_CHUNK_QUERIES)

    def search_knn_batch(self, codes: np.ndarray, k: int,
                         ) -> "list[list[SearchResult]]":
        """Exact kNN for a ``(Q, W)`` batch of packed queries.

        Byte-identical to calling :meth:`search_knn` per query, but the
        XOR/popcount work runs as one vectorized distance-matrix scan.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        distances = self._batch_distances(codes)
        out: "list[list[SearchResult]]" = []
        for row_distances in distances:
            rows = top_k_smallest(row_distances, k)
            out.append([SearchResult(self._ids[int(row)], int(row_distances[row]))
                        for row in rows])
        return out

    def search_radius_batch(self, codes: np.ndarray, radius: int,
                            ) -> "list[list[SearchResult]]":
        """Radius search for a ``(Q, W)`` batch of packed queries."""
        if radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        distances = self._batch_distances(codes)
        out: "list[list[SearchResult]]" = []
        for row_distances in distances:
            within = np.flatnonzero(row_distances <= radius)
            order = np.lexsort((within, row_distances[within]))
            out.append([SearchResult(self._ids[int(row)], int(row_distances[row]))
                        for row in within[order]])
        return out
