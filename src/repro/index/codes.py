"""Bit packing: ``{0,1}`` bit matrices <-> uint64 word matrices.

Hamming arithmetic runs on packed codes (`np.bitwise_count` over XORed
words).  Packing is little-endian within bytes and zero-pads the last word,
so any bit count that is a multiple of 8 round-trips exactly; padding bits
are zero in *both* operands of any XOR, hence never contribute to distances.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, ValidationError

WORD_BITS = 64
_WORD_BYTES = WORD_BITS // 8


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(N, K)`` or ``(K,)`` bit matrix into uint64 words.

    Returns ``(N, ceil(K/64))`` (or ``(ceil(K/64),)`` for 1D input).
    ``K`` must be a multiple of 8 (guaranteed by
    :class:`repro.config.MiLaNConfig`).
    """
    bits = np.asarray(bits)
    squeeze = bits.ndim == 1
    if squeeze:
        bits = bits[None, :]
    if bits.ndim != 2:
        raise ShapeError(f"bits must be 1D or 2D, got shape {bits.shape}")
    num_bits = bits.shape[1]
    if num_bits == 0 or num_bits % 8 != 0:
        raise ValidationError(f"bit count must be a positive multiple of 8, got {num_bits}")
    if not np.isin(bits, (0, 1)).all():
        raise ValidationError("bits must contain only 0 and 1")
    packed_bytes = np.packbits(bits.astype(np.uint8), axis=1, bitorder="little")
    pad = (-packed_bytes.shape[1]) % _WORD_BYTES
    if pad:
        packed_bytes = np.pad(packed_bytes, ((0, 0), (0, pad)))
    words = packed_bytes.view(np.uint64)
    # Force little-endian interpretation for cross-platform determinism.
    if words.dtype.byteorder == ">":
        words = words.byteswap().view(words.dtype.newbyteorder("<"))
    return words[0] if squeeze else words


def unpack_bits(words: np.ndarray, num_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: uint64 words -> ``(N, num_bits)`` bits."""
    words = np.asarray(words, dtype=np.uint64)
    squeeze = words.ndim == 1
    if squeeze:
        words = words[None, :]
    if words.ndim != 2:
        raise ShapeError(f"words must be 1D or 2D, got shape {words.shape}")
    if num_bits <= 0 or num_bits > words.shape[1] * WORD_BITS:
        raise ValidationError(
            f"num_bits={num_bits} incompatible with {words.shape[1]} words")
    as_bytes = words.view(np.uint8).reshape(words.shape[0], -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :num_bits]
    return bits[0] if squeeze else bits


def code_to_key(words: np.ndarray) -> bytes:
    """A hashable dict key for one packed code (used by bucket tables)."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if words.ndim != 1:
        raise ShapeError(f"expected a single packed code, got shape {words.shape}")
    return words.tobytes()


def key_to_code(key: bytes) -> np.ndarray:
    """Inverse of :func:`code_to_key`."""
    if len(key) % _WORD_BYTES != 0:
        raise ValidationError(f"key length {len(key)} is not a multiple of {_WORD_BYTES}")
    return np.frombuffer(key, dtype=np.uint64).copy()


def codes_allclose(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact equality of two packed code arrays (test helper)."""
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    return a.shape == b.shape and bool((a == b).all())


def storage_bytes(num_items: int, num_bits: int) -> int:
    """Bytes needed to store ``num_items`` packed codes (E7 accounting)."""
    if num_items < 0 or num_bits <= 0:
        raise ValidationError("num_items must be >= 0 and num_bits > 0")
    words_per_item = -(-num_bits // WORD_BITS)  # ceil division
    return num_items * words_per_item * _WORD_BYTES
