"""Hamming-distance kernels over packed uint64 codes.

All kernels XOR packed words and count set bits with ``np.bitwise_count``
(hardware popcount under the hood), so a scan over N codes of K bits costs
``N * K/64`` word operations — the fast baseline the hash table competes
against in experiment E6.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def _as_words(codes: np.ndarray, name: str) -> np.ndarray:
    codes = np.asarray(codes, dtype=np.uint64)
    if codes.ndim not in (1, 2):
        raise ShapeError(f"{name} must be 1D or 2D packed words, got shape {codes.shape}")
    return codes


def hamming_distance(code_a: np.ndarray, code_b: np.ndarray) -> int:
    """Distance between two single packed codes."""
    a = _as_words(code_a, "code_a")
    b = _as_words(code_b, "code_b")
    if a.shape != b.shape or a.ndim != 1:
        raise ShapeError(f"expected two equal-length 1D codes, got {a.shape} and {b.shape}")
    return int(np.bitwise_count(a ^ b).sum())


def hamming_distances_to_query(codes: np.ndarray, query: np.ndarray) -> np.ndarray:
    """``(N,)`` distances from every row of ``codes`` to ``query``."""
    codes = _as_words(codes, "codes")
    query = _as_words(query, "query")
    if codes.ndim != 2 or query.ndim != 1 or codes.shape[1] != query.shape[0]:
        raise ShapeError(
            f"expected (N, W) codes and (W,) query, got {codes.shape} and {query.shape}")
    return np.bitwise_count(codes ^ query[None, :]).sum(axis=1).astype(np.int64)


def pairwise_hamming(codes_a: np.ndarray, codes_b: "np.ndarray | None" = None,
                     *, chunk_rows: "int | None" = None) -> np.ndarray:
    """``(Na, Nb)`` distance matrix between two packed code sets.

    With one argument, the symmetric self-distance matrix.  Memory is
    ``Na * Nb * W`` words during the XOR.  For large code sets pass
    ``chunk_rows``: rows of ``codes_a`` are processed in blocks of that
    size, bounding peak memory at ``chunk_rows * Nb * W`` words while
    producing the exact same matrix.
    """
    a = _as_words(codes_a, "codes_a")
    b = a if codes_b is None else _as_words(codes_b, "codes_b")
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ShapeError(f"expected (Na, W) and (Nb, W), got {a.shape} and {b.shape}")
    if chunk_rows is not None and chunk_rows <= 0:
        raise ShapeError(f"chunk_rows must be positive, got {chunk_rows}")
    if chunk_rows is None or chunk_rows >= a.shape[0]:
        xor = a[:, None, :] ^ b[None, :, :]
        return np.bitwise_count(xor).sum(axis=2).astype(np.int64)
    out = np.empty((a.shape[0], b.shape[0]), dtype=np.int64)
    for start in range(0, a.shape[0], chunk_rows):
        block = a[start:start + chunk_rows]
        xor = block[:, None, :] ^ b[None, :, :]
        out[start:start + chunk_rows] = np.bitwise_count(xor).sum(axis=2)
    return out


def as_allowed_mask(allowed: np.ndarray) -> np.ndarray:
    """Validate/coerce an allowed-row mask to a 1D boolean array.

    The mask is positional: ``allowed[row]`` says whether insertion row
    ``row`` may appear in filtered results.  Rows at or beyond the mask's
    length are disallowed (a mask snapshotted before an online ``add``
    simply excludes the newer rows).
    """
    allowed = np.asarray(allowed)
    if allowed.ndim != 1:
        raise ShapeError(f"allowed mask must be 1D, got shape {allowed.shape}")
    if allowed.dtype != bool:
        allowed = allowed.astype(bool)
    return allowed


def allowed_row_indices(allowed: np.ndarray, num_rows: int) -> np.ndarray:
    """Sorted indices ``< num_rows`` that the mask allows."""
    return np.flatnonzero(as_allowed_mask(allowed)[:num_rows])


def combine_allowed_masks(first: "np.ndarray | None",
                          second: "np.ndarray | None") -> "np.ndarray | None":
    """AND-combine two optional allowed-row masks.

    ``None`` means "everything allowed" on that side.  Because rows at or
    beyond a mask's length are disallowed, the combination is the AND of
    the overlapping prefix truncated to the shorter mask — which is how
    tombstone (alive-row) masks fold into query filters: a row survives
    only if it is both alive and filter-allowed.
    """
    if first is None:
        return second
    if second is None:
        return first
    first = as_allowed_mask(first)
    second = as_allowed_mask(second)
    overlap = min(first.shape[0], second.shape[0])
    return first[:overlap] & second[:overlap]


# Default standalone compaction policy: compact once dead rows exceed
# max(DEAD_ROWS_MIN, DEAD_ROWS_FRACTION * rows).  Embedding services
# (CBIRService) override this with their configured thresholds.
DEAD_ROWS_MIN = 64
DEAD_ROWS_FRACTION = 0.25


class TombstoneSet:
    """Dead-row bookkeeping shared by every tombstoning index.

    Holds the set of tombstoned rows and lazily materializes the alive
    mask over ``num_rows`` physical rows (rebuilt — never mutated in
    place — after a removal or a row-count change, so a mask captured by
    an in-flight scan is immutable).  Not thread-safe: callers that share
    an index across threads must serialize access themselves.
    """

    __slots__ = ("dead", "_cache")

    def __init__(self) -> None:
        self.dead: set[int] = set()
        self._cache: "np.ndarray | None" = None

    def __len__(self) -> int:
        return len(self.dead)

    def __contains__(self, row: int) -> bool:
        return row in self.dead

    def mark(self, row: int) -> None:
        self.dead.add(row)
        self._cache = None

    def clear(self) -> None:
        self.dead = set()
        self._cache = None

    def alive_mask(self, num_rows: int) -> "np.ndarray | None":
        """The alive-row mask, or ``None`` when nothing is tombstoned."""
        if not self.dead:
            return None
        if self._cache is None or self._cache.shape[0] != num_rows:
            mask = np.ones(num_rows, dtype=bool)
            mask[np.fromiter(self.dead, dtype=np.int64,
                             count=len(self.dead))] = False
            self._cache = mask
        return self._cache

    def fraction(self, num_rows: int) -> float:
        """Dead rows as a fraction of physical rows (0 when empty)."""
        return len(self.dead) / num_rows if num_rows else 0.0

    def due(self, num_rows: int, min_dead: int = DEAD_ROWS_MIN,
            max_fraction: float = DEAD_ROWS_FRACTION) -> bool:
        """Have dead rows crossed the compaction threshold?"""
        dead = len(self.dead)
        return dead > 0 and dead >= max(min_dead,
                                        int(num_rows * max_fraction))


def top_k_smallest(distances: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest distances, ties broken by index.

    Uses argpartition for O(N) selection.  Ties *at the k-th boundary* are
    resolved deterministically by index: every element equal to the boundary
    distance is considered, then the candidates are ordered by
    (distance, index) and truncated — so two exact indexes over the same
    data always return identical kNN lists.
    """
    distances = np.asarray(distances)
    if distances.ndim != 1:
        raise ShapeError(f"distances must be 1D, got shape {distances.shape}")
    n = distances.shape[0]
    k = min(k, n)
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k == n:
        candidates = np.arange(n)
    else:
        partitioned = np.argpartition(distances, k - 1)[:k]
        boundary = distances[partitioned].max()
        # Everything strictly below the boundary is definitely in; the tie
        # group at the boundary competes by index.
        candidates = np.flatnonzero(distances <= boundary)
    order = np.lexsort((candidates, distances[candidates]))
    return candidates[order][:k].astype(np.int64)
