"""Common result types for the retrieval indexes."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SearchResult:
    """One ranked retrieval result.

    ``item_id`` is the caller's identifier (archive row index or patch
    name), ``distance`` the Hamming distance to the query.
    """

    item_id: object
    distance: int

    def __lt__(self, other: "SearchResult") -> bool:
        return (self.distance, repr(self.item_id)) < (other.distance, repr(other.item_id))


@dataclass
class RadiusSearchStats:
    """Instrumentation of one radius search (experiment E8)."""

    radius: int
    buckets_probed: int = 0
    candidates: int = 0
    results: int = 0
    extra: dict = field(default_factory=dict)
