"""Retrieval metrics over ranked result lists.

Two relevance regimes, matching the MiLaN evaluation conventions:

* binary — a retrieved item is relevant iff it shares >= 1 label with the
  query (:func:`precision_at_k`, :func:`recall_at_k`,
  :func:`mean_average_precision`);
* graded — relevance is the label-set overlap (e.g. Jaccard), rewarding
  rankings that put *more-similar* items first
  (:func:`average_cumulative_gain`, :func:`ndcg_at_k`,
  :func:`weighted_average_precision`).

All functions take a 1D relevance vector *already ordered by the ranking
under evaluation* (index 0 = top-ranked item).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, ValidationError


def _check_ranked(relevances: np.ndarray) -> np.ndarray:
    relevances = np.asarray(relevances, dtype=np.float64)
    if relevances.ndim != 1:
        raise ShapeError(f"relevances must be 1D (ranked), got shape {relevances.shape}")
    return relevances


def _check_k(k: int, n: int) -> int:
    if k <= 0:
        raise ValidationError(f"k must be positive, got {k}")
    return min(k, n)


def precision_at_k(ranked_relevances: np.ndarray, k: int) -> float:
    """Fraction of the top-``k`` results that are relevant (> 0)."""
    rel = _check_ranked(ranked_relevances)
    k = _check_k(k, rel.shape[0])
    if k == 0:
        return 0.0
    return float((rel[:k] > 0).mean())


def recall_at_k(ranked_relevances: np.ndarray, k: int, total_relevant: int) -> float:
    """Fraction of all relevant items retrieved in the top ``k``."""
    rel = _check_ranked(ranked_relevances)
    if total_relevant < 0:
        raise ValidationError(f"total_relevant must be >= 0, got {total_relevant}")
    if total_relevant == 0:
        return 0.0
    k = _check_k(k, rel.shape[0])
    return float((rel[:k] > 0).sum() / total_relevant)


def mean_average_precision(ranked_relevances_per_query: "list[np.ndarray]",
                           k: "int | None" = None) -> float:
    """mAP(@k) over queries.

    Each entry is one query's ranked relevance vector; queries with no
    relevant item in the evaluated prefix contribute zero (the conservative
    convention).
    """
    if not ranked_relevances_per_query:
        raise ValidationError("mean_average_precision needs at least one query")
    scores = []
    for rel in ranked_relevances_per_query:
        rel = _check_ranked(rel)
        if k is not None:
            rel = rel[:_check_k(k, rel.shape[0])]
        binary = rel > 0
        hits = np.flatnonzero(binary)
        if hits.size == 0:
            scores.append(0.0)
            continue
        cumulative_hits = np.cumsum(binary)
        precisions = cumulative_hits[hits] / (hits + 1)
        scores.append(float(precisions.mean()))
    return float(np.mean(scores))


def average_cumulative_gain(ranked_relevances: np.ndarray, k: int) -> float:
    """ACG@k: mean graded relevance of the top ``k`` results."""
    rel = _check_ranked(ranked_relevances)
    k = _check_k(k, rel.shape[0])
    if k == 0:
        return 0.0
    return float(rel[:k].mean())


def ndcg_at_k(ranked_relevances: np.ndarray, k: int) -> float:
    """Normalized discounted cumulative gain at ``k`` with graded relevance.

    DCG uses the ``rel / log2(rank + 1)`` form; the ideal ordering is the
    relevance vector sorted descending.  Returns 0 when no item has positive
    relevance.
    """
    rel = _check_ranked(ranked_relevances)
    k = _check_k(k, rel.shape[0])
    if k == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, k + 2))
    dcg = float((rel[:k] * discounts).sum())
    ideal = np.sort(rel)[::-1][:k]
    idcg = float((ideal * discounts).sum())
    if idcg <= 0:
        return 0.0
    return dcg / idcg


def weighted_average_precision(ranked_relevances: np.ndarray, k: "int | None" = None) -> float:
    """WAP: average precision where each hit's precision term is the mean
    graded relevance of the prefix (the ACG-weighted AP of the MiLaN paper).
    """
    rel = _check_ranked(ranked_relevances)
    if k is not None:
        rel = rel[:_check_k(k, rel.shape[0])]
    binary = rel > 0
    hits = np.flatnonzero(binary)
    if hits.size == 0:
        return 0.0
    acg_at_hits = np.cumsum(rel) / (np.arange(rel.shape[0]) + 1)
    return float(acg_at_hits[hits].mean())
