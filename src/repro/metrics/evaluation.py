"""The retrieval evaluation harness.

:class:`RetrievalEvaluator` bundles the full metric battery used across the
benchmarks: given database/query codes (or features) and multi-label ground
truth, it runs kNN retrieval and reports binary metrics (precision@k,
recall@k, mAP) and graded metrics (ACG, NDCG, WAP with Jaccard relevance),
plus timing.  One evaluator definition keeps every experiment's numbers
comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.similarity import jaccard_similarity_matrix, shares_label_matrix
from ..errors import ValidationError
from ..index.linear_scan import LinearScanIndex
from ..utils.timing import Stopwatch
from .retrieval import (
    average_cumulative_gain,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    weighted_average_precision,
)


@dataclass
class EvaluationReport:
    """All retrieval metrics of one evaluation run."""

    k: int
    num_queries: int
    precision: float
    recall: float
    map_score: float
    acg: float
    ndcg: float
    wap: float
    mean_query_seconds: float
    extras: dict = field(default_factory=dict)

    def as_row(self) -> list:
        """Values in a stable order for result tables."""
        return [f"{self.precision:.3f}", f"{self.recall:.3f}",
                f"{self.map_score:.3f}", f"{self.acg:.3f}",
                f"{self.ndcg:.3f}", f"{self.wap:.3f}",
                f"{self.mean_query_seconds * 1e3:.2f} ms"]

    @staticmethod
    def header() -> list[str]:
        return ["P@k", "R@k", "mAP@k", "ACG@k", "NDCG@k", "WAP@k", "t/query"]


class RetrievalEvaluator:
    """Evaluates binary-code retrieval against label ground truth."""

    def __init__(self, num_bits: int, *, k: int = 10,
                 max_queries: int = 100) -> None:
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        if max_queries <= 0:
            raise ValidationError(f"max_queries must be positive, got {max_queries}")
        self.num_bits = num_bits
        self.k = k
        self.max_queries = max_queries

    def _query_rows(self, num_queries: int) -> np.ndarray:
        if num_queries <= self.max_queries:
            return np.arange(num_queries)
        step = num_queries / self.max_queries
        return np.unique((np.arange(self.max_queries) * step).astype(int))

    def evaluate(self, database_codes: np.ndarray, database_labels: np.ndarray,
                 query_codes: "np.ndarray | None" = None,
                 query_labels: "np.ndarray | None" = None) -> EvaluationReport:
        """Run kNN retrieval and compute the full metric battery.

        Without explicit queries, evaluates leave-one-out over the database
        (self-matches excluded).  With ``query_codes``/``query_labels``,
        evaluates a held-out query set against the database.
        """
        database_codes = np.asarray(database_codes, dtype=np.uint64)
        self_query = query_codes is None
        if self_query:
            query_codes = database_codes
            query_labels = database_labels
        if query_labels is None:
            raise ValidationError("query_codes given without query_labels")

        index = LinearScanIndex(self.num_bits)
        index.build(list(range(database_codes.shape[0])), database_codes)
        binary = shares_label_matrix(query_labels, database_labels)
        graded = jaccard_similarity_matrix(query_labels, database_labels)

        rows = self._query_rows(query_codes.shape[0])
        stopwatch = Stopwatch()
        precisions, recalls, acgs, ndcgs, waps = [], [], [], [], []
        ranked_binary: list[np.ndarray] = []
        for q in rows:
            with stopwatch:
                results = index.search_knn(query_codes[q], self.k + (1 if self_query else 0))
            if self_query:
                results = [r for r in results if r.item_id != q][:self.k]
            hit_rows = np.array([r.item_id for r in results], dtype=int)
            rel_binary = binary[q, hit_rows].astype(float)
            rel_graded = graded[q, hit_rows]
            total_relevant = int(binary[q].sum()) - (1 if self_query else 0)
            precisions.append(precision_at_k(rel_binary, self.k))
            recalls.append(recall_at_k(rel_binary, self.k, max(total_relevant, 0)))
            acgs.append(average_cumulative_gain(rel_graded, self.k))
            ndcgs.append(ndcg_at_k(rel_graded, self.k))
            waps.append(weighted_average_precision(rel_graded, self.k))
            ranked_binary.append(rel_binary)

        return EvaluationReport(
            k=self.k,
            num_queries=len(rows),
            precision=float(np.mean(precisions)),
            recall=float(np.mean(recalls)),
            map_score=mean_average_precision(ranked_binary, k=self.k),
            acg=float(np.mean(acgs)),
            ndcg=float(np.mean(ndcgs)),
            wap=float(np.mean(waps)),
            mean_query_seconds=stopwatch.mean_seconds,
        )

    def random_baseline(self, database_labels: np.ndarray) -> float:
        """Expected precision of random retrieval (the chance floor)."""
        similar = shares_label_matrix(database_labels)
        np.fill_diagonal(similar, False)
        return float(similar.mean())
