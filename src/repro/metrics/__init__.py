"""Retrieval-quality and cost metrics for the experiment harness."""

from .evaluation import EvaluationReport, RetrievalEvaluator
from .retrieval import (
    average_cumulative_gain,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    weighted_average_precision,
)

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "mean_average_precision",
    "average_cumulative_gain",
    "ndcg_at_k",
    "weighted_average_precision",
    "RetrievalEvaluator",
    "EvaluationReport",
]
