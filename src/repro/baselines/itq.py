"""Iterative Quantization (ITQ) hashing (Gong & Lazebnik, CVPR 2011).

PCA-sign wastes bits because principal components have wildly different
variances; ITQ learns an orthogonal rotation ``R`` of the PCA-projected data
that minimizes the quantization error ``||B - V R||_F`` by alternating:

1. ``B = sign(V R)`` (optimal codes given the rotation),
2. ``R = S Ŝᵀ`` from the SVD ``BᵀV = S Ω Ŝᵀ`` (orthogonal Procrustes).

The strongest *shallow* baseline in the E13 comparison — data-dependent but
label-blind.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError, ValidationError
from ..features.pca import PCA
from ..index.codes import pack_bits
from ..utils.rng import as_rng


class ITQHashing:
    """PCA + learned orthogonal rotation + sign threshold."""

    def __init__(self, num_bits: int, iterations: int = 50,
                 seed: "int | np.random.Generator | None" = 0) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        if iterations < 1:
            raise ValidationError(f"iterations must be >= 1, got {iterations}")
        self.num_bits = num_bits
        self.iterations = iterations
        self._seed = seed
        self._pca = PCA(num_bits)
        self.rotation_: "np.ndarray | None" = None
        self.quantization_errors_: list[float] = []

    @property
    def is_fitted(self) -> bool:
        return self.rotation_ is not None

    def fit(self, features: np.ndarray) -> "ITQHashing":
        """Fit PCA then run the alternating rotation updates."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ShapeError(f"fit expects (N, F), got shape {features.shape}")
        projected = self._pca.fit_transform(features)  # (N, num_bits)
        rng = as_rng(self._seed)
        # Random orthogonal init via QR of a Gaussian matrix.
        random_matrix = rng.standard_normal((self.num_bits, self.num_bits))
        rotation, _ = np.linalg.qr(random_matrix)
        self.quantization_errors_ = []
        n = projected.shape[0]
        for _ in range(self.iterations):
            rotated = projected @ rotation
            binary = np.where(rotated >= 0, 1.0, -1.0)
            self.quantization_errors_.append(float(((binary - rotated) ** 2).sum() / n))
            # Orthogonal Procrustes: rotation closest to mapping V onto B.
            s, _, s_hat_t = np.linalg.svd(binary.T @ projected)
            rotation = (s @ s_hat_t).T
        self.rotation_ = rotation
        return self

    def hash_bits(self, features: np.ndarray) -> np.ndarray:
        """``{0,1}`` bits for ``(N, F)`` or ``(F,)`` features."""
        if self.rotation_ is None:
            raise NotFittedError("ITQHashing used before fit()")
        projected = self._pca.transform(features)
        rotated = projected @ self.rotation_
        return (rotated >= 0).astype(np.uint8)

    def hash_packed(self, features: np.ndarray) -> np.ndarray:
        """Packed uint64 codes."""
        return pack_bits(self.hash_bits(features))
