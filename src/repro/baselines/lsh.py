"""Random-hyperplane LSH (sign random projections).

Data-independent binary hashing: bit ``i`` is the sign of the dot product
with a random Gaussian direction.  Preserves cosine similarity in
expectation but ignores label structure entirely — the floor that learned
hashing should clear.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError, ValidationError
from ..index.codes import pack_bits
from ..utils.rng import as_rng


class RandomHyperplaneLSH:
    """Sign-random-projection hashing to ``num_bits`` bits."""

    def __init__(self, num_bits: int, seed: "int | np.random.Generator | None" = 0) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        self.num_bits = num_bits
        self._seed = seed
        self._projections: "np.ndarray | None" = None
        self._mean: "np.ndarray | None" = None

    @property
    def is_fitted(self) -> bool:
        return self._projections is not None

    def fit(self, features: np.ndarray) -> "RandomHyperplaneLSH":
        """Draw projections for the feature dimension; centers on the data
        mean so hyperplanes pass through the cloud."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ShapeError(f"fit expects (N, F), got shape {features.shape}")
        rng = as_rng(self._seed)
        self._mean = features.mean(axis=0)
        self._projections = rng.standard_normal((features.shape[1], self.num_bits))
        return self

    def hash_bits(self, features: np.ndarray) -> np.ndarray:
        """``{0,1}`` bits for ``(N, F)`` or ``(F,)`` features."""
        if self._projections is None or self._mean is None:
            raise NotFittedError("RandomHyperplaneLSH used before fit()")
        features = np.asarray(features, dtype=np.float64)
        squeeze = features.ndim == 1
        if squeeze:
            features = features[None, :]
        if features.shape[1] != self._projections.shape[0]:
            raise ShapeError(
                f"feature dim {features.shape[1]} does not match fitted "
                f"{self._projections.shape[0]}")
        bits = ((features - self._mean) @ self._projections >= 0).astype(np.uint8)
        return bits[0] if squeeze else bits

    def hash_packed(self, features: np.ndarray) -> np.ndarray:
        """Packed uint64 codes."""
        return pack_bits(self.hash_bits(features))
