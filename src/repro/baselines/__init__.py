"""Baseline retrieval methods for experiment E13.

MiLaN's claim is *learned* codes beat data-independent and shallow
data-dependent hashing at equal bit budgets.  We implement the standard
comparison set:

* :class:`RandomHyperplaneLSH` — data-independent sign-random-projection
  LSH (Charikar, 2002),
* :class:`PCASignHashing` — PCA to ``num_bits`` dimensions, sign threshold,
* :class:`ITQHashing` — PCA + Iterative Quantization rotation (Gong &
  Lazebnik, CVPR 2011), the strong shallow baseline,
* :class:`SpectralHashing` — Laplacian-eigenfunction hashing (Weiss et
  al., NIPS 2008),
* :class:`BruteForceFeatureIndex` — exact float-feature kNN, the accuracy
  upper bound (and the storage/latency anti-baseline for E6/E7).
"""

from .brute_force import BruteForceFeatureIndex
from .itq import ITQHashing
from .lsh import RandomHyperplaneLSH
from .pca_sign import PCASignHashing
from .spectral import SpectralHashing

__all__ = [
    "RandomHyperplaneLSH",
    "PCASignHashing",
    "ITQHashing",
    "SpectralHashing",
    "BruteForceFeatureIndex",
]
