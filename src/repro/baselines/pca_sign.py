"""PCA-sign hashing: project to the top principal components, threshold at
zero.  The classic "spectral" baseline — data-dependent but rotation-naive,
so its bits are badly unbalanced past the first few components; ITQ exists
to fix exactly that."""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ValidationError
from ..features.pca import PCA
from ..index.codes import pack_bits


class PCASignHashing:
    """sign(PCA(x)) hashing to ``num_bits`` bits."""

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        self.num_bits = num_bits
        self._pca = PCA(num_bits)

    @property
    def is_fitted(self) -> bool:
        return self._pca.is_fitted

    def fit(self, features: np.ndarray) -> "PCASignHashing":
        """Fit the PCA basis on training features."""
        self._pca.fit(np.asarray(features, dtype=np.float64))
        return self

    def hash_bits(self, features: np.ndarray) -> np.ndarray:
        """``{0,1}`` bits for ``(N, F)`` or ``(F,)`` features."""
        if not self._pca.is_fitted:
            raise NotFittedError("PCASignHashing used before fit()")
        projected = self._pca.transform(features)
        return (projected >= 0).astype(np.uint8)

    def hash_packed(self, features: np.ndarray) -> np.ndarray:
        """Packed uint64 codes."""
        return pack_bits(self.hash_bits(features))
