"""Exact float-feature kNN: the accuracy ceiling and storage anti-baseline.

No hashing at all — euclidean (or cosine) distances over the raw feature
vectors.  Retrieval quality upper-bounds every binary method at the price of
``F * 8`` bytes per item and an O(N·F) scan per query, which is precisely
the trade-off the paper's compact codes exist to avoid (experiments E6/E7).
"""

from __future__ import annotations

from typing import Hashable, Iterable

import numpy as np

from ..errors import EmptyIndexError, ShapeError, ValidationError
from ..index.hamming import top_k_smallest
from ..index.results import SearchResult


class BruteForceFeatureIndex:
    """Exact nearest neighbors over float features."""

    def __init__(self, metric: str = "euclidean") -> None:
        if metric not in ("euclidean", "cosine"):
            raise ValidationError(f"metric must be 'euclidean' or 'cosine', got {metric!r}")
        self.metric = metric
        self._features: "np.ndarray | None" = None
        self._norms: "np.ndarray | None" = None
        self._ids: list[Hashable] = []

    def __len__(self) -> int:
        return len(self._ids)

    def build(self, item_ids: Iterable[Hashable], features: np.ndarray) -> None:
        """(Re)build from aligned ids and an (N, F) feature matrix."""
        features = np.asarray(features, dtype=np.float64)
        ids = list(item_ids)
        if features.ndim != 2 or len(ids) != features.shape[0]:
            raise ValidationError(
                f"need (N, F) features aligned with N ids, got {features.shape} "
                f"and {len(ids)} ids")
        self._features = features
        self._ids = ids
        if self.metric == "cosine":
            self._norms = np.linalg.norm(features, axis=1)
        else:
            self._norms = (features ** 2).sum(axis=1)

    def _distances(self, query: np.ndarray) -> np.ndarray:
        if self._features is None or not self._ids:
            raise EmptyIndexError("search on an empty BruteForceFeatureIndex")
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1 or query.shape[0] != self._features.shape[1]:
            raise ShapeError(
                f"query must be ({self._features.shape[1]},), got shape {query.shape}")
        if self.metric == "cosine":
            q_norm = np.linalg.norm(query)
            denom = np.maximum(self._norms * q_norm, 1e-12)
            return 1.0 - (self._features @ query) / denom
        # Squared euclidean via the expansion trick (no (N, F) temporary).
        return self._norms - 2.0 * (self._features @ query) + (query ** 2).sum()

    def search_knn(self, query: np.ndarray, k: int) -> list[SearchResult]:
        """The exact ``k`` nearest items.

        Distances in the results are scaled to integers (x1e6) to fit the
        common :class:`SearchResult` shape used by the binary indexes.
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        distances = self._distances(query)
        rows = top_k_smallest(distances, k)
        return [SearchResult(self._ids[int(r)], int(round(float(distances[r]) * 1e6)))
                for r in rows]

    def storage_bytes(self) -> int:
        """Bytes held by the raw feature matrix (E7 accounting)."""
        if self._features is None:
            return 0
        return int(self._features.nbytes)
