"""Spectral Hashing (Weiss, Torralba & Fergus, NIPS 2008).

The third classic shallow baseline: assuming a (separable) uniform data
distribution along the principal axes, the eigenfunctions of the graph
Laplacian are sinusoids along each axis, and the best ``num_bits``
eigenfunctions — those with the smallest analytical eigenvalues — are
thresholded at zero to form the code.

Included because the MiLaN lineage papers compare against SH alongside LSH
and ITQ; it typically beats LSH and loses to ITQ, which the E13 bench can
confirm here too.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError, ValidationError
from ..features.pca import PCA
from ..index.codes import pack_bits


class SpectralHashing:
    """PCA + analytical Laplacian eigenfunctions + sign threshold."""

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0 or num_bits % 8 != 0:
            raise ValidationError(f"num_bits must be a positive multiple of 8, got {num_bits}")
        self.num_bits = num_bits
        self._pca: "PCA | None" = None  # sized at fit time (<= feature dim)
        self._mins: "np.ndarray | None" = None
        self._ranges: "np.ndarray | None" = None
        # (bit, axis, mode) selection: which sinusoid mode on which PCA axis
        self._modes: "np.ndarray | None" = None  # (num_bits, 2) int

    @property
    def is_fitted(self) -> bool:
        return self._modes is not None

    def fit(self, features: np.ndarray) -> "SpectralHashing":
        """Fit PCA, axis extents, and pick the smallest-eigenvalue modes."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ShapeError(f"fit expects (N, F), got shape {features.shape}")
        # More bits than dimensions is fine: extra bits come from higher
        # sinusoid modes on the same axes.
        components = min(self.num_bits, features.shape[1], features.shape[0])
        self._pca = PCA(components)
        projected = self._pca.fit_transform(features)
        self._mins = projected.min(axis=0)
        maxs = projected.max(axis=0)
        self._ranges = np.maximum(maxs - self._mins, 1e-9)

        # Eigenvalue of mode m on an axis of length r: (m * pi / r)^2 —
        # enumerate (axis, mode) pairs and keep the num_bits smallest.
        axes = projected.shape[1]
        candidates: list[tuple[float, int, int]] = []
        for axis in range(axes):
            for mode in range(1, self.num_bits + 1):
                eigenvalue = (mode * np.pi / self._ranges[axis]) ** 2
                candidates.append((eigenvalue, axis, mode))
        candidates.sort()
        chosen = candidates[: self.num_bits]
        self._modes = np.array([(axis, mode) for _, axis, mode in chosen], dtype=int)
        return self

    def _eigenfunctions(self, projected: np.ndarray) -> np.ndarray:
        assert self._mins is not None and self._ranges is not None
        assert self._modes is not None
        normalized = (projected - self._mins) / self._ranges  # [0, 1] per axis
        out = np.empty((projected.shape[0], self.num_bits))
        for bit, (axis, mode) in enumerate(self._modes):
            out[:, bit] = np.sin(np.pi * mode * normalized[:, axis] + np.pi / 2.0)
        return out

    def hash_bits(self, features: np.ndarray) -> np.ndarray:
        """``{0,1}`` bits for ``(N, F)`` or ``(F,)`` features."""
        if self._modes is None or self._pca is None:
            raise NotFittedError("SpectralHashing used before fit()")
        features = np.asarray(features, dtype=np.float64)
        squeeze = features.ndim == 1
        if squeeze:
            features = features[None, :]
        projected = self._pca.transform(features)
        bits = (self._eigenfunctions(projected) >= 0).astype(np.uint8)
        return bits[0] if squeeze else bits

    def hash_packed(self, features: np.ndarray) -> np.ndarray:
        """Packed uint64 codes."""
        return pack_bits(self.hash_bits(features))
