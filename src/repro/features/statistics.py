"""Per-band statistical descriptors: moments, quantiles, texture, histograms."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, ValidationError


def band_moments(band: np.ndarray) -> np.ndarray:
    """``[mean, std, p10, p50, p90]`` of one band image."""
    band = np.asarray(band, dtype=np.float64)
    if band.ndim != 2:
        raise ShapeError(f"band must be 2D, got shape {band.shape}")
    flat = band.ravel()
    p10, p50, p90 = np.percentile(flat, [10.0, 50.0, 90.0])
    return np.array([flat.mean(), flat.std(), p10, p50, p90])


def band_moments_batch(bands: np.ndarray) -> np.ndarray:
    """``(N, 5)`` moments for an ``(N, H, W)`` stack of same-shape bands.

    One vectorized mean/std/percentile pass over the whole stack; each row
    is bitwise-identical to :func:`band_moments` of that band alone (the
    reductions run over the same contiguous memory in the same order).
    """
    bands = np.asarray(bands, dtype=np.float64)
    if bands.ndim != 3:
        raise ShapeError(f"band stack must be 3D, got shape {bands.shape}")
    flat = bands.reshape(bands.shape[0], -1)
    p10, p50, p90 = np.percentile(flat, [10.0, 50.0, 90.0], axis=1)
    return np.column_stack([flat.mean(axis=1), flat.std(axis=1), p10, p50, p90])


def gradient_energy(band: np.ndarray) -> float:
    """Mean magnitude of the spatial gradient (texture roughness proxy)."""
    band = np.asarray(band, dtype=np.float64)
    if band.ndim != 2:
        raise ShapeError(f"band must be 2D, got shape {band.shape}")
    gy, gx = np.gradient(band)
    return float(np.sqrt(gy ** 2 + gx ** 2).mean())


def local_variance(band: np.ndarray, block: int = 8) -> float:
    """Mean variance inside non-overlapping ``block``x``block`` tiles.

    High when the patch mixes several land covers (heterogeneous regions),
    low for homogeneous patches — complements the global std.
    """
    band = np.asarray(band, dtype=np.float64)
    if band.ndim != 2:
        raise ShapeError(f"band must be 2D, got shape {band.shape}")
    if block < 1:
        raise ValidationError(f"block must be >= 1, got {block}")
    h, w = band.shape
    h_fit, w_fit = (h // block) * block, (w // block) * block
    if h_fit == 0 or w_fit == 0:
        return float(band.var())
    tiles = band[:h_fit, :w_fit].reshape(h_fit // block, block, w_fit // block, block)
    return float(tiles.var(axis=(1, 3)).mean())


def histogram_features(band: np.ndarray, bins: int = 8,
                       value_range: tuple[float, float] = (0.0, 1.0)) -> np.ndarray:
    """Density histogram of one band, normalized to sum to 1."""
    band = np.asarray(band, dtype=np.float64)
    if bins < 2:
        raise ValidationError(f"bins must be >= 2, got {bins}")
    counts, _ = np.histogram(band.ravel(), bins=bins, range=value_range)
    total = counts.sum()
    if total == 0:
        return np.zeros(bins)
    return counts / total
