"""The patch -> feature-vector extractor.

For each of the 12 Sentinel-2 bands: five moments (mean/std/p10/p50/p90).
For the 10 m bands additionally gradient energy and local variance (texture).
Spectral indices NDVI/NDWI/NDBI contribute five moments each, plus
histograms of the RGB+NIR bands.  Sentinel-1, when present, adds moments of
VV, VH, and the VH/VV ratio.  The resulting dimension is reported by
:attr:`FeatureExtractor.dimension` and stays fixed for a given config, so
feature matrices can be preallocated.
"""

from __future__ import annotations

import numpy as np

from ..bigearthnet.patch import Patch, S2_BANDS_10M, S2_BAND_NAMES
from ..config import FeatureConfig
from ..errors import ValidationError
from .spectral import ndbi, ndvi, ndwi
from .statistics import band_moments, gradient_energy, histogram_features, local_variance

_MOMENTS = 5
_HISTOGRAM_BANDS = ("B02", "B03", "B04", "B08")


class FeatureExtractor:
    """Deterministic patch featurizer (the CNN-backbone substitute)."""

    def __init__(self, config: "FeatureConfig | None" = None) -> None:
        self.config = config or FeatureConfig()
        self._dimension = self._compute_dimension()

    def _compute_dimension(self) -> int:
        cfg = self.config
        dim = len(S2_BAND_NAMES) * _MOMENTS           # per-band moments
        if cfg.include_texture:
            dim += len(S2_BANDS_10M) * 2              # gradient energy + local variance
        if cfg.include_spectral_indices:
            dim += 3 * _MOMENTS                       # NDVI, NDWI, NDBI moments
        dim += len(_HISTOGRAM_BANDS) * cfg.histogram_bins
        if cfg.include_s1:
            dim += 3 * _MOMENTS                       # VV, VH, VH/VV ratio moments
        return dim

    @property
    def dimension(self) -> int:
        """Length of the vectors produced by :meth:`extract`."""
        return self._dimension

    def extract(self, patch: Patch) -> np.ndarray:
        """Feature vector of one patch (float64, length :attr:`dimension`)."""
        cfg = self.config
        parts: list[np.ndarray] = []
        for band_name in S2_BAND_NAMES:
            parts.append(band_moments(patch.s2_bands[band_name]))
        if cfg.include_texture:
            for band_name in S2_BANDS_10M:
                band = patch.s2_bands[band_name]
                parts.append(np.array([gradient_energy(band), local_variance(band)]))
        if cfg.include_spectral_indices:
            nir = patch.s2_bands["B08"]
            red = patch.s2_bands["B04"]
            green = patch.s2_bands["B03"]
            swir = _upsample_to(patch.s2_bands["B11"], nir.shape[0])
            parts.append(band_moments(ndvi(nir, red)))
            parts.append(band_moments(ndwi(green, nir)))
            parts.append(band_moments(ndbi(swir, nir)))
        for band_name in _HISTOGRAM_BANDS:
            parts.append(histogram_features(patch.s2_bands[band_name], cfg.histogram_bins))
        if cfg.include_s1:
            if patch.has_s1:
                vv, vh = patch.s1_bands["VV"], patch.s1_bands["VH"]
                ratio = vh / (vv + 1e-6)
                parts.append(band_moments(vv))
                parts.append(band_moments(vh))
                parts.append(band_moments(ratio))
            else:
                # Archives generated without S1 keep the dimension stable.
                parts.append(np.zeros(3 * _MOMENTS))
        vector = np.concatenate(parts)
        if vector.shape[0] != self._dimension:
            raise ValidationError(
                f"feature dimension mismatch: produced {vector.shape[0]}, "
                f"expected {self._dimension}")
        return vector

    def extract_many(self, patches: "list[Patch] | tuple[Patch, ...]") -> np.ndarray:
        """``(N, dimension)`` feature matrix for a list of patches."""
        if not patches:
            raise ValidationError("extract_many needs at least one patch")
        out = np.empty((len(patches), self._dimension), dtype=np.float64)
        for row, patch in enumerate(patches):
            out[row] = self.extract(patch)
        return out


def _upsample_to(band: np.ndarray, side: int) -> np.ndarray:
    """Nearest-neighbor upsample of a square band to ``side`` pixels."""
    factor = side // band.shape[0]
    if factor <= 1:
        return band
    return np.repeat(np.repeat(band, factor, axis=0), factor, axis=1)
