"""The patch -> feature-vector extractor.

For each of the 12 Sentinel-2 bands: five moments (mean/std/p10/p50/p90).
For the 10 m bands additionally gradient energy and local variance (texture).
Spectral indices NDVI/NDWI/NDBI contribute five moments each, plus
histograms of the RGB+NIR bands.  Sentinel-1, when present, adds moments of
VV, VH, and the VH/VV ratio.  The resulting dimension is reported by
:attr:`FeatureExtractor.dimension` and stays fixed for a given config, so
feature matrices can be preallocated.
"""

from __future__ import annotations

import numpy as np

from ..bigearthnet.patch import Patch, S2_BANDS_10M, S2_BAND_NAMES
from ..config import FeatureConfig
from ..errors import ValidationError
from .spectral import ndbi, ndvi, ndwi
from .statistics import (
    band_moments,
    band_moments_batch,
    gradient_energy,
    histogram_features,
    local_variance,
)

_MOMENTS = 5
_HISTOGRAM_BANDS = ("B02", "B03", "B04", "B08")


class FeatureExtractor:
    """Deterministic patch featurizer (the CNN-backbone substitute)."""

    def __init__(self, config: "FeatureConfig | None" = None) -> None:
        self.config = config or FeatureConfig()
        self._dimension = self._compute_dimension()

    def _compute_dimension(self) -> int:
        cfg = self.config
        dim = len(S2_BAND_NAMES) * _MOMENTS           # per-band moments
        if cfg.include_texture:
            dim += len(S2_BANDS_10M) * 2              # gradient energy + local variance
        if cfg.include_spectral_indices:
            dim += 3 * _MOMENTS                       # NDVI, NDWI, NDBI moments
        dim += len(_HISTOGRAM_BANDS) * cfg.histogram_bins
        if cfg.include_s1:
            dim += 3 * _MOMENTS                       # VV, VH, VH/VV ratio moments
        return dim

    @property
    def dimension(self) -> int:
        """Length of the vectors produced by :meth:`extract`."""
        return self._dimension

    def extract(self, patch: Patch) -> np.ndarray:
        """Feature vector of one patch (float64, length :attr:`dimension`)."""
        cfg = self.config
        parts: list[np.ndarray] = []
        for band_name in S2_BAND_NAMES:
            parts.append(band_moments(patch.s2_bands[band_name]))
        if cfg.include_texture:
            for band_name in S2_BANDS_10M:
                band = patch.s2_bands[band_name]
                parts.append(np.array([gradient_energy(band), local_variance(band)]))
        if cfg.include_spectral_indices:
            nir = patch.s2_bands["B08"]
            red = patch.s2_bands["B04"]
            green = patch.s2_bands["B03"]
            swir = _upsample_to(patch.s2_bands["B11"], nir.shape[0])
            parts.append(band_moments(ndvi(nir, red)))
            parts.append(band_moments(ndwi(green, nir)))
            parts.append(band_moments(ndbi(swir, nir)))
        for band_name in _HISTOGRAM_BANDS:
            parts.append(histogram_features(patch.s2_bands[band_name], cfg.histogram_bins))
        if cfg.include_s1:
            if patch.has_s1:
                vv, vh = patch.s1_bands["VV"], patch.s1_bands["VH"]
                ratio = vh / (vv + 1e-6)
                parts.append(band_moments(vv))
                parts.append(band_moments(vh))
                parts.append(band_moments(ratio))
            else:
                # Archives generated without S1 keep the dimension stable.
                parts.append(np.zeros(3 * _MOMENTS))
        vector = np.concatenate(parts)
        if vector.shape[0] != self._dimension:
            raise ValidationError(
                f"feature dimension mismatch: produced {vector.shape[0]}, "
                f"expected {self._dimension}")
        return vector

    def extract_many(self, patches: "list[Patch] | tuple[Patch, ...]") -> np.ndarray:
        """``(N, dimension)`` feature matrix for a list of patches.

        Band moments (per-band, spectral-index, and Sentinel-1) are
        computed for *all* patches of a band in one stacked vectorized
        pass — bitwise-identical to :meth:`extract` per patch, and free of
        per-patch Python dispatch (the win grows as band resolution
        shrinks relative to patch count).  Archives with ragged band
        shapes fall back to the per-patch path.
        """
        patches = list(patches)
        if not patches:
            raise ValidationError("extract_many needs at least one patch")
        stacks = self._stack_bands(patches)
        if stacks is None:
            out = np.empty((len(patches), self._dimension), dtype=np.float64)
            for row, patch in enumerate(patches):
                out[row] = self.extract(patch)
            return out
        return self._extract_many_stacked(patches, stacks)

    def _stack_bands(self, patches: "list[Patch]",
                     ) -> "dict[str, np.ndarray] | None":
        """Per-band ``(N, H, W)`` stacks, or None when the fast path
        cannot apply (ragged shapes, or a mix of with/without S1)."""
        cfg = self.config
        if cfg.include_s1 and any(p.has_s1 for p in patches) \
                and not all(p.has_s1 for p in patches):
            return None
        stacks: dict[str, np.ndarray] = {}
        try:
            for band_name in S2_BAND_NAMES:
                stacks[band_name] = np.stack(
                    [patch.s2_bands[band_name] for patch in patches])
            if cfg.include_s1 and patches[0].has_s1:
                stacks["VV"] = np.stack([p.s1_bands["VV"] for p in patches])
                stacks["VH"] = np.stack([p.s1_bands["VH"] for p in patches])
        except ValueError:
            return None
        return stacks

    def _extract_many_stacked(self, patches: "list[Patch]",
                              stacks: "dict[str, np.ndarray]") -> np.ndarray:
        """The vectorized fast path; column order mirrors :meth:`extract`."""
        cfg = self.config
        num = len(patches)
        columns: list[np.ndarray] = []
        for band_name in S2_BAND_NAMES:
            columns.append(band_moments_batch(stacks[band_name]))
        if cfg.include_texture:
            # Texture kernels stay per-patch: on full-archive stacks the
            # gradient temporaries fall out of cache and run slower than
            # the cache-sized 2-D loop.
            for band_name in S2_BANDS_10M:
                stack = stacks[band_name]
                texture = np.empty((num, 2), dtype=np.float64)
                for row in range(num):
                    texture[row, 0] = gradient_energy(stack[row])
                    texture[row, 1] = local_variance(stack[row])
                columns.append(texture)
        if cfg.include_spectral_indices:
            nir = stacks["B08"]
            red = stacks["B04"]
            green = stacks["B03"]
            swir = _upsample_stack(stacks["B11"], nir.shape[1])
            columns.append(band_moments_batch(ndvi(nir, red)))
            columns.append(band_moments_batch(ndwi(green, nir)))
            columns.append(band_moments_batch(ndbi(swir, nir)))
        for band_name in _HISTOGRAM_BANDS:
            stack = stacks[band_name]
            histograms = np.empty((num, cfg.histogram_bins), dtype=np.float64)
            for row in range(num):
                histograms[row] = histogram_features(stack[row], cfg.histogram_bins)
            columns.append(histograms)
        if cfg.include_s1:
            if "VV" in stacks:
                vv, vh = stacks["VV"], stacks["VH"]
                ratio = vh / (vv + 1e-6)
                columns.append(band_moments_batch(vv))
                columns.append(band_moments_batch(vh))
                columns.append(band_moments_batch(ratio))
            else:
                columns.append(np.zeros((num, 3 * _MOMENTS)))
        matrix = np.concatenate(columns, axis=1)
        if matrix.shape[1] != self._dimension:
            raise ValidationError(
                f"feature dimension mismatch: produced {matrix.shape[1]}, "
                f"expected {self._dimension}")
        return matrix


def _upsample_to(band: np.ndarray, side: int) -> np.ndarray:
    """Nearest-neighbor upsample of a square band to ``side`` pixels."""
    factor = side // band.shape[0]
    if factor <= 1:
        return band
    return np.repeat(np.repeat(band, factor, axis=0), factor, axis=1)


def _upsample_stack(stack: np.ndarray, side: int) -> np.ndarray:
    """Batch form of :func:`_upsample_to` over an ``(N, H, W)`` stack."""
    factor = side // stack.shape[1]
    if factor <= 1:
        return stack
    return np.repeat(np.repeat(stack, factor, axis=1), factor, axis=2)
