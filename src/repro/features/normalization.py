"""Feature standardization (z-scoring) fitted on a training split."""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError, ValidationError


class Standardizer:
    """Per-dimension ``(x - mean) / std`` transform.

    Dimensions with (near-)zero variance are passed through centered but
    unscaled, so constant features cannot blow up.  Fit on the training
    split only; apply to everything — the usual leakage discipline.
    """

    def __init__(self, eps: float = 1e-9) -> None:
        self.eps = eps
        self.mean_: "np.ndarray | None" = None
        self.scale_: "np.ndarray | None" = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    def fit(self, features: np.ndarray) -> "Standardizer":
        """Estimate mean/std from an ``(N, F)`` matrix; returns self."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] < 1:
            raise ValidationError(f"fit expects a non-empty (N, F) matrix, got {features.shape}")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.scale_ = np.where(std > self.eps, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Apply the fitted transform to ``(N, F)`` or ``(F,)`` input."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("Standardizer.transform called before fit")
        features = np.asarray(features, dtype=np.float64)
        squeeze = features.ndim == 1
        if squeeze:
            features = features[None, :]
        if features.shape[1] != self.mean_.shape[0]:
            raise ShapeError(
                f"feature dimension {features.shape[1]} does not match "
                f"fitted dimension {self.mean_.shape[0]}")
        out = (features - self.mean_) / self.scale_
        return out[0] if squeeze else out

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit and transform in one call."""
        return self.fit(features).transform(features)
