"""Normalized-difference spectral indices.

These are the standard remote-sensing contrasts between Sentinel-2 bands;
each maps a pair of band images to a per-pixel index in ``[-1, 1]``:

* NDVI (vegetation): ``(NIR - red) / (NIR + red)`` — high over healthy
  vegetation, near zero over soil, negative over water.
* NDWI (water): ``(green - NIR) / (green + NIR)`` — positive over water.
* NDBI (built-up): ``(SWIR - NIR) / (SWIR + NIR)`` — positive over urban
  fabric and bare surfaces.

They give the feature extractor the same class-discriminating axes a CNN
would learn first on this imagery.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

_EPS = 1e-9


def normalized_difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``(a - b) / (a + b)`` with divide-by-zero protection."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ShapeError(f"band shapes differ: {a.shape} vs {b.shape}")
    return (a - b) / (a + b + _EPS)


def ndvi(nir: np.ndarray, red: np.ndarray) -> np.ndarray:
    """Normalized Difference Vegetation Index (B08 vs B04)."""
    return normalized_difference(nir, red)


def ndwi(green: np.ndarray, nir: np.ndarray) -> np.ndarray:
    """Normalized Difference Water Index (B03 vs B08)."""
    return normalized_difference(green, nir)


def ndbi(swir: np.ndarray, nir: np.ndarray) -> np.ndarray:
    """Normalized Difference Built-up Index (B11 vs B08)."""
    return normalized_difference(swir, nir)
