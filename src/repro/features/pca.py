"""Principal component analysis via SVD.

Used in two places: optional feature compression ahead of MiLaN, and as the
first stage of the ITQ hashing baseline (PCA to ``num_bits`` dimensions,
then a learned rotation).
"""

from __future__ import annotations

import numpy as np

from ..errors import NotFittedError, ShapeError, ValidationError


class PCA:
    """Top-``k`` principal components of a centered feature matrix."""

    def __init__(self, num_components: int) -> None:
        if num_components <= 0:
            raise ValidationError(f"num_components must be positive, got {num_components}")
        self.num_components = num_components
        self.mean_: "np.ndarray | None" = None
        self.components_: "np.ndarray | None" = None   # (F, k)
        self.explained_variance_: "np.ndarray | None" = None

    @property
    def is_fitted(self) -> bool:
        return self.components_ is not None

    def fit(self, features: np.ndarray) -> "PCA":
        """Fit on an ``(N, F)`` matrix; requires ``k <= min(N, F)``."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValidationError(f"fit expects an (N, F) matrix, got {features.shape}")
        n, f = features.shape
        if self.num_components > min(n, f):
            raise ValidationError(
                f"num_components={self.num_components} exceeds min(N, F)="
                f"{min(n, f)}")
        self.mean_ = features.mean(axis=0)
        centered = features - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[: self.num_components].T
        self.explained_variance_ = (singular_values[: self.num_components] ** 2) / max(n - 1, 1)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Project ``(N, F)`` or ``(F,)`` input onto the top components."""
        if self.mean_ is None or self.components_ is None:
            raise NotFittedError("PCA.transform called before fit")
        features = np.asarray(features, dtype=np.float64)
        squeeze = features.ndim == 1
        if squeeze:
            features = features[None, :]
        if features.shape[1] != self.mean_.shape[0]:
            raise ShapeError(
                f"feature dimension {features.shape[1]} does not match "
                f"fitted dimension {self.mean_.shape[0]}")
        out = (features - self.mean_) @ self.components_
        return out[0] if squeeze else out

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit and project in one call."""
        return self.fit(features).transform(features)
