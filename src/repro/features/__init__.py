"""Image feature extraction — the stand-in for MiLaN's CNN backbone.

The original MiLaN [Roy et al., GRSL 2021] hashes deep features from a
pre-trained CNN.  Offline and CPU-only, we substitute a deterministic
hand-rolled featurizer (DESIGN.md §2): per-band statistics, spectral
indices, texture energy, and histograms.  What matters for the reproduction
is that label-similar patches land close in feature space — guaranteed here
because the synthetic pixels are generated from class signatures the
features directly measure.

Public pieces:

* :class:`FeatureExtractor` — patch -> float vector,
* :class:`Standardizer` — per-dimension z-scoring fitted on a train split,
* :class:`PCA` — dimensionality reduction (also used by the ITQ baseline).
"""

from .extractor import FeatureExtractor
from .normalization import Standardizer
from .pca import PCA
from .spectral import ndbi, ndvi, ndwi

__all__ = [
    "FeatureExtractor",
    "Standardizer",
    "PCA",
    "ndvi",
    "ndwi",
    "ndbi",
]
