"""repro: reproduction of "Satellite Image Search in AgoraEO" (VLDB 2022).

The package implements the paper's full stack (see DESIGN.md):

* a synthetic BigEarthNet archive (:mod:`repro.bigearthnet`),
* MiLaN metric-learning deep hashing (:mod:`repro.core`) on a from-scratch
  numpy autograd engine (:mod:`repro.nn`),
* Hamming-space retrieval indexes (:mod:`repro.index`) plus classic hashing
  baselines (:mod:`repro.baselines`),
* a MongoDB-style document store with geohash 2D indexing
  (:mod:`repro.store`, :mod:`repro.geo`),
* the EarthQube search system itself (:mod:`repro.earthqube`),
* a concurrent serving tier — sharded scatter-gather execution,
  micro-batching, result caching, metrics (:mod:`repro.serving`).

Quickstart::

    from repro import EarthQube, EarthQubeConfig, ArchiveConfig, QuerySpec

    system = EarthQube.bootstrap(EarthQubeConfig(
        archive=ArchiveConfig(num_patches=500)))
    response = system.search(QuerySpec(labels=("Coniferous forest",)))
    similar = system.similar_images(response.names[0], k=10)
"""

from .config import (
    ArchiveConfig,
    EarthQubeConfig,
    FeatureConfig,
    FederationConfig,
    GeoIndexConfig,
    IndexConfig,
    MiLaNConfig,
    ObsConfig,
    ServingConfig,
    TrainConfig,
)
from .bigearthnet import SyntheticArchive
from .core import MiLaNHasher
from .earthqube import EarthQube, QuerySpec
from .earthqube.label_filter import LabelOperator
from .errors import ReproError
from .features import FeatureExtractor
from .federation import FederatedEarthQube

__version__ = "1.0.0"

__all__ = [
    "EarthQube",
    "QuerySpec",
    "LabelOperator",
    "SyntheticArchive",
    "MiLaNHasher",
    "FeatureExtractor",
    "EarthQubeConfig",
    "ArchiveConfig",
    "FeatureConfig",
    "MiLaNConfig",
    "TrainConfig",
    "IndexConfig",
    "GeoIndexConfig",
    "ServingConfig",
    "FederationConfig",
    "ObsConfig",
    "FederatedEarthQube",
    "ReproError",
    "__version__",
]
