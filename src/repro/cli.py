"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library workflow:

* ``generate``  — create a synthetic archive and save it to disk,
* ``train``     — train MiLaN on an archive (fresh or saved) and save the
  model state,
* ``search``    — bootstrap a system and run a label/season search,
* ``similar``   — bootstrap and run CBIR from an archive image,
* ``describe``  — print the bootstrapped system summary,
* ``calibrate`` — measure per-unit operator costs (ns/row scanned,
  ns/bucket probed, ...) on this machine and optionally write the
  ``calibration.json`` sidecar the cost model consumes.

The CLI is intentionally thin: every command maps 1:1 onto public API calls
so it doubles as living documentation.
"""

from __future__ import annotations

import argparse
import json
import sys

from .bigearthnet import SyntheticArchive
from .bigearthnet.io import load_archive, save_archive
from .config import (
    ArchiveConfig,
    EarthQubeConfig,
    MiLaNConfig,
    TrainConfig,
)
from .core import MiLaNHasher
from .earthqube import EarthQube, LabelOperator, QuerySpec
from .errors import ReproError
from .features import FeatureExtractor


def _add_archive_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--patches", type=int, default=500,
                        help="number of synthetic patches (default 500)")
    parser.add_argument("--seed", type=int, default=7, help="generation seed")


def _add_train_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bits", type=int, default=64,
                        help="hash code length in bits (default 64)")
    parser.add_argument("--epochs", type=int, default=15,
                        help="training epochs (default 15)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Satellite Image Search in AgoraEO — reproduction CLI")
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic BigEarthNet-like archive")
    _add_archive_arguments(generate)
    generate.add_argument("--out", required=True, help="output directory")

    train = commands.add_parser("train", help="train MiLaN on an archive")
    _add_archive_arguments(train)
    _add_train_arguments(train)
    train.add_argument("--archive", help="load a saved archive instead of generating")
    train.add_argument("--out", help="path for the model state (.npz)")

    search = commands.add_parser("search", help="run a label/season search")
    _add_archive_arguments(search)
    _add_train_arguments(search)
    search.add_argument("--labels", nargs="+", help="CLC label names")
    search.add_argument("--operator", default="some",
                        choices=[op.value for op in LabelOperator])
    search.add_argument("--season", choices=["Winter", "Spring", "Summer", "Autumn"])
    search.add_argument("--limit", type=int, default=10)

    similar = commands.add_parser("similar", help="CBIR from an archive image")
    _add_archive_arguments(similar)
    _add_train_arguments(similar)
    similar.add_argument("--name", help="archive image name (default: first image)")
    similar.add_argument("--k", type=int, default=10)

    describe = commands.add_parser("describe", help="bootstrap and summarize")
    _add_archive_arguments(describe)
    _add_train_arguments(describe)

    calibrate = commands.add_parser(
        "calibrate", help="measure per-unit operator costs on this machine")
    calibrate.add_argument("--sizes", type=int, nargs="+",
                           default=[2000, 8000],
                           help="synthetic corpus sizes (default: 2000 8000)")
    calibrate.add_argument("--bits", type=int, default=64,
                           help="hash code length in bits (default 64)")
    calibrate.add_argument("--queries", type=int, default=32,
                           help="queries per measurement (default 32)")
    calibrate.add_argument("--radius", type=int, default=6,
                           help="MIH probe radius (default 6)")
    calibrate.add_argument("--seed", type=int, default=7,
                           help="synthetic corpus seed")
    calibrate.add_argument("--out", help="write calibration JSON here")
    return parser


def _system_config(args: argparse.Namespace) -> EarthQubeConfig:
    return EarthQubeConfig(
        archive=ArchiveConfig(num_patches=args.patches, seed=args.seed),
        milan=MiLaNConfig(num_bits=args.bits, hidden_sizes=(128, 64)),
        train=TrainConfig(epochs=args.epochs, triplets_per_epoch=1024,
                          batch_size=64),
    )


def _command_generate(args: argparse.Namespace, out) -> int:
    archive = SyntheticArchive.generate(
        ArchiveConfig(num_patches=args.patches, seed=args.seed))
    save_archive(archive, args.out)
    print(f"wrote {len(archive)} patches to {args.out}", file=out)
    return 0


def _command_train(args: argparse.Namespace, out) -> int:
    if args.archive:
        archive = load_archive(args.archive)
    else:
        archive = SyntheticArchive.generate(
            ArchiveConfig(num_patches=args.patches, seed=args.seed))
    extractor = FeatureExtractor()
    features = extractor.extract_many(archive.patches)
    hasher = MiLaNHasher(
        MiLaNConfig(num_bits=args.bits, hidden_sizes=(128, 64)),
        TrainConfig(epochs=args.epochs, triplets_per_epoch=1024, batch_size=64))
    hasher.fit(features, archive.label_matrix())
    print(f"trained MiLaN ({args.bits} bits) on {len(archive)} patches; "
          f"final loss {hasher.history.final_total:.4f}", file=out)
    if args.out:
        import numpy as np
        np.savez_compressed(args.out, **hasher.state_dict())
        print(f"saved model state to {args.out}", file=out)
    return 0


def _command_search(args: argparse.Namespace, out) -> int:
    system = EarthQube.bootstrap(_system_config(args))
    spec = QuerySpec(
        labels=tuple(args.labels) if args.labels else None,
        label_operator=LabelOperator(args.operator),
        seasons=(args.season,) if args.season else None,
        limit=args.limit,
    )
    response = system.search(spec)
    print(f"{response.total_matches} matches (plan: {response.plan})", file=out)
    for doc in response:
        props = doc["properties"]
        print(f"  {doc['name']}  {props['country']:<12} {props['season']:<7} "
              f"{props['labels']}", file=out)
    return 0


def _command_similar(args: argparse.Namespace, out) -> int:
    system = EarthQube.bootstrap(_system_config(args))
    name = args.name or system.archive.names[0]
    result = system.similar_images(name, k=args.k)
    query_labels = set(system.archive.get(name).labels)
    print(f"images similar to {name} (labels: {sorted(query_labels)}):", file=out)
    for r in result.results:
        neighbor = system.archive.get(str(r.item_id))
        shared = sorted(query_labels & set(neighbor.labels))
        print(f"  d={r.distance:3d}  {r.item_id}  shared={shared or '-'}", file=out)
    return 0


def _command_describe(args: argparse.Namespace, out) -> int:
    system = EarthQube.bootstrap(_system_config(args))
    print(json.dumps(system.describe(), indent=2), file=out)
    return 0


def _command_calibrate(args: argparse.Namespace, out) -> int:
    from .obs.calibrate import run_calibration, save_calibration

    calibration = run_calibration(
        corpus_sizes=tuple(args.sizes), num_bits=args.bits,
        num_queries=args.queries, radius=args.radius, seed=args.seed)
    if args.out:
        save_calibration(calibration, args.out)
        print(f"wrote calibration to {args.out}", file=out)
    print(json.dumps({"host": calibration["host"],
                      "corpus_sizes": calibration["corpus_sizes"],
                      "units": calibration["units"]}, indent=2), file=out)
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "train": _command_train,
    "search": _command_search,
    "similar": _command_similar,
    "describe": _command_describe,
    "calibrate": _command_calibrate,
}


def main(argv: "list[str] | None" = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
