"""Incremental checkpoints: atomic, WAL-aware snapshots of the data tier.

A checkpoint captures the document store (JSON, via
:func:`~repro.store.persistence.database_snapshot`) *and* the CBIR
physical state — the packed ``(N, W)`` Hamming code matrix, the
row-aligned alive mask, and the row-aligned name list — in seq-stamped
sidecar files::

    db-<seq>.json      document store snapshot
    codes-<seq>.npy    packed code matrix, uint64 (N, W)   (mmap-able)
    alive-<seq>.npy    alive mask, bool (N,)               (mmap-able)
    names-<seq>.json   row-aligned item names
    manifest.json      the commit point

Persisting the code matrix makes restart O(corpus read) instead of
O(re-embed + rebuild): load mmaps the ``.npy`` sidecars and hands them to
the index's restore path — no feature extraction, no hashing.

Crash atomicity
---------------

Every sidecar is staged + fsynced + ``os.replace``-committed individually,
but none of them *mean* anything until ``manifest.json`` — replaced last —
points at them.  A crash anywhere before the manifest replace leaves the
previous checkpoint fully intact (its manifest still points at its own
sidecars, which are only garbage-collected *after* the new manifest is
durable).  The manifest records the WAL sequence the checkpoint covers, so
the log can be truncated to it afterwards; a crash between manifest commit
and truncate is harmless because replay skips records at or below the
covered sequence.

Fault injection points (:mod:`repro.store.faults`):
``snapshot.after_tmp_write`` (sidecars durable, manifest still old),
``snapshot.before_manifest_replace`` (staged, not committed),
``snapshot.after_manifest_replace`` (committed, GC/truncate pending).
"""

from __future__ import annotations

import io
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import DurabilityError
from .database import Database
from .faults import NO_FAULTS, FaultInjector
from .persistence import database_from_snapshot, database_snapshot, write_file_atomic

_MANIFEST_VERSION = 1
_MANIFEST_NAME = "manifest.json"


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


@dataclass(frozen=True)
class SnapshotInfo:
    """Manifest-level description of a committed checkpoint."""

    wal_seq: int
    created_at: float
    num_rows: int
    num_words: int
    files: dict
    extra: dict

    @property
    def age_seconds(self) -> float:
        return max(0.0, time.time() - self.created_at)


@dataclass
class LoadedSnapshot:
    """A checkpoint pulled back into memory (arrays mmap-backed)."""

    info: SnapshotInfo
    db: Database
    names: "list[str]"
    codes: np.ndarray
    alive: np.ndarray


class SnapshotManager:
    """Writes, loads, and garbage-collects checkpoints in one directory."""

    def __init__(self, directory: "str | os.PathLike", *,
                 faults: "FaultInjector | None" = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.faults = faults if faults is not None else NO_FAULTS

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST_NAME

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #

    def write(self, db: Database, *, names: "list[str]",
              codes: np.ndarray, alive: np.ndarray, wal_seq: int,
              extra: "dict | None" = None) -> SnapshotInfo:
        """Commit a checkpoint covering WAL sequence ``wal_seq``.

        The caller guarantees ``names``/``codes``/``alive`` are row-aligned
        views of the same physical index state and that ``db`` reflects
        every mutation up to ``wal_seq``.  ``extra`` is a small
        JSON-compatible dict stored verbatim in the manifest (the
        durability tier keeps bookkeeping there that must survive WAL
        truncation, e.g. which images were re-embedded from external
        features).
        """
        codes = np.ascontiguousarray(codes, dtype=np.uint64)
        alive = np.ascontiguousarray(alive, dtype=bool)
        if codes.ndim != 2:
            raise DurabilityError(
                f"code matrix must be (N, W), got shape {codes.shape}")
        if len(names) != codes.shape[0] or alive.shape != (codes.shape[0],):
            raise DurabilityError(
                f"row misalignment: {len(names)} names, "
                f"{codes.shape[0]} code rows, {alive.shape[0]} alive flags")
        files = {
            "db": f"db-{wal_seq}.json",
            "codes": f"codes-{wal_seq}.npy",
            "alive": f"alive-{wal_seq}.npy",
            "names": f"names-{wal_seq}.json",
        }
        write_file_atomic(self.directory / files["db"],
                          json.dumps(database_snapshot(db)).encode("utf-8"))
        write_file_atomic(self.directory / files["codes"], _npy_bytes(codes))
        write_file_atomic(self.directory / files["alive"], _npy_bytes(alive))
        write_file_atomic(self.directory / files["names"],
                          json.dumps(list(names)).encode("utf-8"))
        self.faults.fire("snapshot.after_tmp_write")
        manifest = {
            "format_version": _MANIFEST_VERSION,
            "wal_seq": int(wal_seq),
            "created_at": time.time(),
            "num_rows": int(codes.shape[0]),
            "num_words": int(codes.shape[1]),
            "files": files,
            "extra": dict(extra) if extra else {},
        }
        # Stage the manifest by hand (not write_file_atomic) so the crash
        # point sits exactly between the durable staging and the commit.
        tmp = self.directory / (_MANIFEST_NAME + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(json.dumps(manifest, indent=2).encode("utf-8"))
            handle.flush()
            os.fsync(handle.fileno())
        self.faults.fire("snapshot.before_manifest_replace")
        os.replace(tmp, self.manifest_path)
        self.faults.fire("snapshot.after_manifest_replace")
        self.collect_garbage()
        return SnapshotInfo(wal_seq=manifest["wal_seq"],
                            created_at=manifest["created_at"],
                            num_rows=manifest["num_rows"],
                            num_words=manifest["num_words"],
                            files=files, extra=manifest["extra"])

    def collect_garbage(self) -> "list[str]":
        """Delete sidecars and temp files the manifest does not reference.

        Safe to run at any time: only files *outside* the committed
        checkpoint are touched, so a crash mid-GC costs disk space, never
        data.  Returns the names of removed files.
        """
        info = self.read_manifest()
        live = {_MANIFEST_NAME}
        if info is not None:
            live.update(info.files.values())
        removed = []
        for entry in self.directory.iterdir():
            if not entry.is_file() or entry.name in live:
                continue
            if (entry.suffix == ".tmp"
                    or entry.name.startswith(("db-", "codes-", "alive-",
                                              "names-"))):
                entry.unlink(missing_ok=True)
                removed.append(entry.name)
        return removed

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #

    def read_manifest(self) -> "SnapshotInfo | None":
        """The committed checkpoint's description, or None if none exists."""
        if not self.manifest_path.exists():
            return None
        with open(self.manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if manifest.get("format_version") != _MANIFEST_VERSION:
            raise DurabilityError(
                f"unsupported snapshot manifest version "
                f"{manifest.get('format_version')!r}")
        return SnapshotInfo(wal_seq=int(manifest["wal_seq"]),
                            created_at=float(manifest["created_at"]),
                            num_rows=int(manifest["num_rows"]),
                            num_words=int(manifest["num_words"]),
                            files=dict(manifest["files"]),
                            extra=dict(manifest.get("extra", {})))

    def load_latest(self) -> "LoadedSnapshot | None":
        """Load the committed checkpoint; arrays are mmapped read-only.

        Returns None when no checkpoint has ever been committed.  Raises
        :class:`DurabilityError` if the manifest references missing or
        misaligned sidecars (a committed manifest guarantees they exist —
        their absence means external damage, not a crash).
        """
        info = self.read_manifest()
        if info is None:
            return None
        paths = {key: self.directory / name
                 for key, name in info.files.items()}
        for key, path in paths.items():
            if not path.exists():
                raise DurabilityError(
                    f"snapshot manifest references missing sidecar "
                    f"{path.name} ({key})")
        with open(paths["db"], encoding="utf-8") as handle:
            db = database_from_snapshot(json.load(handle))
        codes = np.load(paths["codes"], mmap_mode="r", allow_pickle=False)
        alive = np.load(paths["alive"], mmap_mode="r", allow_pickle=False)
        with open(paths["names"], encoding="utf-8") as handle:
            names = json.load(handle)
        if (codes.shape != (info.num_rows, info.num_words)
                or alive.shape != (info.num_rows,)
                or len(names) != info.num_rows):
            raise DurabilityError(
                f"snapshot sidecars disagree with manifest: manifest says "
                f"{info.num_rows}x{info.num_words}, codes {codes.shape}, "
                f"alive {alive.shape}, {len(names)} names")
        return LoadedSnapshot(info=info, db=db, names=list(names),
                              codes=codes, alive=alive)
