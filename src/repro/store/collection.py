"""Document collections with a columnar, index-intersecting query planner.

A :class:`Collection` stores dict documents under monotonically increasing
integer doc ids and maintains, next to the doc dicts, a set of *column
projections* the query planner probes vectorially:

* **inverted posting arrays** — every :class:`~repro.store.indexes.
  HashIndex` posting set is mirrored as a cached sorted ``int64`` doc-id
  array, so categorical predicates (season, satellites, labels, label
  chars, country) resolve to array probes;
* **sorted date columns** — :class:`~repro.store.columnar.SortedDateColumn`
  keeps a value-sorted ``(int64 values, int64 doc ids)`` projection of an
  ISO date field; range predicates become two ``np.searchsorted`` calls;
* **geohash bucket posting lists** — the
  :class:`~repro.store.indexes.GeoHashIndex` cell buckets, unioned over a
  query cover.

Query planning intersects the sorted id arrays of **all** applicable
conditions (equality/``$in``/``$all`` on posting arrays, date ranges on
sorted columns, geo covers on geohash buckets) with
``np.intersect1d`` — it no longer stops at the first usable index.  The
result is a candidate *superset*: every candidate is still verified
against the full query by :func:`repro.store.matcher.matches`, so plans
never change results — only cost.  ``find`` reports the chosen access
path in :class:`FindResult.plan` (``"columnar:a&b"`` when several column
sources were intersected) and accepts ``hint="scan"`` to force the
sequential path, which the plan-equivalence tests use to prove plans are
result-neutral.

Copy discipline: only the returned page is deep-copied.  Candidates,
matched documents, sort keys, ``count``, ``distinct``, and
:meth:`Collection.field_values` all operate on in-place references.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

import numpy as np

from ..errors import DocumentNotFoundError, IndexError_, StoreError
from ..obs import tracing
from .columnar import SortedDateColumn, ids_array, iso_to_int64
from .indexes import GeoHashIndex, HashIndex, UniqueIndex, _hashable
from .matcher import (
    extract_all_values,
    extract_equality,
    extract_geo,
    get_path,
    is_missing,
    matches,
)


@dataclass
class FindResult:
    """Result of :meth:`Collection.find`: the (paginated) documents plus
    plan info and the pre-pagination match count."""

    documents: list[dict]
    plan: str = "scan"
    candidates_examined: int = 0
    total_matches: int = 0

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.documents)

    def __getitem__(self, i: int) -> dict:
        return self.documents[i]


def _iter_field_conditions(query: Mapping[str, Any]):
    """Yield every ``(field, condition)`` pair AND-ed by the query: the
    top-level field conditions plus those nested under ``$and`` (at any
    depth).  ``$or``/``$nor`` branches cannot narrow an AND-intersection
    plan and are skipped."""
    for key, condition in query.items():
        if key == "$and":
            if isinstance(condition, (list, tuple)):
                for sub in condition:
                    if isinstance(sub, Mapping):
                        yield from _iter_field_conditions(sub)
        elif not key.startswith("$"):
            yield key, condition


def _scalar_values(values: Iterable[Any]) -> bool:
    """True when every value is usable as a posting key: ``None`` matches
    missing fields (not indexed) and list/tuple operands match whole-array
    equality (postings hold elements, not whole arrays), so both disqualify
    the posting-array access path."""
    return all(v is not None and not isinstance(v, (list, tuple))
               for v in values)


_DATE_LOWER_OPS = ("$gt", "$gte")
_DATE_UPPER_OPS = ("$lt", "$lte")


def _date_range_bounds(condition: Any,
                       ) -> "tuple[int | None, int | None] | None":
    """The inclusive ``[lo, hi]`` int64 range of a date condition.

    Builds the tightest inclusive range that is still a superset of the
    string predicate (strict bounds are widened to inclusive — the exact
    matcher re-applies strictness).  Returns ``None`` when the condition
    has no parseable ordered constraint; a ``None`` bound is an open side.
    """
    lo: "int | None" = None
    hi: "int | None" = None
    applicable = False
    if isinstance(condition, str):
        point = iso_to_int64(condition)
        if point is None:
            return None
        lo = hi = point
        applicable = True
    elif isinstance(condition, Mapping):
        for op, operand in condition.items():
            if op in _DATE_LOWER_OPS or op in _DATE_UPPER_OPS or op == "$eq":
                parsed = iso_to_int64(operand)
                if parsed is None:
                    continue
                if op in _DATE_LOWER_OPS or op == "$eq":
                    lo = parsed if lo is None else max(lo, parsed)
                if op in _DATE_UPPER_OPS or op == "$eq":
                    hi = parsed if hi is None else min(hi, parsed)
                applicable = True
    if not applicable:
        return None
    return lo, hi


def _intersection_cost_ns(sizes: "list[int]", unit_ns: float) -> float:
    """Predicted cost of intersecting sources in the given order.

    The first source is materialized whole; each later step merges the
    running result (bounded by the smallest source seen) against the next
    array, touching both.  Coarse, but it orders candidate source
    sequences correctly: front-loading a huge source prices visibly worse.
    """
    if not sizes:
        return 0.0
    touched = sizes[0]
    running = sizes[0]
    for size in sizes[1:]:
        touched += running + size
        running = min(running, size)
    return touched * unit_ns


class Collection:
    """A named collection of documents with secondary indexes/columns."""

    def __init__(self, name: str, *, primary_key: "str | None" = None) -> None:
        self.name = name
        self.primary_key = primary_key
        self._docs: dict[int, dict] = {}
        self._next_id = 0
        self._unique_indexes: dict[str, UniqueIndex] = {}
        self._hash_indexes: dict[str, HashIndex] = {}
        self._geo_indexes: dict[str, GeoHashIndex] = {}
        self._date_columns: dict[str, SortedDateColumn] = {}
        if primary_key is not None:
            self.create_unique_index(primary_key)

    # ------------------------------------------------------------------ #
    # Index management
    # ------------------------------------------------------------------ #

    def create_unique_index(self, field_path: str) -> None:
        """Create a unique index; existing documents are indexed immediately."""
        if field_path in self._unique_indexes:
            return
        index = UniqueIndex(field_path)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._unique_indexes[field_path] = index

    def create_index(self, field_path: str) -> None:
        """Create a (multikey) hash index on ``field_path``."""
        if field_path in self._hash_indexes:
            return
        index = HashIndex(field_path)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._hash_indexes[field_path] = index

    def create_geo_index(self, field_path: str, precision: int = 5) -> None:
        """Create a 2D geohash index on a bbox-valued field."""
        if field_path in self._geo_indexes:
            existing = self._geo_indexes[field_path]
            if existing.precision != precision:
                raise IndexError_(
                    f"geo index on {field_path!r} already exists with "
                    f"precision {existing.precision}")
            return
        index = GeoHashIndex(field_path, precision)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._geo_indexes[field_path] = index

    def create_date_column(self, field_path: str) -> None:
        """Create a sorted int64 column projection of an ISO date field."""
        if field_path in self._date_columns:
            return
        column = SortedDateColumn(field_path)
        column.bulk_add(self._docs.keys(), self._docs.values())
        self._date_columns[field_path] = column

    def drop_index(self, field_path: str) -> None:
        """Drop any secondary index/column on ``field_path`` (primary key
        excluded)."""
        if field_path == self.primary_key:
            raise IndexError_("cannot drop the primary key index")
        self._unique_indexes.pop(field_path, None)
        self._hash_indexes.pop(field_path, None)
        self._geo_indexes.pop(field_path, None)
        self._date_columns.pop(field_path, None)

    @property
    def index_fields(self) -> set[str]:
        """All indexed field paths (for introspection/tests)."""
        return (set(self._unique_indexes) | set(self._hash_indexes)
                | set(self._geo_indexes) | set(self._date_columns))

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def insert_one(self, document: Mapping[str, Any]) -> int:
        """Insert a document (stored by reference-independent copy); returns
        its internal doc id.  Raises on unique-index violations."""
        if not isinstance(document, Mapping):
            raise StoreError(f"documents must be mappings, got {type(document).__name__}")
        doc = dict(document)
        doc_id = self._next_id
        # Validate all unique indexes before mutating any of them, so a
        # failed insert leaves the collection unchanged.
        for index in self._unique_indexes.values():
            index.add(doc_id, doc)
        try:
            for index in self._hash_indexes.values():
                index.add(doc_id, doc)
            for index in self._geo_indexes.values():
                index.add(doc_id, doc)
        except Exception:
            for index in self._unique_indexes.values():
                index.remove(doc_id, doc)
            raise
        for column in self._date_columns.values():
            column.add(doc_id, doc)
        self._docs[doc_id] = doc
        self._next_id += 1
        return doc_id

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> list[int]:
        """Bulk insert with batched index/column updates.

        The batch is validated up front (mapping-ness, unique-key conflicts
        against the collection *and* within the batch, geo-cell covers);
        a clean batch is then applied index-major — each index/column
        ingests the whole batch in one pass, and date columns defer their
        re-sort to the next probe.  A batch that would fail validation
        falls back to the sequential path, preserving the historical
        semantics exactly: documents before the offending one are inserted,
        then the error is raised.
        """
        docs = list(documents)
        prepared = self._prepare_bulk(docs)
        if prepared is None:
            return [self.insert_one(doc) for doc in docs]
        doc_ids = list(range(self._next_id, self._next_id + len(prepared)))
        for index in self._unique_indexes.values():
            for doc_id, doc in zip(doc_ids, prepared):
                index.add(doc_id, doc)
        for index in self._hash_indexes.values():
            for doc_id, doc in zip(doc_ids, prepared):
                index.add(doc_id, doc)
        for index in self._geo_indexes.values():
            for doc_id, doc in zip(doc_ids, prepared):
                index.add(doc_id, doc)
        for column in self._date_columns.values():
            column.bulk_add(doc_ids, prepared)
        for doc_id, doc in zip(doc_ids, prepared):
            self._docs[doc_id] = doc
        self._next_id += len(prepared)
        return doc_ids

    def _prepare_bulk(self, docs: "list[Any]") -> "list[dict] | None":
        """Validate a batch for the fast path; ``None`` demands fallback."""
        prepared: list[dict] = []
        for document in docs:
            if not isinstance(document, Mapping):
                return None
            prepared.append(dict(document))
        for field_path, index in self._unique_indexes.items():
            seen: set[Any] = set()
            for doc in prepared:
                value = get_path(doc, field_path)
                if is_missing(value):
                    return None
                key = _hashable(value)
                if key in seen or index.find(value) is not None:
                    return None
                seen.add(key)
        for index in self._geo_indexes.values():
            for doc in prepared:
                try:
                    index.check(doc)
                except Exception:
                    return None
        return prepared

    def delete_one(self, query: Mapping[str, Any]) -> int:
        """Delete the first matching document; returns number deleted (0/1)."""
        for doc_id in self._plan_candidates(query)[0]:
            doc = self._docs.get(doc_id)
            if doc is not None and matches(doc, query):
                self._remove(doc_id)
                return 1
        return 0

    def delete_many(self, query: Mapping[str, Any]) -> int:
        """Delete all matching documents; returns the count."""
        victims = [doc_id for doc_id in self._plan_candidates(query)[0]
                   if doc_id in self._docs and matches(self._docs[doc_id], query)]
        for doc_id in victims:
            self._remove(doc_id)
        return len(victims)

    def update_one(self, query: Mapping[str, Any],
                   update: "Mapping[str, Any] | Callable[[dict], dict]") -> int:
        """Update the first matching document.

        ``update`` is either a ``{"$set": {...}}`` document or a callable
        receiving a copy of the document and returning the replacement.
        Returns the number of documents updated (0 or 1).
        """
        for doc_id in self._plan_candidates(query)[0]:
            doc = self._docs.get(doc_id)
            if doc is None or not matches(doc, query):
                continue
            new_doc = self._apply_update(doc, update)
            # Validate the replacement against every index that can reject
            # it BEFORE mutating anything: a failing update must leave the
            # document and all indexes exactly as they were (previously the
            # document was removed first, so a unique-key collision or a
            # missing unique field lost it and left indexes half-updated).
            self._validate_replacement(doc_id, new_doc)
            self._remove(doc_id)
            # Reinsert under the same id to keep external references stable.
            for index in self._unique_indexes.values():
                index.add(doc_id, new_doc)
            for index in self._hash_indexes.values():
                index.add(doc_id, new_doc)
            for index in self._geo_indexes.values():
                index.add(doc_id, new_doc)
            for column in self._date_columns.values():
                column.add(doc_id, new_doc)
            self._docs[doc_id] = new_doc
            return 1
        return 0

    def _validate_replacement(self, doc_id: int, new_doc: dict) -> None:
        """Raise if re-indexing ``new_doc`` under ``doc_id`` would fail.

        Covers every index whose ``add`` can raise: unique indexes (missing
        field, key collision with a *different* document — the same check
        ``UniqueIndex.add`` itself commits), hash indexes (unhashable
        values), and geo indexes (oversized cell covers).  Date columns
        accept any document.
        """
        for index in self._unique_indexes.values():
            index.check(doc_id, new_doc)
        for index in self._hash_indexes.values():
            index.check(new_doc)  # raises on unhashable values
        for index in self._geo_indexes.values():
            index.check(new_doc)  # raises on oversized cell covers

    @staticmethod
    def _apply_update(doc: dict, update: "Mapping[str, Any] | Callable[[dict], dict]") -> dict:
        if callable(update):
            new_doc = update(copy.deepcopy(doc))
            if not isinstance(new_doc, dict):
                raise StoreError("update callable must return a dict")
            return new_doc
        if not isinstance(update, Mapping) or set(update) - {"$set", "$unset"}:
            raise StoreError("update document must contain only $set/$unset")
        new_doc = copy.deepcopy(doc)
        for path, value in (update.get("$set") or {}).items():
            _set_path(new_doc, path, value)
        for path in (update.get("$unset") or {}):
            _unset_path(new_doc, path)
        return new_doc

    def _remove(self, doc_id: int) -> None:
        doc = self._docs.pop(doc_id)
        for index in self._unique_indexes.values():
            index.remove(doc_id, doc)
        for index in self._hash_indexes.values():
            index.remove(doc_id, doc)
        for index in self._geo_indexes.values():
            index.remove(doc_id, doc)
        for column in self._date_columns.values():
            column.remove(doc_id, doc)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._docs)

    def count(self, query: "Mapping[str, Any] | None" = None) -> int:
        """Number of documents matching ``query`` (all when ``None``).

        Counts over in-place references — no document is copied.
        """
        if not query:
            return len(self._docs)
        matched, _, _ = self._matching_docs(query)
        return len(matched)

    def get(self, key: Any) -> dict:
        """Primary-key point lookup; raises when absent or no primary key."""
        if self.primary_key is None:
            raise StoreError(f"collection {self.name!r} has no primary key")
        doc_id = self._unique_indexes[self.primary_key].find(key)
        if doc_id is None:
            raise DocumentNotFoundError(
                f"no document with {self.primary_key}={key!r} in {self.name!r}")
        return copy.deepcopy(self._docs[doc_id])

    def _plan_candidates(self, query: Mapping[str, Any],
                         *, hint: "str | None" = None,
                         ) -> tuple[list[int], str]:
        """Choose an access path; returns (candidate doc ids, plan name).

        All applicable condition sources — posting arrays, date columns,
        geohash buckets — are intersected; the candidates are a superset of
        the exact answer, in ascending doc-id order on every path, so the
        caller's verification loop produces plan-independent results.
        ``hint="scan"`` forces the sequential path.
        """
        if hint is not None and hint != "scan":
            raise StoreError(f"unknown plan hint {hint!r}; expected 'scan'")
        if not query or hint == "scan":
            return sorted(self._docs.keys()), "scan"
        # Unique-index equality short-circuits: the candidate set is at most
        # one doc per pinned value, already minimal.
        for field_path, index in self._unique_indexes.items():
            values = extract_equality(query, field_path)
            if values is not None:
                ids = sorted({i for i in (index.find(v) for v in values)
                              if i is not None})
                return ids, f"unique_index:{field_path}"
        # Gather (tag, estimated size, materializer) per applicable source.
        # Estimates are O(1) probes (posting lengths, searchsorted counts);
        # geo covers have no cheap probe and estimate None (sorted last).
        sources: "list[tuple[str, int | None, Callable[[], np.ndarray]]]" = []
        for field, condition in _iter_field_conditions(query):
            probe = {field: condition}
            hash_index = self._hash_indexes.get(field)
            if hash_index is not None:
                values = extract_equality(probe, field)
                if values is not None and _scalar_values(values):
                    sources.append((
                        f"hash_index:{field}",
                        hash_index.estimate_any(values),
                        lambda hi=hash_index, v=values: hi.postings_any(v)))
                    continue
                all_values = extract_all_values(probe, field)
                if all_values is not None and _scalar_values(all_values):
                    sources.append((
                        f"hash_index:{field}",
                        hash_index.estimate_all(all_values),
                        lambda hi=hash_index, v=all_values: hi.postings_all(v)))
                    continue
            date_column = self._date_columns.get(field)
            if date_column is not None:
                bounds = _date_range_bounds(condition)
                if bounds is not None:
                    lo, hi = bounds
                    sources.append((
                        f"date_column:{field}",
                        date_column.estimate_range(lo, hi),
                        lambda dc=date_column, a=lo, b=hi: dc.ids_in_range(a, b)))
                    continue
            geo_index = self._geo_indexes.get(field)
            if geo_index is not None:
                shape = extract_geo(probe, field)
                if shape is not None:
                    sources.append((
                        f"geo_index:{field}", None,
                        lambda gi=geo_index, s=shape: ids_array(
                            gi.candidates(s))))
        if not sources:
            return sorted(self._docs.keys()), "scan"
        # Cost order: materialize ascending by estimated size (unknown-size
        # sources last, declaration order breaking ties).  Intersection is
        # commutative, so only cost moves — the smallest source drives the
        # merge, and an empty running set skips the remaining sources.
        unknown = max((est for _, est, _ in sources if est is not None),
                      default=0) + 1
        order = sorted(range(len(sources)),
                       key=lambda i: (sources[i][1] if sources[i][1] is not None
                                      else unknown, i))
        loaded = 0
        candidates: "np.ndarray | None" = None
        started = time.perf_counter_ns()
        for position in order:
            _, _, materialize = sources[position]
            ids = materialize()
            loaded += int(ids.shape[0])
            if candidates is None:
                candidates = ids
            else:
                candidates = np.intersect1d(candidates, ids,
                                            assume_unique=True)
            if candidates.shape[0] == 0:
                break
        measured_ns = time.perf_counter_ns() - started
        tracing.add_cost(postings_loaded=loaded)
        if len(sources) > 1:
            tracing.add_cost(ids_intersected=loaded)
            self._annotate_store_plan(sources, order, unknown, measured_ns)
        tags = list(dict.fromkeys(sources[i][0] for i in order))
        plan = tags[0] if len(tags) == 1 else "columnar:" + "&".join(tags)
        return candidates.tolist(), plan

    @staticmethod
    def _annotate_store_plan(sources, order: "list[int]",
                             unknown: int, measured_ns: int) -> None:
        """Record the intersection-order decision for ``explain=true``.

        Priced with the intersection unit cost so the chosen (cost-ordered)
        sequence can be compared against the declaration-order alternative
        the legacy planner would have used; when the two coincide the
        reversed (worst-case) order is reported as the rejected
        alternative instead.
        """
        from ..planner import DEFAULT_UNITS
        unit = DEFAULT_UNITS["intersect_ns_per_id"]
        sizes = {i: (sources[i][1] if sources[i][1] is not None else unknown)
                 for i in range(len(sources))}
        declared = list(range(len(sources)))
        alternative = declared if order != declared else declared[::-1]
        def _entry(sequence):
            return {"order": [sources[i][0] for i in sequence],
                    "predicted_ns": round(_intersection_cost_ns(
                        [sizes[i] for i in sequence], unit), 1)}
        tracing.annotate(store_plan={
            "chosen": _entry(order),
            "rejected": [_entry(alternative)],
            "estimated_sizes": {sources[i][0]: int(sizes[i])
                                for i in order},
            "measured_ns": int(measured_ns)})

    def _matching_docs(self, query: "Mapping[str, Any] | None",
                       *, hint: "str | None" = None,
                       ) -> tuple[list[dict], str, int]:
        """Plan, verify, and return matching docs as in-place references."""
        query = query or {}
        candidate_ids, plan = self._plan_candidates(query, hint=hint)
        matched: list[dict] = []
        examined = 0
        for doc_id in candidate_ids:
            doc = self._docs.get(doc_id)
            if doc is None:
                continue
            examined += 1
            if matches(doc, query):
                matched.append(doc)
        tracing.add_cost(docs_examined=examined)
        return matched, plan, examined

    def find(self, query: "Mapping[str, Any] | None" = None, *,
             projection: "list[str] | None" = None,
             sort: "str | None" = None, descending: bool = False,
             limit: "int | None" = None, skip: int = 0,
             hint: "str | None" = None) -> FindResult:
        """Run a query and return matching documents (as copies).

        ``projection`` keeps only the listed top-level fields; ``sort`` is a
        dotted field path; ``limit``/``skip`` paginate after sorting;
        ``hint="scan"`` bypasses the planner.  Only the final post-skip/limit
        page is deep-copied, and each document's sort key is extracted
        exactly once (decorate-sort), not per comparison.
        """
        matched, plan, examined = self._matching_docs(query, hint=hint)
        if sort is not None:
            keys = [_sort_key(get_path(doc, sort)) for doc in matched]
            order = sorted(range(len(matched)), key=keys.__getitem__,
                           reverse=descending)
            matched = [matched[i] for i in order]
        total = len(matched)
        if skip:
            matched = matched[skip:]
        if limit is not None:
            matched = matched[:limit]
        out: list[dict] = []
        for doc in matched:
            if projection is None:
                out.append(copy.deepcopy(doc))
            else:
                out.append({k: copy.deepcopy(doc[k]) for k in projection if k in doc})
        return FindResult(documents=out, plan=plan,
                          candidates_examined=examined, total_matches=total)

    def find_one(self, query: "Mapping[str, Any] | None" = None) -> "dict | None":
        """First matching document, or ``None``."""
        result = self.find(query, limit=1)
        return result.documents[0] if result.documents else None

    def field_values(self, query: "Mapping[str, Any] | None",
                     field_path: str) -> list[Any]:
        """``field_path`` of every matching doc, in candidate order.

        No documents are copied: values are returned by reference, so
        callers must treat them as read-only.  Missing values are skipped.
        This is the zero-copy projection behind filtered similarity search
        (resolving a metadata filter to the allowed patch names).
        """
        matched, _, _ = self._matching_docs(query)
        values = []
        for doc in matched:
            value = get_path(doc, field_path)
            if not is_missing(value):
                values.append(value)
        return values

    def distinct(self, field_path: str,
                 query: "Mapping[str, Any] | None" = None) -> list[Any]:
        """Sorted distinct values of ``field_path`` over matching documents;
        array values contribute their elements (multikey semantics).  Works
        on references — no candidate is copied."""
        values: set[Any] = set()
        for doc in self._matching_docs(query)[0]:
            value = get_path(doc, field_path)
            if is_missing(value):
                continue
            if isinstance(value, (list, tuple)):
                values.update(value)
            else:
                values.add(value)
        return sorted(values, key=repr)


def _sort_key(value: Any) -> tuple:
    """Total order over heterogeneous values: missing first, then by type."""
    if is_missing(value) or value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, repr(value))


def _set_path(doc: dict, path: str, value: Any) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        current = current.setdefault(part, {})
        if not isinstance(current, dict):
            raise StoreError(f"$set path {path!r} crosses a non-document value")
    current[parts[-1]] = value


def _unset_path(doc: dict, path: str) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        nxt = current.get(part)
        if not isinstance(nxt, dict):
            return
        current = nxt
    current.pop(parts[-1], None)
