"""Document collections with index-aware query execution.

A :class:`Collection` stores dict documents under integer doc ids, maintains
secondary indexes, and answers Mongo-style ``find`` queries through a small
planner:

1. if the query pins an indexed field by equality/``$in``, start from that
   index's bucket(s);
2. else if the query has a geo constraint on a geo-indexed field, start from
   the geohash cover candidates;
3. otherwise scan the collection.

Whatever the access path, every candidate is verified against the full query
by :func:`repro.store.matcher.matches`, so plans never change results — only
cost.  ``find`` reports which path it took in :class:`FindResult.plan`,
which the data-tier benchmarks (experiment E11) use to confirm the geohash
index is actually exercised.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..errors import DocumentNotFoundError, IndexError_, StoreError
from .indexes import GeoHashIndex, HashIndex, UniqueIndex
from .matcher import (
    extract_all_values,
    extract_equality,
    extract_geo,
    get_path,
    is_missing,
    matches,
)


@dataclass
class FindResult:
    """Result of :meth:`Collection.find`: matched documents plus plan info."""

    documents: list[dict]
    plan: str = "scan"
    candidates_examined: int = 0

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.documents)

    def __getitem__(self, i: int) -> dict:
        return self.documents[i]


class Collection:
    """A named collection of documents with secondary indexes."""

    def __init__(self, name: str, *, primary_key: "str | None" = None) -> None:
        self.name = name
        self.primary_key = primary_key
        self._docs: dict[int, dict] = {}
        self._next_id = 0
        self._unique_indexes: dict[str, UniqueIndex] = {}
        self._hash_indexes: dict[str, HashIndex] = {}
        self._geo_indexes: dict[str, GeoHashIndex] = {}
        if primary_key is not None:
            self.create_unique_index(primary_key)

    # ------------------------------------------------------------------ #
    # Index management
    # ------------------------------------------------------------------ #

    def create_unique_index(self, field_path: str) -> None:
        """Create a unique index; existing documents are indexed immediately."""
        if field_path in self._unique_indexes:
            return
        index = UniqueIndex(field_path)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._unique_indexes[field_path] = index

    def create_index(self, field_path: str) -> None:
        """Create a (multikey) hash index on ``field_path``."""
        if field_path in self._hash_indexes:
            return
        index = HashIndex(field_path)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._hash_indexes[field_path] = index

    def create_geo_index(self, field_path: str, precision: int = 5) -> None:
        """Create a 2D geohash index on a bbox-valued field."""
        if field_path in self._geo_indexes:
            existing = self._geo_indexes[field_path]
            if existing.precision != precision:
                raise IndexError_(
                    f"geo index on {field_path!r} already exists with "
                    f"precision {existing.precision}")
            return
        index = GeoHashIndex(field_path, precision)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._geo_indexes[field_path] = index

    def drop_index(self, field_path: str) -> None:
        """Drop any secondary index on ``field_path`` (primary key excluded)."""
        if field_path == self.primary_key:
            raise IndexError_("cannot drop the primary key index")
        self._unique_indexes.pop(field_path, None)
        self._hash_indexes.pop(field_path, None)
        self._geo_indexes.pop(field_path, None)

    @property
    def index_fields(self) -> set[str]:
        """All indexed field paths (for introspection/tests)."""
        return (set(self._unique_indexes) | set(self._hash_indexes)
                | set(self._geo_indexes))

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def insert_one(self, document: Mapping[str, Any]) -> int:
        """Insert a document (stored by reference-independent copy); returns
        its internal doc id.  Raises on unique-index violations."""
        if not isinstance(document, Mapping):
            raise StoreError(f"documents must be mappings, got {type(document).__name__}")
        doc = dict(document)
        doc_id = self._next_id
        # Validate all unique indexes before mutating any of them, so a
        # failed insert leaves the collection unchanged.
        for index in self._unique_indexes.values():
            index.add(doc_id, doc)
        try:
            for index in self._hash_indexes.values():
                index.add(doc_id, doc)
            for index in self._geo_indexes.values():
                index.add(doc_id, doc)
        except Exception:
            for index in self._unique_indexes.values():
                index.remove(doc_id, doc)
            raise
        self._docs[doc_id] = doc
        self._next_id += 1
        return doc_id

    def insert_many(self, documents: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert documents one by one; stops at the first failure."""
        return [self.insert_one(doc) for doc in documents]

    def delete_one(self, query: Mapping[str, Any]) -> int:
        """Delete the first matching document; returns number deleted (0/1)."""
        for doc_id in self._plan_candidates(query)[0]:
            doc = self._docs.get(doc_id)
            if doc is not None and matches(doc, query):
                self._remove(doc_id)
                return 1
        return 0

    def delete_many(self, query: Mapping[str, Any]) -> int:
        """Delete all matching documents; returns the count."""
        victims = [doc_id for doc_id in self._plan_candidates(query)[0]
                   if matches(self._docs[doc_id], query)]
        for doc_id in victims:
            self._remove(doc_id)
        return len(victims)

    def update_one(self, query: Mapping[str, Any],
                   update: "Mapping[str, Any] | Callable[[dict], dict]") -> int:
        """Update the first matching document.

        ``update`` is either a ``{"$set": {...}}`` document or a callable
        receiving a copy of the document and returning the replacement.
        Returns the number of documents updated (0 or 1).
        """
        for doc_id in self._plan_candidates(query)[0]:
            doc = self._docs.get(doc_id)
            if doc is None or not matches(doc, query):
                continue
            new_doc = self._apply_update(doc, update)
            self._remove(doc_id)
            # Reinsert under the same id to keep external references stable.
            for index in self._unique_indexes.values():
                index.add(doc_id, new_doc)
            for index in self._hash_indexes.values():
                index.add(doc_id, new_doc)
            for index in self._geo_indexes.values():
                index.add(doc_id, new_doc)
            self._docs[doc_id] = new_doc
            return 1
        return 0

    @staticmethod
    def _apply_update(doc: dict, update: "Mapping[str, Any] | Callable[[dict], dict]") -> dict:
        if callable(update):
            new_doc = update(copy.deepcopy(doc))
            if not isinstance(new_doc, dict):
                raise StoreError("update callable must return a dict")
            return new_doc
        if not isinstance(update, Mapping) or set(update) - {"$set", "$unset"}:
            raise StoreError("update document must contain only $set/$unset")
        new_doc = copy.deepcopy(doc)
        for path, value in (update.get("$set") or {}).items():
            _set_path(new_doc, path, value)
        for path in (update.get("$unset") or {}):
            _unset_path(new_doc, path)
        return new_doc

    def _remove(self, doc_id: int) -> None:
        doc = self._docs.pop(doc_id)
        for index in self._unique_indexes.values():
            index.remove(doc_id, doc)
        for index in self._hash_indexes.values():
            index.remove(doc_id, doc)
        for index in self._geo_indexes.values():
            index.remove(doc_id, doc)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._docs)

    def count(self, query: "Mapping[str, Any] | None" = None) -> int:
        """Number of documents matching ``query`` (all when ``None``)."""
        if not query:
            return len(self._docs)
        return len(self.find(query).documents)

    def get(self, key: Any) -> dict:
        """Primary-key point lookup; raises when absent or no primary key."""
        if self.primary_key is None:
            raise StoreError(f"collection {self.name!r} has no primary key")
        doc_id = self._unique_indexes[self.primary_key].find(key)
        if doc_id is None:
            raise DocumentNotFoundError(
                f"no document with {self.primary_key}={key!r} in {self.name!r}")
        return copy.deepcopy(self._docs[doc_id])

    def _plan_candidates(self, query: Mapping[str, Any]) -> tuple[list[int], str]:
        """Choose an access path; returns (candidate doc ids, plan name)."""
        if query:
            # 1. unique index equality
            for field_path, index in self._unique_indexes.items():
                values = extract_equality(query, field_path)
                if values is not None:
                    ids = [i for i in (index.find(v) for v in values) if i is not None]
                    return ids, f"unique_index:{field_path}"
            # 2. hash index equality / $in / $all
            for field_path, index in self._hash_indexes.items():
                values = extract_equality(query, field_path)
                if values is not None:
                    return sorted(index.find_any(values)), f"hash_index:{field_path}"
                all_values = extract_all_values(query, field_path)
                if all_values is not None:
                    # Any one value gives a superset; pick the rarest bucket.
                    best = min(all_values, key=lambda v: len(index.find(v)))
                    return sorted(index.find(best)), f"hash_index:{field_path}"
            # 3. geo index
            for field_path, index in self._geo_indexes.items():
                shape = extract_geo(query, field_path)
                if shape is not None:
                    return sorted(index.candidates(shape)), f"geo_index:{field_path}"
        return list(self._docs.keys()), "scan"

    def find(self, query: "Mapping[str, Any] | None" = None, *,
             projection: "list[str] | None" = None,
             sort: "str | None" = None, descending: bool = False,
             limit: "int | None" = None, skip: int = 0) -> FindResult:
        """Run a query and return matching documents (as copies).

        ``projection`` keeps only the listed top-level fields; ``sort`` is a
        dotted field path; ``limit``/``skip`` paginate after sorting.
        """
        query = query or {}
        candidate_ids, plan = self._plan_candidates(query)
        matched: list[dict] = []
        examined = 0
        for doc_id in candidate_ids:
            doc = self._docs.get(doc_id)
            if doc is None:
                continue
            examined += 1
            if matches(doc, query):
                matched.append(doc)
        if sort is not None:
            matched.sort(key=lambda d: _sort_key(get_path(d, sort)), reverse=descending)
        if skip:
            matched = matched[skip:]
        if limit is not None:
            matched = matched[:limit]
        out: list[dict] = []
        for doc in matched:
            if projection is None:
                out.append(copy.deepcopy(doc))
            else:
                out.append({k: copy.deepcopy(doc[k]) for k in projection if k in doc})
        return FindResult(documents=out, plan=plan, candidates_examined=examined)

    def find_one(self, query: "Mapping[str, Any] | None" = None) -> "dict | None":
        """First matching document, or ``None``."""
        result = self.find(query, limit=1)
        return result.documents[0] if result.documents else None

    def distinct(self, field_path: str,
                 query: "Mapping[str, Any] | None" = None) -> list[Any]:
        """Sorted distinct values of ``field_path`` over matching documents;
        array values contribute their elements (multikey semantics)."""
        values: set[Any] = set()
        for doc in self.find(query).documents:
            value = get_path(doc, field_path)
            if is_missing(value):
                continue
            if isinstance(value, (list, tuple)):
                values.update(value)
            else:
                values.add(value)
        return sorted(values, key=repr)


def _sort_key(value: Any) -> tuple:
    """Total order over heterogeneous values: missing first, then by type."""
    if is_missing(value) or value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, repr(value))


def _set_path(doc: dict, path: str, value: Any) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        current = current.setdefault(part, {})
        if not isinstance(current, dict):
            raise StoreError(f"$set path {path!r} crosses a non-document value")
    current[parts[-1]] = value


def _unset_path(doc: dict, path: str) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        nxt = current.get(part)
        if not isinstance(nxt, dict):
            return
        current = nxt
    current.pop(parts[-1], None)
