"""In-memory document store standing in for EarthQube's MongoDB data tier.

The paper's data tier (Section 3.2) is MongoDB holding four collections
(metadata, image data, rendered images, feedback), with a 2D geohash index
on the ``location`` attribute and an automatically indexed primary key.
This package reproduces those mechanisms:

* :class:`Database` / :class:`Collection` — named collections of dict
  documents with insert/find/update/delete,
* a Mongo-style query language (``$eq``, ``$in``, ``$all``, ``$and``,
  ``$geoIntersects`` ...) evaluated by :mod:`repro.store.matcher`,
* hash and unique indexes plus a geohash-backed 2D index
  (:mod:`repro.store.indexes`), selected by a small query planner,
* crash-safe durability: a write-ahead log (:mod:`repro.store.wal`),
  atomic incremental checkpoints (:mod:`repro.store.snapshot`), and a
  deterministic crash-point fault-injection harness
  (:mod:`repro.store.faults`).
"""

from .collection import Collection, FindResult
from .columnar import SortedDateColumn, iso_to_int64
from .database import Database
from .faults import CRASH_POINTS, CrashPoint, FaultInjector
from .indexes import GeoHashIndex, HashIndex, UniqueIndex
from .matcher import matches
from .snapshot import LoadedSnapshot, SnapshotInfo, SnapshotManager
from .wal import WALRecord, WriteAheadLog

__all__ = [
    "Database",
    "Collection",
    "FindResult",
    "HashIndex",
    "UniqueIndex",
    "GeoHashIndex",
    "SortedDateColumn",
    "iso_to_int64",
    "matches",
    "WriteAheadLog",
    "WALRecord",
    "SnapshotManager",
    "SnapshotInfo",
    "LoadedSnapshot",
    "FaultInjector",
    "CrashPoint",
    "CRASH_POINTS",
]
