"""Database persistence: JSON snapshot of collections and their indexes.

The metadata/feedback collections are JSON-native; binary payloads (image
bands, rendered images) are encoded as base64 so a full EarthQube data tier
can be checkpointed and restored.  Index definitions are persisted and
rebuilt on load (indexes themselves are derived state).

Two properties are load-bearing for the durability tier built on top
(:mod:`repro.store.wal`, :mod:`repro.store.snapshot`):

* **Crash-atomic writes** — :func:`save_database` stages the snapshot in a
  temp file *in the target directory*, fsyncs it, and commits with
  ``os.replace``; a crash mid-save can never destroy the previous good
  snapshot (the old truncate-in-place write left a window where it could).
* **Injective value encoding** — the ``{"__bytes__": ...}`` wrapper for
  binary payloads is escaped when a *user* dict happens to use the
  reserved keys, so ``{"__bytes__": "x"}`` round-trips as that dict, not
  as ``bytes``.  :func:`encode_value`/:func:`decode_value` are exported
  for the WAL's record payloads, which must survive the same round trip.
"""

from __future__ import annotations

import base64
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..errors import StoreError
from .collection import Collection
from .database import Database

# Version 2 adds the reserved-key escape ("__esc__").  Version 1 files
# (which could not have contained escapes) decode unchanged.
_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

_RESERVED_KEYS = frozenset({"__bytes__", "__esc__"})


def encode_value(value: Any) -> Any:
    """JSON-encode a document value, wrapping ``bytes`` as base64.

    Injective: a user dict using the reserved ``__bytes__``/``__esc__``
    keys is wrapped in an escape marker so :func:`decode_value` returns it
    verbatim instead of mistaking it for an encoded binary payload.
    """
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        encoded = {k: encode_value(v) for k, v in value.items()}
        if _RESERVED_KEYS & set(value):
            return {"__esc__": True, "value": encoded}
        return encoded
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__esc__", "value"} and value["__esc__"] is True:
            # An escaped user dict: its items were encoded individually but
            # the dict itself is plain data — return it without re-checking
            # for markers (that is exactly what the escape suppresses).
            return {k: decode_value(v) for k, v in value["value"].items()}
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


# Historical private names, kept because the durability tier and tests grew
# against both spellings.
_encode_value = encode_value
_decode_value = decode_value


def write_file_atomic(path: "str | os.PathLike", data: bytes) -> None:
    """Write ``data`` to ``path`` crash-atomically.

    Stages in a temp file in the *same directory* (``os.replace`` must not
    cross filesystems), fsyncs the data, then commits with ``os.replace``
    — at every instant the path holds either the old complete content or
    the new complete content, never a torn mix.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent,
                                    prefix=target.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _index_spec(collection: Collection) -> dict:
    return {
        "primary_key": collection.primary_key,
        "unique": [f for f in collection._unique_indexes if f != collection.primary_key],
        "hash": list(collection._hash_indexes),
        "geo": {field: index.precision
                for field, index in collection._geo_indexes.items()},
        "date_columns": list(collection._date_columns),
    }


def database_snapshot(db: Database) -> dict:
    """The JSON-compatible snapshot dict of a whole database."""
    snapshot = {
        "format_version": _FORMAT_VERSION,
        "name": db.name,
        "collections": {},
    }
    for name in db.collection_names():
        collection = db[name]
        snapshot["collections"][name] = {
            "indexes": _index_spec(collection),
            "documents": [encode_value(doc)
                          for doc in collection.find().documents],
        }
    return snapshot


def database_from_snapshot(snapshot: dict) -> Database:
    """Rebuild a database (documents + index definitions) from a snapshot."""
    if snapshot.get("format_version") not in _SUPPORTED_VERSIONS:
        raise StoreError(
            f"unsupported snapshot version {snapshot.get('format_version')!r}")
    db = Database(snapshot.get("name", "restored"))
    for name, payload in snapshot["collections"].items():
        spec = payload["indexes"]
        collection = db.create_collection(name, primary_key=spec.get("primary_key"))
        for field in spec.get("unique", []):
            collection.create_unique_index(field)
        for field in spec.get("hash", []):
            collection.create_index(field)
        for field, precision in spec.get("geo", {}).items():
            collection.create_geo_index(field, precision=precision)
        for field in spec.get("date_columns", []):
            collection.create_date_column(field)
        documents = [decode_value(doc) for doc in payload["documents"]]
        collection.insert_many(documents)
    return db


def save_database(db: Database, path: "str | os.PathLike") -> None:
    """Write a database snapshot to a JSON file, crash-atomically."""
    payload = json.dumps(database_snapshot(db)).encode("utf-8")
    write_file_atomic(path, payload)


def load_database(path: "str | os.PathLike") -> Database:
    """Restore a database from :func:`save_database` output."""
    source = Path(path)
    if not source.exists():
        raise StoreError(f"no database snapshot at {source}")
    with open(source, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    return database_from_snapshot(snapshot)
