"""Database persistence: JSON snapshot of collections and their indexes.

The metadata/feedback collections are JSON-native; binary payloads (image
bands, rendered images) are encoded as base64 so a full EarthQube data tier
can be checkpointed and restored.  Index definitions are persisted and
rebuilt on load (indexes themselves are derived state).
"""

from __future__ import annotations

import base64
import json
import os
from pathlib import Path
from typing import Any

from ..errors import StoreError
from .collection import Collection
from .database import Database

_FORMAT_VERSION = 1


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def _index_spec(collection: Collection) -> dict:
    return {
        "primary_key": collection.primary_key,
        "unique": [f for f in collection._unique_indexes if f != collection.primary_key],
        "hash": list(collection._hash_indexes),
        "geo": {field: index.precision
                for field, index in collection._geo_indexes.items()},
        "date_columns": list(collection._date_columns),
    }


def save_database(db: Database, path: "str | os.PathLike") -> None:
    """Write a database snapshot to a JSON file."""
    snapshot = {
        "format_version": _FORMAT_VERSION,
        "name": db.name,
        "collections": {},
    }
    for name in db.collection_names():
        collection = db[name]
        snapshot["collections"][name] = {
            "indexes": _index_spec(collection),
            "documents": [_encode_value(doc)
                          for doc in collection.find().documents],
        }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle)


def load_database(path: "str | os.PathLike") -> Database:
    """Restore a database from :func:`save_database` output."""
    source = Path(path)
    if not source.exists():
        raise StoreError(f"no database snapshot at {source}")
    with open(source, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if snapshot.get("format_version") != _FORMAT_VERSION:
        raise StoreError(
            f"unsupported snapshot version {snapshot.get('format_version')!r}")
    db = Database(snapshot.get("name", "restored"))
    for name, payload in snapshot["collections"].items():
        spec = payload["indexes"]
        collection = db.create_collection(name, primary_key=spec.get("primary_key"))
        for field in spec.get("unique", []):
            collection.create_unique_index(field)
        for field in spec.get("hash", []):
            collection.create_index(field)
        for field, precision in spec.get("geo", {}).items():
            collection.create_geo_index(field, precision=precision)
        for field in spec.get("date_columns", []):
            collection.create_date_column(field)
        documents = [_decode_value(doc) for doc in payload["documents"]]
        collection.insert_many(documents)
    return db
