"""A named set of collections — the MongoDB-server stand-in.

EarthQube's data tier holds exactly four collections (paper, Section 3.2):
``metadata``, ``image_data``, ``rendered_images``, and ``feedback``.
:func:`Database.earthqube_schema` creates them with the indexes the paper
describes: the metadata collection gets a geohash 2D index on ``location``
and hash indexes on the queryable ``properties`` attributes, while the image
collections are keyed by patch name (the "automatically indexed" primary
key).
"""

from __future__ import annotations

from typing import Iterator

from ..errors import CollectionNotFoundError, StoreError
from .collection import Collection

METADATA = "metadata"
IMAGE_DATA = "image_data"
RENDERED_IMAGES = "rendered_images"
FEEDBACK = "feedback"


class Database:
    """A collection namespace with create/get/drop semantics."""

    def __init__(self, name: str = "earthqube") -> None:
        self.name = name
        self._collections: dict[str, Collection] = {}

    def create_collection(self, name: str, *, primary_key: "str | None" = None) -> Collection:
        """Create and return a collection; fails if the name is taken."""
        if name in self._collections:
            raise StoreError(f"collection {name!r} already exists in database {self.name!r}")
        collection = Collection(name, primary_key=primary_key)
        self._collections[name] = collection
        return collection

    def __getitem__(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionNotFoundError(
                f"no collection {name!r} in database {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._collections

    def __iter__(self) -> Iterator[str]:
        return iter(self._collections)

    def collection_names(self) -> list[str]:
        """Sorted names of all collections."""
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Remove a collection and all its documents."""
        if name not in self._collections:
            raise CollectionNotFoundError(
                f"no collection {name!r} in database {self.name!r}")
        del self._collections[name]

    @classmethod
    def earthqube_schema(cls, *, geo_precision: int = 5) -> "Database":
        """Create the four EarthQube collections with the paper's indexes."""
        db = cls("earthqube")
        metadata = db.create_collection(METADATA, primary_key="name")
        metadata.create_geo_index("location", precision=geo_precision)
        metadata.create_index("properties.labels")
        metadata.create_index("properties.label_chars")
        metadata.create_index("properties.season")
        metadata.create_index("properties.country")
        metadata.create_index("properties.satellites")
        metadata.create_date_column("properties.acquisition_date")
        db.create_collection(IMAGE_DATA, primary_key="name")
        db.create_collection(RENDERED_IMAGES, primary_key="name")
        db.create_collection(FEEDBACK)
        return db
