"""Write-ahead log: crash-durable intent journal for store/CBIR mutations.

Every mutation that reaches the durable system appends one record *before*
the in-memory apply (:class:`~repro.earthqube.durability.DurableEarthQube`
wires the call sites).  After a crash, replaying the log onto the last
checkpoint reproduces the exact pre-crash state.

On-disk format
--------------

A 16-byte file header (``EQWAL001`` magic + little-endian ``uint64`` base
sequence — the sequence number the log starts *after*), followed by
length-prefixed records::

    uint32 length | uint32 crc32(body) | body

``body`` is UTF-8 JSON ``{"seq": n, "op": "...", "payload": {...}}`` with
binary/array payload values wrapped by :func:`encode_payload`.  Sequence
numbers are assigned monotonically by the log and never reused — a
checkpoint records the sequence it covers and :meth:`WriteAheadLog.truncate`
drops everything at or below it while the numbering continues.

Torn tails vs corruption
------------------------

A crash can tear the *final* record (header without body, short body, or a
body whose checksum fails with nothing after it): replay detects and drops
it — the mutation was never acknowledged as durable.  A checksum failure
*mid-log* (valid data after the bad record) cannot come from a torn write;
it means damage at rest, and replay refuses to guess: it raises
:class:`~repro.errors.WALCorruptionError` naming the offset.

Fsync policy
------------

``always`` fsyncs every record (a crash loses nothing acknowledged),
``interval`` fsyncs every N records (bounded loss window, the default
trade), ``off`` leaves flushing to the OS (benchmarks; crash loss up to the
whole OS buffer).  The policy is count-based, not time-based, so tests and
benchmarks are deterministic.
"""

from __future__ import annotations

import base64
import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import DurabilityError, ValidationError, WALCorruptionError
from .faults import NO_FAULTS, FaultInjector

_MAGIC = b"EQWAL001"
_HEADER = struct.Struct("<8sQ")       # magic, base sequence
_RECORD_HEADER = struct.Struct("<II")  # body length, crc32(body)

FSYNC_POLICIES = ("always", "interval", "off")

_RESERVED = frozenset({"__bytes__", "__nd__", "__esc__"})


def encode_payload(value: Any) -> Any:
    """JSON-encode a WAL payload value.

    Extends the persistence codec with numpy arrays (dtype + shape + raw
    little-endian bytes, bit-exact round trip) and applies the same
    reserved-key escape so user dicts can never be mistaken for markers.
    """
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        return {"__nd__": {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "data": base64.b64encode(array.tobytes()).decode("ascii"),
        }}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        encoded = {str(k): encode_payload(v) for k, v in value.items()}
        if _RESERVED & set(encoded):
            return {"__esc__": True, "value": encoded}
        return encoded
    if isinstance(value, (list, tuple)):
        return [encode_payload(v) for v in value]
    return value


def decode_payload(value: Any) -> Any:
    """Invert :func:`encode_payload`."""
    if isinstance(value, dict):
        if set(value) == {"__esc__", "value"} and value["__esc__"] is True:
            return {k: decode_payload(v) for k, v in value["value"].items()}
        if set(value) == {"__nd__"}:
            spec = value["__nd__"]
            data = base64.b64decode(spec["data"])
            return np.frombuffer(data, dtype=np.dtype(spec["dtype"])).reshape(
                spec["shape"]).copy()
        if set(value) == {"__bytes__"}:
            return base64.b64decode(value["__bytes__"])
        return {k: decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    return value


@dataclass(frozen=True)
class WALRecord:
    """One replayable mutation: sequence number, operation, payload."""

    seq: int
    op: str
    payload: Any


class WriteAheadLog:
    """Append-before-apply mutation journal (see module docstring)."""

    def __init__(self, path: "str | os.PathLike", *,
                 fsync: str = "interval", fsync_interval: int = 8,
                 faults: "FaultInjector | None" = None,
                 metrics=None) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValidationError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if fsync_interval < 1:
            raise ValidationError(
                f"fsync_interval must be >= 1, got {fsync_interval}")
        self.path = Path(path)
        self.fsync_policy = fsync
        self.fsync_interval = fsync_interval
        self.faults = faults if faults is not None else NO_FAULTS
        self._metrics = metrics
        self._since_fsync = 0
        self._records: list = []  # only the count matters; see _scan
        if self.path.exists():
            records, valid_end, base_seq = self._scan(self.path)
            # A torn tail survives on disk until now; cut it off so new
            # appends continue from the last *valid* record.
            if valid_end < self.path.stat().st_size:
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
            self._base_seq = base_seq
            self._last_seq = records[-1].seq if records else base_seq
            self._record_count = len(records)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._base_seq = 0
            self._last_seq = 0
            self._record_count = 0
            with open(self.path, "wb") as handle:
                handle.write(_HEADER.pack(_MAGIC, 0))
                handle.flush()
                os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")
        self._export_gauges()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest record (base when empty)."""
        return self._last_seq

    @property
    def base_seq(self) -> int:
        """The sequence this log starts after (checkpoint coverage)."""
        return self._base_seq

    @property
    def record_count(self) -> int:
        """Records currently in the log file."""
        return self._record_count

    def _export_gauges(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("wal.records").set(self._record_count)
            self._metrics.gauge("wal.seq").set(self._last_seq)

    # ------------------------------------------------------------------ #
    # Append path
    # ------------------------------------------------------------------ #

    def append(self, op: str, payload: Any) -> int:
        """Journal one mutation; returns its sequence number.

        The record is on its way to disk (per the fsync policy) when this
        returns — the caller applies the mutation in memory only *after*.
        A failure here (including an injected crash) leaves the in-memory
        state untouched.
        """
        seq = self._last_seq + 1
        body = json.dumps({"seq": seq, "op": op,
                           "payload": encode_payload(payload)},
                          separators=(",", ":")).encode("utf-8")
        header = _RECORD_HEADER.pack(len(body), zlib.crc32(body))
        # Header first, flushed separately: a crash between the two writes
        # leaves a header that promises more bytes than the file holds —
        # exactly the torn tail replay must drop.
        self._handle.write(header)
        self._handle.flush()
        self.faults.fire("wal.mid_record")
        self._handle.write(body)
        self._handle.flush()
        self.faults.fire("wal.before_fsync")
        self._maybe_fsync()
        self.faults.fire("wal.after_fsync")
        self._last_seq = seq
        self._record_count += 1
        self._export_gauges()
        return seq

    def _maybe_fsync(self) -> None:
        if self.fsync_policy == "off":
            return
        self._since_fsync += 1
        if (self.fsync_policy == "always"
                or self._since_fsync >= self.fsync_interval):
            self._fsync_now()

    def _fsync_now(self) -> None:
        start = time.perf_counter()
        os.fsync(self._handle.fileno())
        if self._metrics is not None:
            self._metrics.histogram("wal.fsync").record(
                time.perf_counter() - start)
        self._since_fsync = 0

    def sync(self) -> None:
        """Force everything buffered onto disk regardless of policy."""
        self._handle.flush()
        self._fsync_now()

    # ------------------------------------------------------------------ #
    # Replay path
    # ------------------------------------------------------------------ #

    @classmethod
    def _scan(cls, path: Path) -> "tuple[list[WALRecord], int, int]":
        """Decode a log file: ``(records, valid_end_offset, base_seq)``.

        Applies the torn-tail rule: an incomplete or checksum-failing
        *final* record is dropped (``valid_end_offset`` excludes it);
        anything invalid with valid bytes after it raises
        :class:`WALCorruptionError`.
        """
        data = path.read_bytes()
        if len(data) < _HEADER.size:
            raise WALCorruptionError(
                f"WAL {path} is shorter than its header ({len(data)} bytes)")
        magic, base_seq = _HEADER.unpack_from(data, 0)
        if magic != _MAGIC:
            raise WALCorruptionError(f"WAL {path} has bad magic {magic!r}")
        records: list[WALRecord] = []
        offset = _HEADER.size
        expected = base_seq + 1
        while offset < len(data):
            if offset + _RECORD_HEADER.size > len(data):
                break  # torn tail: header itself is incomplete
            length, crc = _RECORD_HEADER.unpack_from(data, offset)
            body_start = offset + _RECORD_HEADER.size
            body_end = body_start + length
            if body_end > len(data):
                break  # torn tail: body shorter than the header promised
            body = data[body_start:body_end]
            if zlib.crc32(body) != crc:
                if body_end == len(data):
                    break  # torn tail: final record garbled mid-write
                raise WALCorruptionError(
                    f"WAL {path} record at offset {offset} fails its "
                    f"checksum with {len(data) - body_end} valid bytes "
                    f"after it — log damaged at rest")
            try:
                decoded = json.loads(body.decode("utf-8"))
                seq, op = int(decoded["seq"]), str(decoded["op"])
                payload = decode_payload(decoded.get("payload"))
            except (ValueError, KeyError, TypeError) as exc:
                raise WALCorruptionError(
                    f"WAL {path} record at offset {offset} passed its "
                    f"checksum but does not decode: {exc}") from exc
            if seq != expected:
                raise WALCorruptionError(
                    f"WAL {path} record at offset {offset} has sequence "
                    f"{seq}, expected {expected} — log damaged at rest")
            records.append(WALRecord(seq=seq, op=op, payload=payload))
            expected += 1
            offset = body_end
        return records, offset, base_seq

    def replay(self, *, after_seq: "int | None" = None) -> list[WALRecord]:
        """Decode every durable record with ``seq > after_seq``, in order.

        ``after_seq`` defaults to the log's base sequence (i.e. everything
        in the file) — recovery passes the checkpoint's covered sequence.
        """
        self._handle.flush()
        records, _, base_seq = self._scan(self.path)
        floor = base_seq if after_seq is None else after_seq
        return [record for record in records if record.seq > floor]

    # ------------------------------------------------------------------ #
    # Truncation (after a checkpoint)
    # ------------------------------------------------------------------ #

    def truncate(self, upto_seq: int) -> int:
        """Drop every record with ``seq <= upto_seq``; returns records kept.

        A checkpoint covering ``upto_seq`` makes those records redundant.
        The trim is crash-atomic: the surviving suffix is staged in a temp
        file (new base sequence in the header), fsynced, and swapped in
        with ``os.replace`` — a crash leaves either the old complete log or
        the new one.
        """
        if upto_seq < self._base_seq:
            raise DurabilityError(
                f"cannot truncate to {upto_seq}: log already starts after "
                f"{self._base_seq}")
        self._handle.flush()
        records, _, _ = self._scan(self.path)
        kept = [record for record in records if record.seq > upto_seq]
        tmp = self.path.with_name(self.path.name + ".truncate.tmp")
        with open(tmp, "wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, upto_seq))
            for record in kept:
                body = json.dumps(
                    {"seq": record.seq, "op": record.op,
                     "payload": encode_payload(record.payload)},
                    separators=(",", ":")).encode("utf-8")
                handle.write(_RECORD_HEADER.pack(len(body), zlib.crc32(body)))
                handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        self.faults.fire("wal.truncate")
        self._handle.close()
        os.replace(tmp, self.path)
        self._handle = open(self.path, "ab")
        self._base_seq = upto_seq
        self._last_seq = kept[-1].seq if kept else upto_seq
        self._record_count = len(kept)
        self._since_fsync = 0
        self._export_gauges()
        return len(kept)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Flush, sync, and release the file handle."""
        if self._handle.closed:
            return
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        finally:
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
