"""Secondary indexes for the document store.

Three index kinds mirror what the paper's data tier relies on:

* :class:`UniqueIndex` — the automatically indexed primary key ("Each
  document has an image patch name attribute that serves as primary key and
  is automatically indexed by MongoDB").
* :class:`HashIndex` — equality lookups on an arbitrary (dotted) field;
  multikey like MongoDB: an array-valued field indexes the document under
  every element.
* :class:`GeoHashIndex` — the 2D geohash index on ``location``: documents
  are bucketed by the geohash cells their bounding box overlaps; a spatial
  query is answered by covering the query's bounding box with cells and
  unioning the buckets (candidates are then exactly filtered by the
  matcher).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import DuplicateKeyError, GeoError, IndexError_
from ..geo import geohash as gh
from ..geo.bbox import BoundingBox
from ..geo.shapes import Shape
from .columnar import ids_array, intersect_id_arrays
from .matcher import get_path, is_missing


def _hashable(value: Any) -> Any:
    """Coerce index keys to hashable form (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


class UniqueIndex:
    """Unique single-field index; rejects duplicate keys on insert."""

    def __init__(self, field: str) -> None:
        self.field = field
        self._by_key: dict[Any, int] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def check(self, doc_id: int, document: Mapping[str, Any]) -> Any:
        """Validate that indexing ``document`` under ``doc_id`` would
        succeed; returns the index key.  Raises (missing field, duplicate
        key) without mutating, so callers can validate before committing —
        this is the single definition of the uniqueness rules."""
        value = get_path(document, self.field)
        if is_missing(value):
            raise IndexError_(f"document {doc_id} is missing unique field {self.field!r}")
        key = _hashable(value)
        existing = self._by_key.get(key)
        if existing is not None and existing != doc_id:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique field {self.field!r}")
        return key

    def add(self, doc_id: int, document: Mapping[str, Any]) -> None:
        self._by_key[self.check(doc_id, document)] = doc_id

    def remove(self, doc_id: int, document: Mapping[str, Any]) -> None:
        key = _hashable(get_path(document, self.field))
        if self._by_key.get(key) == doc_id:
            del self._by_key[key]

    def find(self, value: Any) -> "int | None":
        """The doc id holding ``value``, or ``None``."""
        return self._by_key.get(_hashable(value))


class HashIndex:
    """Multikey equality index: value -> set of doc ids.

    Doubles as the planner's categorical column: each posting set is also
    available as a cached *sorted int64 array* (:meth:`posting_array`), so
    multi-condition plans can AND postings together with vectorized set
    intersection instead of Python set algebra.  Array caches are
    invalidated per key on mutation.
    """

    def __init__(self, field: str) -> None:
        self.field = field
        self._by_key: dict[Any, set[int]] = {}
        self._array_cache: dict[Any, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def _keys_for(self, document: Mapping[str, Any]) -> list[Any]:
        value = get_path(document, self.field)
        if is_missing(value):
            return []
        if isinstance(value, (list, tuple)):
            return [_hashable(v) for v in value]
        return [_hashable(value)]

    def check(self, document: Mapping[str, Any]) -> None:
        """Validate that :meth:`add` would succeed for ``document``.

        Key extraction normalizes lists/dicts, but values like sets (or
        tuples containing them) survive ``_hashable`` unhashed and only
        blow up when inserted into the bucket dict — so probe ``hash()``
        explicitly, without mutating anything.
        """
        for key in self._keys_for(document):
            hash(key)

    def add(self, doc_id: int, document: Mapping[str, Any]) -> None:
        for key in self._keys_for(document):
            self._by_key.setdefault(key, set()).add(doc_id)
            self._array_cache.pop(key, None)

    def remove(self, doc_id: int, document: Mapping[str, Any]) -> None:
        for key in self._keys_for(document):
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(doc_id)
                self._array_cache.pop(key, None)
                if not bucket:
                    del self._by_key[key]

    def find(self, value: Any) -> set[int]:
        """Doc ids whose field equals (or whose array contains) ``value``."""
        return set(self._by_key.get(_hashable(value), ()))

    def find_any(self, values: Iterable[Any]) -> set[int]:
        """Union of :meth:`find` over ``values`` (serves ``$in`` plans)."""
        out: set[int] = set()
        for value in values:
            out |= self.find(value)
        return out

    def estimate_any(self, values: Iterable[Any]) -> int:
        """Cheap upper bound on :meth:`postings_any`'s size: summed posting
        lengths, straight off the bucket dict — no arrays materialized.
        The cost-ordered intersection planner probes this to decide which
        source to load first."""
        return sum(len(self._by_key.get(_hashable(value), ()))
                   for value in values)

    def estimate_all(self, values: Iterable[Any]) -> int:
        """Cheap upper bound on :meth:`postings_all`'s size: the rarest
        posting bounds the intersection."""
        sizes = [len(self._by_key.get(_hashable(value), ()))
                 for value in values]
        return min(sizes) if sizes else 0

    def posting_array(self, value: Any) -> np.ndarray:
        """The sorted int64 doc-id array of one posting (cached)."""
        key = _hashable(value)
        cached = self._array_cache.get(key)
        if cached is None:
            cached = ids_array(self._by_key.get(key, ()))
            self._array_cache[key] = cached
        return cached

    def postings_any(self, values: Iterable[Any]) -> np.ndarray:
        """Sorted unique union of postings (vectorized ``$in``)."""
        arrays = [self.posting_array(value) for value in values]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def postings_all(self, values: Iterable[Any]) -> np.ndarray:
        """Sorted intersection of postings (vectorized ``$all``): only docs
        holding *every* value survive — a tighter candidate superset than
        the single rarest bucket."""
        arrays = [self.posting_array(value) for value in values]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        return intersect_id_arrays(arrays)


class GeoHashIndex:
    """2D geohash index over bounding-box geometries.

    Each document's box is covered by geohash cells at a fixed ``precision``
    and the doc id is inserted in every overlapping cell bucket.  Queries
    cover their own bounding box and union the buckets — a superset of the
    true result that the caller refines with an exact geometric test, which
    is exactly how MongoDB's legacy 2D index serves ``$geoWithin``.
    """

    def __init__(self, field: str, precision: int = 5, *, max_cells_per_doc: int = 512) -> None:
        if not 1 <= precision <= 12:
            raise IndexError_(f"geohash precision must be in [1, 12], got {precision}")
        self.field = field
        self.precision = precision
        self.max_cells_per_doc = max_cells_per_doc
        self._buckets: dict[str, set[int]] = {}

    def __len__(self) -> int:
        return len(self._buckets)

    def _box_for(self, document: Mapping[str, Any]) -> "BoundingBox | None":
        value = get_path(document, self.field)
        if is_missing(value):
            return None
        if isinstance(value, BoundingBox):
            return value
        if isinstance(value, Mapping) and "bbox" in value:
            value = value["bbox"]
        if isinstance(value, (list, tuple)) and len(value) == 4:
            try:
                return BoundingBox.from_tuple(tuple(float(v) for v in value))
            except GeoError:
                return None
        return None

    def _cells_for_box(self, box: BoundingBox) -> list[str]:
        return gh.cover_bbox(box, self.precision, max_cells=self.max_cells_per_doc)

    def check(self, document: Mapping[str, Any]) -> None:
        """Validate that :meth:`add` would succeed for ``document``
        (oversized cell covers raise) without mutating anything."""
        box = self._box_for(document)
        if box is not None:
            self._cells_for_box(box)

    def add(self, doc_id: int, document: Mapping[str, Any]) -> None:
        box = self._box_for(document)
        if box is None:
            return  # documents without geometry are simply not indexed
        for cell in self._cells_for_box(box):
            self._buckets.setdefault(cell, set()).add(doc_id)

    def remove(self, doc_id: int, document: Mapping[str, Any]) -> None:
        box = self._box_for(document)
        if box is None:
            return
        for cell in self._cells_for_box(box):
            bucket = self._buckets.get(cell)
            if bucket is not None:
                bucket.discard(doc_id)
                if not bucket:
                    del self._buckets[cell]

    def candidates(self, shape: Shape) -> set[int]:
        """Doc ids whose cells overlap the shape's bounding box.

        This is a superset of the exact answer; callers must re-check each
        candidate geometrically.
        """
        box = shape.bounding_box()
        try:
            cells = gh.cover_bbox(box, self.precision, max_cells=65536)
        except GeoError:
            # Query box too large for this precision: degrade to everything.
            out: set[int] = set()
            for bucket in self._buckets.values():
                out |= bucket
            return out
        out = set()
        for cell in cells:
            bucket = self._buckets.get(cell)
            if bucket:
                out |= bucket
        return out
