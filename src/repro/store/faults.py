"""Deterministic crash-point fault injection for the durability tier.

A crash-safety claim is only as good as the crashes it was tested against.
This module names every dangerous instant in the WAL/snapshot write paths
(mid-record, before/after ``fsync``, before the atomic ``os.replace`` of a
snapshot file or manifest, before the log truncate) and lets a test *trip*
one of them on its Nth hit: the injected :class:`CrashPoint` aborts the
write exactly there, leaving the on-disk state as a ``kill -9`` at that
instant would — a torn record, an orphaned temp file, a committed snapshot
with an untruncated log.  Recovery is then exercised against that state and
compared byte-for-byte with a never-crashed oracle
(``tests/store/test_crash_recovery.py``).

Injection is deterministic (armed point + hit ordinal, no randomness) so a
failing crash scenario replays exactly.  The default injector is inert:
``fire()`` on an unarmed point is a counter increment and nothing else, so
production paths pay nothing measurable.
"""

from __future__ import annotations

from ..errors import ReproError


class CrashPoint(ReproError):
    """The simulated ``kill -9``: raised at a tripped injection point.

    Deliberately *not* a :class:`~repro.errors.StoreError`: durability code
    must never catch it as a storage failure — it models the process dying,
    so it propagates out of whatever operation was in flight.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


# Every named instant the durability write paths can die at.  Tests iterate
# this list to prove recovery from *each* of them; the WAL/snapshot code
# fires them in exactly these places:
#
# * ``wal.mid_record``        — record header written, body not yet (a torn
#                               tail that replay must drop),
# * ``wal.before_fsync``      — full record in the OS buffer, not yet synced,
# * ``wal.after_fsync``       — record durable, the in-memory apply never ran,
# * ``wal.truncate``          — before the truncated log replaces the old one
#                               (the checkpoint is committed, the log is not
#                               yet trimmed),
# * ``snapshot.after_tmp_write``      — snapshot temp files written + fsynced,
#                                       manifest still points at the previous
#                                       checkpoint,
# * ``snapshot.before_manifest_replace`` — everything staged, the atomic
#                                       commit (manifest replace) not yet done,
# * ``snapshot.after_manifest_replace`` — checkpoint committed; garbage
#                                       collection and log truncation pending.
CRASH_POINTS: tuple[str, ...] = (
    "wal.mid_record",
    "wal.before_fsync",
    "wal.after_fsync",
    "wal.truncate",
    "snapshot.after_tmp_write",
    "snapshot.before_manifest_replace",
    "snapshot.after_manifest_replace",
)


class FaultInjector:
    """Arm a named crash point to trip on its Nth hit.

    One injector is shared by a :class:`~repro.store.wal.WriteAheadLog` and
    its :class:`~repro.store.snapshot.SnapshotManager`, so a scenario can
    count hits across both (e.g. "die at the third fsync overall").
    """

    def __init__(self) -> None:
        self._armed: dict[str, int] = {}
        self._hits: dict[str, int] = {}

    def arm(self, point: str, *, hits: int = 1) -> None:
        """Trip ``point`` on its ``hits``-th :meth:`fire` from now.

        Hit counting restarts on arm, so scenarios compose: arm, run,
        recover, arm the same point deeper, run again.
        """
        if point not in CRASH_POINTS:
            raise ValueError(f"unknown crash point {point!r}; "
                             f"expected one of {CRASH_POINTS}")
        if hits < 1:
            raise ValueError(f"hits must be >= 1, got {hits}")
        self._armed[point] = hits
        self._hits[point] = 0

    def disarm(self, point: "str | None" = None) -> None:
        """Disarm one point (or all of them) without resetting hit counts."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything and zero every hit counter."""
        self._armed.clear()
        self._hits.clear()

    def hit_count(self, point: str) -> int:
        """How many times ``point`` has fired since the last reset/arm."""
        return self._hits.get(point, 0)

    def fire(self, point: str) -> None:
        """Record one pass through ``point``; raise if it is due to trip.

        The point is disarmed as it trips — recovery code running after
        the "crash" reuses the same injector without re-dying.
        """
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        if self._armed.get(point) == count:
            del self._armed[point]
            raise CrashPoint(point, count)


#: Shared inert injector: the default for WAL/snapshot instances that were
#: not handed an explicit one.  Tests construct their own.
NO_FAULTS = FaultInjector()
