"""Mongo-style query matcher.

Evaluates a query document against a stored document.  The supported subset
covers everything EarthQube's services need:

==================  =========================================================
Operator            Meaning
==================  =========================================================
(bare value)        equality (with array-membership semantics like MongoDB)
``$eq`` ``$ne``     equality / negated equality
``$gt(e)/$lt(e)``   ordered comparisons (numbers, strings, dates)
``$in`` ``$nin``    membership in a list of values
``$all``            array field contains all listed values
``$size``           array field has exactly N elements
``$exists``         field presence
``$regex``          string match via :mod:`re` (search semantics)
``$elemMatch``      some array element matches a sub-query
``$not``            negate an operator document
``$and/$or/$nor``   logical connectives over sub-queries
``$geoIntersects``  field bbox intersects a :class:`repro.geo.Shape`
``$geoWithin``      field bbox fully within a :class:`repro.geo.Shape`
==================  =========================================================

Field paths use dotted notation (``"properties.season"``).  Geo operands are
:class:`~repro.geo.shapes.Shape` instances; stored geometries are bounding
boxes in ``(west, south, east, north)`` tuple/list form or the
``{"bbox": [...]}`` dict form written by the ingestion layer.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Mapping

from ..errors import QuerySyntaxError
from ..geo.bbox import BoundingBox
from ..geo.shapes import Rectangle, Shape

_MISSING = object()

_LOGICAL_OPERATORS = {"$and", "$or", "$nor"}


@lru_cache(maxsize=256)
def _compile_pattern(pattern: str) -> "re.Pattern":
    """Compiled form of a ``$regex`` string operand.

    A collection scan evaluates the same query document against every
    stored document; without memoization the pattern would be recompiled
    once per document instead of once per query.
    """
    return re.compile(pattern)


def get_path(document: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted field path; returns the ``_MISSING`` sentinel when
    any intermediate segment is absent or not a mapping."""
    current: Any = document
    for segment in path.split("."):
        if isinstance(current, Mapping) and segment in current:
            current = current[segment]
        else:
            return _MISSING
    return current


def is_missing(value: Any) -> bool:
    """True when :func:`get_path` found no value."""
    return value is _MISSING


def _as_bbox(value: Any) -> BoundingBox | None:
    """Interpret a stored field value as a bounding box, if possible."""
    if isinstance(value, BoundingBox):
        return value
    if isinstance(value, Mapping) and "bbox" in value:
        value = value["bbox"]
    if isinstance(value, (list, tuple)) and len(value) == 4:
        try:
            return BoundingBox.from_tuple(tuple(float(v) for v in value))
        except Exception:
            return None
    return None


def _values_equal(stored: Any, operand: Any) -> bool:
    """MongoDB equality: direct equality, or membership when the stored
    value is an array and the operand is a scalar."""
    if stored is _MISSING:
        return operand is None
    if stored == operand:
        return True
    if isinstance(stored, (list, tuple)) and not isinstance(operand, (list, tuple)):
        return operand in stored
    return False


def _compare(stored: Any, operand: Any, op: str) -> bool:
    if stored is _MISSING:
        return False
    values = stored if isinstance(stored, (list, tuple)) else [stored]
    for value in values:
        try:
            if op == "$gt" and value > operand:
                return True
            if op == "$gte" and value >= operand:
                return True
            if op == "$lt" and value < operand:
                return True
            if op == "$lte" and value <= operand:
                return True
        except TypeError:
            continue  # incomparable types never match, like MongoDB
    return False


def _match_operator(stored: Any, op: str, operand: Any) -> bool:
    if op == "$eq":
        return _values_equal(stored, operand)
    if op == "$ne":
        return not _values_equal(stored, operand)
    if op in ("$gt", "$gte", "$lt", "$lte"):
        return _compare(stored, operand, op)
    if op == "$in":
        if not isinstance(operand, (list, tuple)):
            raise QuerySyntaxError(f"$in requires a list operand, got {type(operand).__name__}")
        return any(_values_equal(stored, item) for item in operand)
    if op == "$nin":
        if not isinstance(operand, (list, tuple)):
            raise QuerySyntaxError(f"$nin requires a list operand, got {type(operand).__name__}")
        return not any(_values_equal(stored, item) for item in operand)
    if op == "$all":
        if not isinstance(operand, (list, tuple)):
            raise QuerySyntaxError(f"$all requires a list operand, got {type(operand).__name__}")
        if not isinstance(stored, (list, tuple)):
            return False
        return all(item in stored for item in operand)
    if op == "$size":
        if not isinstance(operand, int) or isinstance(operand, bool):
            raise QuerySyntaxError(f"$size requires an int operand, got {operand!r}")
        return isinstance(stored, (list, tuple)) and len(stored) == operand
    if op == "$exists":
        present = stored is not _MISSING
        return present if operand else not present
    if op == "$regex":
        if not isinstance(operand, (str, re.Pattern)):
            raise QuerySyntaxError("$regex requires a string or compiled pattern")
        pattern = _compile_pattern(operand) if isinstance(operand, str) else operand
        return isinstance(stored, str) and pattern.search(stored) is not None
    if op == "$elemMatch":
        if not isinstance(operand, Mapping):
            raise QuerySyntaxError("$elemMatch requires a query document")
        if not isinstance(stored, (list, tuple)):
            return False
        for element in stored:
            if isinstance(element, Mapping):
                if matches(element, operand):
                    return True
            elif _match_condition(element, operand):
                return True
        return False
    if op == "$not":
        if not isinstance(operand, Mapping):
            raise QuerySyntaxError("$not requires an operator document")
        return not _match_condition_value(stored, operand)
    if op == "$geoIntersects":
        shape = _as_shape(operand)
        box = _as_bbox(stored)
        return box is not None and shape.intersects_bbox(box)
    if op == "$geoWithin":
        shape = _as_shape(operand)
        box = _as_bbox(stored)
        if box is None:
            return False
        corners = [(box.west, box.south), (box.east, box.south),
                   (box.east, box.north), (box.west, box.north)]
        return all(shape.contains_point(lon, lat) for lon, lat in corners)
    raise QuerySyntaxError(f"unknown query operator: {op}")


def _as_shape(operand: Any) -> Shape:
    if isinstance(operand, Shape):
        return operand
    if isinstance(operand, BoundingBox):
        return Rectangle(operand)
    box = _as_bbox(operand)
    if box is not None:
        return Rectangle(box)
    raise QuerySyntaxError(
        f"geo operators require a Shape, BoundingBox, or bbox tuple, got {type(operand).__name__}")


def _is_operator_doc(value: Any) -> bool:
    return isinstance(value, Mapping) and value and all(
        isinstance(k, str) and k.startswith("$") for k in value)


def _match_condition_value(stored: Any, condition: Any) -> bool:
    """Match a resolved field value against a bare value or operator doc."""
    if _is_operator_doc(condition):
        return all(_match_operator(stored, op, operand) for op, operand in condition.items())
    return _values_equal(stored, condition)


def _match_condition(stored: Any, condition: Any) -> bool:
    return _match_condition_value(stored, condition)


def matches(document: Mapping[str, Any], query: Mapping[str, Any]) -> bool:
    """True when ``document`` satisfies ``query``.

    An empty query matches every document, as in MongoDB.
    """
    if not isinstance(query, Mapping):
        raise QuerySyntaxError(f"query must be a mapping, got {type(query).__name__}")
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            if not isinstance(condition, (list, tuple)) or not condition:
                raise QuerySyntaxError(f"{key} requires a non-empty list of sub-queries")
            sub_results = (matches(document, sub) for sub in condition)
            if key == "$and":
                if not all(sub_results):
                    return False
            elif key == "$or":
                if not any(sub_results):
                    return False
            else:  # $nor
                if any(sub_results):
                    return False
        elif key.startswith("$"):
            raise QuerySyntaxError(f"unknown top-level operator: {key}")
        else:
            stored = get_path(document, key)
            if not _match_condition_value(stored, condition):
                return False
    return True


def extract_equality(query: Mapping[str, Any], field: str) -> "list[Any] | None":
    """Extract the values a query pins ``field`` to, if it does.

    Used by the query planner: returns a list of candidate values when the
    query contains ``{field: value}`` or ``{field: {"$eq"/"$in": ...}}`` at
    the top level (possibly under ``$and``); returns ``None`` when the field
    is unconstrained by equality.
    """
    condition = query.get(field, _MISSING)
    if condition is not _MISSING:
        if _is_operator_doc(condition):
            if "$eq" in condition:
                return [condition["$eq"]]
            if "$in" in condition and isinstance(condition["$in"], (list, tuple)):
                return list(condition["$in"])
        elif not isinstance(condition, Mapping):
            return [condition]
    for sub in query.get("$and", []) or []:
        if isinstance(sub, Mapping):
            found = extract_equality(sub, field)
            if found is not None:
                return found
    return None


def extract_all_values(query: Mapping[str, Any], field: str) -> "list[Any] | None":
    """Extract the operand of an ``$all`` condition on ``field``, if present
    (possibly under ``$and``).  Any single value of the list gives a correct
    index-candidate superset, since matching documents contain all of them."""
    condition = query.get(field)
    if _is_operator_doc(condition) and "$all" in condition:
        operand = condition["$all"]
        if isinstance(operand, (list, tuple)) and operand:
            return list(operand)
    for sub in query.get("$and", []) or []:
        if isinstance(sub, Mapping):
            found = extract_all_values(sub, field)
            if found is not None:
                return found
    return None


def extract_geo(query: Mapping[str, Any], field: str) -> "Shape | None":
    """Extract the shape of a ``$geoIntersects``/``$geoWithin`` condition on
    ``field``, if present (possibly under ``$and``).  Returns ``None`` when
    the query has no geo constraint on that field."""
    condition = query.get(field)
    if _is_operator_doc(condition):
        for op in ("$geoIntersects", "$geoWithin"):
            if op in condition:
                return _as_shape(condition[op])
    for sub in query.get("$and", []) or []:
        if isinstance(sub, Mapping):
            found = extract_geo(sub, field)
            if found is not None:
                return found
    return None
