"""Columnar projections for vectorized query planning.

The query planner in :mod:`repro.store.collection` narrows candidates by
intersecting sorted ``int64`` doc-id arrays, one per applicable query
condition.  This module supplies the column-shaped building blocks:

* :func:`iso_to_int64` — a monotone embedding of ISO-8601 date/timestamp
  strings into ``int64`` (microseconds since day 0), so string range
  predicates become integer range probes.  The embedding is *superset-safe*
  for planning: for well-formed naive ISO strings, ``a <= b``
  lexicographically implies ``iso_to_int64(a) <= iso_to_int64(b)``, so an
  integer range probe can only over-approximate the string predicate —
  never miss a match.  Values that do not parse (or carry a timezone)
  return ``None`` and are treated as *unknown*.
* :class:`SortedDateColumn` — a value-sorted ``(values, doc_ids)`` int64
  column with an add/remove overflow (pending list + tombstones) that is
  folded back into the sorted arrays once it grows past a fraction of the
  column, so online mutation stays O(1) amortized while range probes stay
  two ``np.searchsorted`` calls.  Docs whose value could not be parsed sit
  in an *unknown* bucket that every probe includes (the exact matcher
  decides their fate); docs missing the field are excluded outright, which
  is exact because no ordered comparison matches a missing value.
* :func:`ids_array` / :func:`intersect_id_arrays` — conversion and
  intersection helpers over sorted unique id arrays.

Every array handed out is sorted and unique, which makes
``np.intersect1d(..., assume_unique=True)`` the whole cost of AND-ing
conditions together.
"""

from __future__ import annotations

import re
from datetime import datetime
from typing import Any, Iterable, Mapping

import numpy as np

from .matcher import get_path, is_missing

_EMPTY_IDS = np.empty(0, dtype=np.int64)

_MICROS_PER_DAY = 86_400_000_000

# Only *extended-format* naive ISO strings keep the lexicographic <->
# chronologic correspondence the planner relies on.  fromisoformat also
# accepts basic format ("20200105"), space separators, and offsets — all
# of which order differently as strings than as instants, so they must
# fall into the unknown bucket, not the sorted column.
_EXTENDED_ISO = re.compile(
    r"^\d{4}-\d{2}-\d{2}(T\d{2}:\d{2}(:\d{2}(\.\d{1,6})?)?)?$")


def iso_to_int64(value: Any) -> "int | None":
    """Monotone int64 embedding of an extended-format naive ISO string.

    For accepted strings, ``a <= b`` lexicographically implies
    ``iso_to_int64(a) <= iso_to_int64(b)``.  Returns ``None`` for
    everything else (non-strings, malformed/basic-format/space-separated
    strings, timezone-aware timestamps) — callers must treat those values
    as unknown rather than excluding them.
    """
    if not isinstance(value, str) or _EXTENDED_ISO.match(value) is None:
        return None
    try:
        moment = datetime.fromisoformat(value)
    except ValueError:
        return None
    micros = ((moment.hour * 3600 + moment.minute * 60 + moment.second)
              * 1_000_000 + moment.microsecond)
    return moment.toordinal() * _MICROS_PER_DAY + micros


def ids_array(ids: Iterable[int]) -> np.ndarray:
    """A sorted unique int64 array from an id set/iterable."""
    array = np.fromiter(ids, dtype=np.int64)
    array.sort()
    return array


def intersect_id_arrays(arrays: "list[np.ndarray]") -> np.ndarray:
    """Intersection of sorted unique id arrays, smallest-first."""
    if not arrays:
        return _EMPTY_IDS
    ordered = sorted(arrays, key=len)
    out = ordered[0]
    for other in ordered[1:]:
        if out.shape[0] == 0:
            break
        out = np.intersect1d(out, other, assume_unique=True)
    return out


class SortedDateColumn:
    """A per-collection sorted int64 projection of one date field.

    ``ids_in_range(lo, hi)`` returns the sorted unique doc ids whose
    parsed value falls in the inclusive ``[lo, hi]`` range (``None`` bound
    = open side), *plus* every doc whose present-but-unparseable value
    makes it unknown.  The result is a candidate superset: the exact
    matcher re-checks each doc, so the column only has to never miss.
    """

    __slots__ = ("field", "_by_id", "_unknown", "_unknown_cache",
                 "_values", "_ids", "_pending", "_dead")

    def __init__(self, field: str) -> None:
        self.field = field
        self._by_id: dict[int, int] = {}
        self._unknown: set[int] = set()
        self._unknown_cache: "np.ndarray | None" = None
        self._values: np.ndarray = np.empty(0, dtype=np.int64)
        self._ids: np.ndarray = _EMPTY_IDS
        self._pending: list[tuple[int, int]] = []
        self._dead: set[int] = set()

    def __len__(self) -> int:
        return len(self._by_id) + len(self._unknown)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def add(self, doc_id: int, document: Mapping[str, Any]) -> None:
        value = get_path(document, self.field)
        if is_missing(value):
            return  # absent values never satisfy an ordered comparison
        parsed = iso_to_int64(value)
        if parsed is None:
            self._unknown.add(doc_id)
            self._unknown_cache = None
            return
        # A re-added id deliberately stays in the tombstone set: the
        # tombstone suppresses its stale compacted entry while the fresh
        # value is served from the pending list until the next compaction.
        self._by_id[doc_id] = parsed
        self._pending.append((doc_id, parsed))

    def bulk_add(self, doc_ids: "Iterable[int]",
                 documents: "Iterable[Mapping[str, Any]]") -> None:
        """Batch :meth:`add`; sorted arrays are rebuilt at most once, at
        the next probe, however large the batch."""
        for doc_id, document in zip(doc_ids, documents):
            self.add(doc_id, document)

    def remove(self, doc_id: int, document: Mapping[str, Any]) -> None:
        if doc_id in self._unknown:
            self._unknown.discard(doc_id)
            self._unknown_cache = None
            return
        if doc_id not in self._by_id:
            return
        del self._by_id[doc_id]
        for i, (pending_id, _) in enumerate(self._pending):
            if pending_id == doc_id:
                del self._pending[i]
                return
        self._dead.add(doc_id)

    # ------------------------------------------------------------------ #
    # Probes
    # ------------------------------------------------------------------ #

    def _compact_due(self) -> bool:
        overflow = len(self._pending) + len(self._dead)
        return overflow > 0 and overflow > max(64, len(self._by_id) >> 3)

    def _compact(self) -> None:
        count = len(self._by_id)
        ids = np.fromiter(self._by_id.keys(), dtype=np.int64, count=count)
        values = np.fromiter(self._by_id.values(), dtype=np.int64, count=count)
        order = np.lexsort((ids, values))
        self._ids = ids[order]
        self._values = values[order]
        self._pending = []
        self._dead = set()

    def estimate_range(self, lo: "int | None", hi: "int | None") -> int:
        """Cheap upper bound on :meth:`ids_in_range`'s size: two
        ``searchsorted`` probes on the compacted arrays plus the whole
        overflow (pending + unknown counted without filtering).  Never
        compacts and materializes nothing — the cost-ordered intersection
        planner calls this for every source before loading any."""
        lo_pos = (0 if lo is None
                  else int(np.searchsorted(self._values, lo, side="left")))
        hi_pos = (self._values.shape[0] if hi is None
                  else int(np.searchsorted(self._values, hi, side="right")))
        return (hi_pos - lo_pos) + len(self._pending) + len(self._unknown)

    def ids_in_range(self, lo: "int | None", hi: "int | None") -> np.ndarray:
        """Sorted unique doc ids with value in ``[lo, hi]``, plus unknowns."""
        if self._compact_due():
            self._compact()
        lo_pos = (0 if lo is None
                  else int(np.searchsorted(self._values, lo, side="left")))
        hi_pos = (self._values.shape[0] if hi is None
                  else int(np.searchsorted(self._values, hi, side="right")))
        ids = self._ids[lo_pos:hi_pos]
        if self._dead:
            ids = ids[~np.isin(ids, ids_array(self._dead))]
        parts = [ids]
        if self._pending:
            hits = [doc_id for doc_id, value in self._pending
                    if (lo is None or value >= lo)
                    and (hi is None or value <= hi)]
            if hits:
                parts.append(np.asarray(hits, dtype=np.int64))
        if self._unknown:
            if self._unknown_cache is None:
                self._unknown_cache = ids_array(self._unknown)
            parts.append(self._unknown_cache)
        if len(parts) == 1:
            # The compacted slice is value-sorted, not id-sorted: re-sort so
            # candidate order (and therefore unsorted find()/pagination
            # order) is plan-independent.  Ids are unique by construction.
            return np.sort(ids)
        return np.unique(np.concatenate(parts))
