"""Geohash encoding, the substrate of the data tier's 2D index.

EarthQube "indexes the location attribute using MongoDB's built-in 2D
geohashing index" (paper, Section 3.2).  MongoDB's legacy 2D index interleaves
longitude/latitude bits exactly like the public geohash scheme, so this module
implements standard base-32 geohash:

* :func:`encode` / :func:`decode` — point to hash string and back,
* :func:`decode_bbox` — the cell covered by a hash prefix,
* :func:`neighbors` — the 8 adjacent cells at the same precision,
* :func:`cover_bbox` — the set of cells of a given precision intersecting a
  query rectangle (used by :class:`repro.store.geoindex.GeoHashIndex` to turn
  a ``$geoWithin`` query into prefix lookups).

Precision reference (cell size at the equator): 4 chars ~ 39 km x 19.5 km,
5 chars ~ 4.9 km x 4.9 km, 6 chars ~ 1.2 km x 0.61 km.
"""

from __future__ import annotations

from .bbox import BoundingBox
from ..errors import GeoError

GEOHASH_ALPHABET = "0123456789bcdefghjkmnpqrstuvwxyz"
_CHAR_TO_VALUE = {c: i for i, c in enumerate(GEOHASH_ALPHABET)}

_MAX_PRECISION = 12


def _check_point(lon: float, lat: float) -> None:
    if not -180.0 <= lon <= 180.0:
        raise GeoError(f"longitude out of range [-180, 180]: {lon}")
    if not -90.0 <= lat <= 90.0:
        raise GeoError(f"latitude out of range [-90, 90]: {lat}")


def _check_precision(precision: int) -> None:
    if not 1 <= precision <= _MAX_PRECISION:
        raise GeoError(f"geohash precision must be in [1, {_MAX_PRECISION}], got {precision}")


def encode(lon: float, lat: float, precision: int = 5) -> str:
    """Encode a point into a geohash string of ``precision`` characters.

    Bits alternate longitude-first (even bit positions refine longitude),
    matching the canonical geohash definition.
    """
    _check_point(lon, lat)
    _check_precision(precision)
    lon_lo, lon_hi = -180.0, 180.0
    lat_lo, lat_hi = -90.0, 90.0
    chars: list[str] = []
    bit = 0
    value = 0
    even = True  # even bits refine longitude
    while len(chars) < precision:
        if even:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                value = (value << 1) | 1
                lon_lo = mid
            else:
                value <<= 1
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                value = (value << 1) | 1
                lat_lo = mid
            else:
                value <<= 1
                lat_hi = mid
        even = not even
        bit += 1
        if bit == 5:
            chars.append(GEOHASH_ALPHABET[value])
            bit = 0
            value = 0
    return "".join(chars)


def decode_bbox(geohash: str) -> BoundingBox:
    """The bounding box of the cell identified by ``geohash``."""
    if not geohash:
        raise GeoError("geohash must be a non-empty string")
    lon_lo, lon_hi = -180.0, 180.0
    lat_lo, lat_hi = -90.0, 90.0
    even = True
    for char in geohash:
        try:
            value = _CHAR_TO_VALUE[char]
        except KeyError:
            raise GeoError(f"invalid geohash character {char!r} in {geohash!r}") from None
        for shift in (4, 3, 2, 1, 0):
            bit = (value >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    return BoundingBox(west=lon_lo, south=lat_lo, east=lon_hi, north=lat_hi)


def decode(geohash: str) -> tuple[float, float]:
    """Decode a geohash to the ``(lon, lat)`` center of its cell."""
    return decode_bbox(geohash).center


def cell_size(precision: int) -> tuple[float, float]:
    """``(width_deg, height_deg)`` of a geohash cell at ``precision``."""
    _check_precision(precision)
    lon_bits = (5 * precision + 1) // 2
    lat_bits = 5 * precision // 2
    return 360.0 / (1 << lon_bits), 180.0 / (1 << lat_bits)


def neighbors(geohash: str) -> dict[str, str]:
    """The 8 neighboring cells, keyed by compass direction.

    Neighbors are computed geometrically (offset the cell center by one cell
    size and re-encode), which handles all base-32 edge cases uniformly.
    Cells that would fall outside the valid lat range are omitted; longitude
    wraps across the antimeridian.
    """
    box = decode_bbox(geohash)
    lon, lat = box.center
    width, height = box.width, box.height
    precision = len(geohash)
    out: dict[str, str] = {}
    offsets = {
        "n": (0.0, height), "s": (0.0, -height),
        "e": (width, 0.0), "w": (-width, 0.0),
        "ne": (width, height), "nw": (-width, height),
        "se": (width, -height), "sw": (-width, -height),
    }
    for direction, (dlon, dlat) in offsets.items():
        nlat = lat + dlat
        if not -90.0 <= nlat <= 90.0:
            continue  # off the pole: no neighbor in this direction
        nlon = lon + dlon
        if nlon > 180.0:
            nlon -= 360.0
        elif nlon < -180.0:
            nlon += 360.0
        out[direction] = encode(nlon, nlat, precision)
    return out


def cover_bbox(box: BoundingBox, precision: int, *, max_cells: int = 4096) -> list[str]:
    """All geohash cells of ``precision`` that intersect ``box``.

    Walks the cell grid row by row from the box's south-west corner.  Raises
    :class:`GeoError` if the cover would exceed ``max_cells`` — the caller
    (the geo index) then falls back to a coarser precision or a full scan
    rather than materializing an enormous cover.
    """
    _check_precision(precision)
    width, height = cell_size(precision)
    cells: list[str] = []
    seen: set[str] = set()
    # Start from the center of the cell containing the SW corner and step by
    # exactly one cell size; centers guarantee we never skip a row/column due
    # to floating point on cell boundaries.
    start = decode_bbox(encode(box.west, box.south, precision))
    eps = 1e-12
    lat = start.center[1]
    # A cell with center c spans [c - size/2, c + size/2]; iterate columns/
    # rows while the cell's low edge is still at or before the box edge.
    while lat - height / 2.0 <= box.north + eps:
        lon = start.center[0]
        while lon - width / 2.0 <= box.east + eps:
            cell = encode(min(180.0, max(-180.0, lon)), min(90.0, max(-90.0, lat)), precision)
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)
                if len(cells) > max_cells:
                    raise GeoError(
                        f"bbox cover at precision {precision} exceeds {max_cells} cells; "
                        f"use a coarser precision")
            lon += width
        lat += height
    return cells
