"""Axis-aligned geographic bounding boxes.

A :class:`BoundingBox` is the geometry EarthQube stores per image: the
metadata collection's ``location`` attribute "represents the bounding
rectangle of an image" (paper, Section 3.2).  Longitudes are degrees East in
``[-180, 180]``, latitudes degrees North in ``[-90, 90]``.  Boxes never wrap
the antimeridian — BigEarthNet covers Europe only, so this simplification is
safe and is validated at construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeoError


@dataclass(frozen=True, order=True)
class BoundingBox:
    """Geographic axis-aligned rectangle ``[west, east] x [south, north]``."""

    west: float
    south: float
    east: float
    north: float

    def __post_init__(self) -> None:
        if not (-180.0 <= self.west <= self.east <= 180.0):
            raise GeoError(
                f"invalid longitudes: need -180 <= west <= east <= 180, "
                f"got west={self.west}, east={self.east}")
        if not (-90.0 <= self.south <= self.north <= 90.0):
            raise GeoError(
                f"invalid latitudes: need -90 <= south <= north <= 90, "
                f"got south={self.south}, north={self.north}")

    @classmethod
    def from_center(cls, lon: float, lat: float, width_deg: float,
                    height_deg: float) -> "BoundingBox":
        """Build a box centered on ``(lon, lat)``, clamped to valid ranges."""
        if width_deg < 0 or height_deg < 0:
            raise GeoError(f"width/height must be non-negative, got {width_deg}, {height_deg}")
        half_w, half_h = width_deg / 2.0, height_deg / 2.0
        return cls(
            west=max(-180.0, lon - half_w),
            south=max(-90.0, lat - half_h),
            east=min(180.0, lon + half_w),
            north=min(90.0, lat + half_h),
        )

    @property
    def center(self) -> tuple[float, float]:
        """``(lon, lat)`` midpoint of the box."""
        return ((self.west + self.east) / 2.0, (self.south + self.north) / 2.0)

    @property
    def width(self) -> float:
        """Longitudinal extent in degrees."""
        return self.east - self.west

    @property
    def height(self) -> float:
        """Latitudinal extent in degrees."""
        return self.north - self.south

    @property
    def area_deg2(self) -> float:
        """Area in square degrees (planar approximation)."""
        return self.width * self.height

    def contains_point(self, lon: float, lat: float) -> bool:
        """True when ``(lon, lat)`` lies inside or on the boundary."""
        return self.west <= lon <= self.east and self.south <= lat <= self.north

    def contains_bbox(self, other: "BoundingBox") -> bool:
        """True when ``other`` lies entirely within this box."""
        return (self.west <= other.west and other.east <= self.east
                and self.south <= other.south and other.north <= self.north)

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes share at least a boundary point."""
        return not (other.west > self.east or other.east < self.west
                    or other.south > self.north or other.north < self.south)

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping box, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            west=max(self.west, other.west),
            south=max(self.south, other.south),
            east=min(self.east, other.east),
            north=min(self.north, other.north),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box covering both inputs."""
        return BoundingBox(
            west=min(self.west, other.west),
            south=min(self.south, other.south),
            east=max(self.east, other.east),
            north=max(self.north, other.north),
        )

    def expand(self, margin_deg: float) -> "BoundingBox":
        """Grow the box by ``margin_deg`` on every side, clamped to bounds."""
        if margin_deg < 0:
            raise GeoError(f"margin must be non-negative, got {margin_deg}")
        return BoundingBox(
            west=max(-180.0, self.west - margin_deg),
            south=max(-90.0, self.south - margin_deg),
            east=min(180.0, self.east + margin_deg),
            north=min(90.0, self.north + margin_deg),
        )

    def to_geojson(self) -> dict:
        """GeoJSON Polygon ring for the box (closed, counter-clockwise)."""
        ring = [
            [self.west, self.south],
            [self.east, self.south],
            [self.east, self.north],
            [self.west, self.north],
            [self.west, self.south],
        ]
        return {"type": "Polygon", "coordinates": [ring]}

    def as_tuple(self) -> tuple[float, float, float, float]:
        """``(west, south, east, north)`` tuple, e.g. for storage."""
        return (self.west, self.south, self.east, self.north)

    @classmethod
    def from_tuple(cls, values: "tuple[float, float, float, float] | list[float]") -> "BoundingBox":
        """Inverse of :meth:`as_tuple`."""
        if len(values) != 4:
            raise GeoError(f"expected 4 values (west, south, east, north), got {len(values)}")
        west, south, east, north = values
        return cls(west=west, south=south, east=east, north=north)
