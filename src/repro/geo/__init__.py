"""Geospatial primitives: bounding boxes, geohash, shapes, distances.

This package provides the substrate for EarthQube's spatial querying:
the query panel's rectangle/circle/polygon selections
(:mod:`repro.geo.shapes`) and the data tier's MongoDB-style 2D geohash
index (:mod:`repro.geo.geohash`).
"""

from .bbox import BoundingBox
from .distance import haversine_km
from .geohash import (
    GEOHASH_ALPHABET,
    cover_bbox,
    decode,
    decode_bbox,
    encode,
    neighbors,
)
from .shapes import Circle, Polygon, Rectangle, Shape

__all__ = [
    "BoundingBox",
    "haversine_km",
    "GEOHASH_ALPHABET",
    "encode",
    "decode",
    "decode_bbox",
    "neighbors",
    "cover_bbox",
    "Shape",
    "Rectangle",
    "Circle",
    "Polygon",
]
