"""Query shapes: rectangle, circle, polygon.

These model the EarthQube query panel's spatial selections: "users can define
a geospatial area by choosing a shape (i.e., rectangle or circle) ...
Alternatively, users can draw an arbitrary rectangle, circle, or polygon
directly on the map" (paper, Section 3.1).

Every shape answers two predicates used by the search service:

* :meth:`Shape.contains_point` — marker-level hit test,
* :meth:`Shape.intersects_bbox` — image-level test against a patch's
  bounding rectangle (the stored ``location`` attribute),

plus :meth:`Shape.bounding_box`, which the geohash index uses to prefilter
candidates.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from .bbox import BoundingBox
from .distance import haversine_km, km_per_degree_lat, km_per_degree_lon
from ..errors import GeoError


class Shape(ABC):
    """Abstract spatial query shape."""

    @abstractmethod
    def contains_point(self, lon: float, lat: float) -> bool:
        """True when the point lies inside (or on the boundary of) the shape."""

    @abstractmethod
    def bounding_box(self) -> BoundingBox:
        """The tightest axis-aligned box containing the shape."""

    def intersects_bbox(self, box: BoundingBox) -> bool:
        """True when the shape and ``box`` overlap.

        The default implementation is conservative-exact for convex shapes:
        it first rejects via bounding boxes, then tests box corners against
        the shape and the shape's "center" against the box.  Subclasses
        override where an exact test is cheap.
        """
        if not self.bounding_box().intersects(box):
            return False
        corners = [(box.west, box.south), (box.east, box.south),
                   (box.east, box.north), (box.west, box.north)]
        if any(self.contains_point(lon, lat) for lon, lat in corners):
            return True
        center = self.bounding_box().center
        return box.contains_point(*center)


@dataclass(frozen=True)
class Rectangle(Shape):
    """Axis-aligned rectangular selection (thin wrapper over a bbox)."""

    box: BoundingBox

    @classmethod
    def from_corners(cls, west: float, south: float, east: float, north: float) -> "Rectangle":
        return cls(BoundingBox(west=west, south=south, east=east, north=north))

    def contains_point(self, lon: float, lat: float) -> bool:
        return self.box.contains_point(lon, lat)

    def bounding_box(self) -> BoundingBox:
        return self.box

    def intersects_bbox(self, box: BoundingBox) -> bool:
        return self.box.intersects(box)


@dataclass(frozen=True)
class Circle(Shape):
    """Circular selection: center ``(lon, lat)`` and great-circle radius."""

    lon: float
    lat: float
    radius_km: float

    def __post_init__(self) -> None:
        if not -180.0 <= self.lon <= 180.0:
            raise GeoError(f"circle center longitude out of range: {self.lon}")
        if not -90.0 <= self.lat <= 90.0:
            raise GeoError(f"circle center latitude out of range: {self.lat}")
        if self.radius_km <= 0.0:
            raise GeoError(f"circle radius must be positive, got {self.radius_km}")

    def contains_point(self, lon: float, lat: float) -> bool:
        return haversine_km(self.lon, self.lat, lon, lat) <= self.radius_km

    def bounding_box(self) -> BoundingBox:
        dlat = self.radius_km / km_per_degree_lat()
        # Widen by the narrowest longitude scale inside the circle's lat range
        # so the box is guaranteed to contain the circle.
        worst_lat = min(89.999, abs(self.lat) + dlat)
        scale = km_per_degree_lon(math.copysign(worst_lat, self.lat) if self.lat else worst_lat)
        dlon = self.radius_km / max(scale, 1e-9)
        return BoundingBox(
            west=max(-180.0, self.lon - dlon),
            south=max(-90.0, self.lat - dlat),
            east=min(180.0, self.lon + dlon),
            north=min(90.0, self.lat + dlat),
        )

    def intersects_bbox(self, box: BoundingBox) -> bool:
        # Exact: clamp the center to the box to find the box's closest point.
        closest_lon = min(max(self.lon, box.west), box.east)
        closest_lat = min(max(self.lat, box.south), box.north)
        return self.contains_point(closest_lon, closest_lat)


@dataclass(frozen=True)
class Polygon(Shape):
    """Simple (non-self-intersecting) polygon selection.

    ``vertices`` are ``(lon, lat)`` pairs; the ring is implicitly closed.
    Point membership uses the even-odd ray casting rule with an explicit
    boundary check so that points exactly on an edge count as inside.
    """

    vertices: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeoError(f"polygon needs at least 3 vertices, got {len(self.vertices)}")
        for lon, lat in self.vertices:
            if not -180.0 <= lon <= 180.0 or not -90.0 <= lat <= 90.0:
                raise GeoError(f"polygon vertex out of range: ({lon}, {lat})")

    @classmethod
    def from_coords(cls, coords: "list[tuple[float, float]] | list[list[float]]") -> "Polygon":
        """Build from a list of ``(lon, lat)`` pairs, dropping a repeated
        closing vertex if present."""
        points = [tuple(float(v) for v in pair) for pair in coords]
        if len(points) >= 2 and points[0] == points[-1]:
            points = points[:-1]
        return cls(tuple(points))  # type: ignore[arg-type]

    def _on_boundary(self, lon: float, lat: float) -> bool:
        eps = 1e-12
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            cross = (x2 - x1) * (lat - y1) - (y2 - y1) * (lon - x1)
            if abs(cross) > eps * max(1.0, abs(x2 - x1) + abs(y2 - y1)):
                continue
            if min(x1, x2) - eps <= lon <= max(x1, x2) + eps and \
               min(y1, y2) - eps <= lat <= max(y1, y2) + eps:
                return True
        return False

    def contains_point(self, lon: float, lat: float) -> bool:
        if self._on_boundary(lon, lat):
            return True
        inside = False
        n = len(self.vertices)
        for i in range(n):
            x1, y1 = self.vertices[i]
            x2, y2 = self.vertices[(i + 1) % n]
            if (y1 > lat) != (y2 > lat):
                x_cross = x1 + (lat - y1) * (x2 - x1) / (y2 - y1)
                if lon < x_cross:
                    inside = not inside
        return inside

    def bounding_box(self) -> BoundingBox:
        lons = [v[0] for v in self.vertices]
        lats = [v[1] for v in self.vertices]
        return BoundingBox(west=min(lons), south=min(lats), east=max(lons), north=max(lats))

    def intersects_bbox(self, box: BoundingBox) -> bool:
        if not self.bounding_box().intersects(box):
            return False
        # Any polygon vertex inside the box?
        if any(box.contains_point(lon, lat) for lon, lat in self.vertices):
            return True
        # Any box corner inside the polygon?
        corners = [(box.west, box.south), (box.east, box.south),
                   (box.east, box.north), (box.west, box.north)]
        if any(self.contains_point(lon, lat) for lon, lat in corners):
            return True
        # Edge-edge crossing (handles the "polygon pierces the box" case).
        box_edges = [
            ((box.west, box.south), (box.east, box.south)),
            ((box.east, box.south), (box.east, box.north)),
            ((box.east, box.north), (box.west, box.north)),
            ((box.west, box.north), (box.west, box.south)),
        ]
        n = len(self.vertices)
        for i in range(n):
            p1, p2 = self.vertices[i], self.vertices[(i + 1) % n]
            for q1, q2 in box_edges:
                if _segments_intersect(p1, p2, q1, q2):
                    return True
        return False


def _orientation(p: tuple[float, float], q: tuple[float, float], r: tuple[float, float]) -> int:
    value = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if abs(value) < 1e-15:
        return 0
    return 1 if value > 0 else -1


def _on_segment(p: tuple[float, float], q: tuple[float, float], r: tuple[float, float]) -> bool:
    return (min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
            and min(p[1], r[1]) <= q[1] <= max(p[1], r[1]))


def _segments_intersect(p1: tuple[float, float], p2: tuple[float, float],
                        q1: tuple[float, float], q2: tuple[float, float]) -> bool:
    o1 = _orientation(p1, p2, q1)
    o2 = _orientation(p1, p2, q2)
    o3 = _orientation(q1, q2, p1)
    o4 = _orientation(q1, q2, p2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, q1, p2):
        return True
    if o2 == 0 and _on_segment(p1, q2, p2):
        return True
    if o3 == 0 and _on_segment(q1, p1, q2):
        return True
    if o4 == 0 and _on_segment(q1, p2, q2):
        return True
    return False
