"""Great-circle distance on the WGS84 mean-radius sphere."""

from __future__ import annotations

import math

from ..errors import GeoError

EARTH_RADIUS_KM = 6371.0088


def haversine_km(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in kilometres between two lon/lat points.

    Uses the haversine formula on a sphere of mean Earth radius.  Accurate to
    ~0.5% against the true ellipsoid, which is more than enough for the
    circle-shaped query selections EarthQube supports.
    """
    for name, value, bound in (("lat1", lat1, 90.0), ("lat2", lat2, 90.0),
                               ("lon1", lon1, 180.0), ("lon2", lon2, 180.0)):
        if not -bound <= value <= bound:
            raise GeoError(f"{name} out of range [-{bound}, {bound}]: {value}")
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def km_per_degree_lat() -> float:
    """Kilometres per degree of latitude (constant on the sphere)."""
    return math.pi * EARTH_RADIUS_KM / 180.0


def km_per_degree_lon(lat: float) -> float:
    """Kilometres per degree of longitude at latitude ``lat``."""
    if not -90.0 <= lat <= 90.0:
        raise GeoError(f"lat out of range [-90, 90]: {lat}")
    return km_per_degree_lat() * math.cos(math.radians(lat))
