"""Typed physical plans: what the planner decides, what executors obey.

A :class:`PhysicalPlan` captures every knob an execution tier consults when
answering one similarity query — which backend runs the Hamming search,
whether a metadata filter is pushed down (pre-filter) or screened after an
over-fetched unfiltered search (post-filter), the initial over-fetch size,
and the MIH probe budget that bounds the radius ladder before the exact-scan
fallback kicks in.  Crucially, **every plan in the planner's search space
returns byte-identical rankings**: the knobs only move work around (probe
vs scan, mask vs screen), never change the (distance, insertion row) order
— so a mispriced plan costs time, not correctness.

:class:`PlanChoice` is the full decision record — the chosen plan plus the
priced alternatives the planner rejected — and renders the ``plan`` section
of ``explain=true`` responses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PhysicalPlan:
    """One executable strategy for a similarity query.

    ``backend`` is ``"linear"`` (exact scan), ``"mih"`` (multi-index hash
    ladder), or ``"sharded"`` (the serving tier's scatter-gather index).
    ``filter_mode`` is ``None`` for unfiltered queries, else ``"pre"``
    (allowed-mask pushdown) or ``"post"`` (over-fetch + screen).
    ``overfetch`` is the absolute initial fetch of a post-filter plan.
    ``probe_budget`` overrides MIH's exact-fallback threshold: ``0`` forces
    the exact scan (how the planner expresses a linear backend on an MIH
    index), ``None`` keeps the index default.
    """

    backend: str
    filter_mode: "str | None" = None
    overfetch: "int | None" = None
    probe_budget: "int | None" = None
    predicted_ns: float = 0.0
    predicted_counters: "tuple[tuple[str, int], ...]" = ()
    estimator: str = "analytic"

    @property
    def key(self) -> str:
        """Compact plan name, e.g. ``mih:pre`` or ``linear:unfiltered``."""
        return f"{self.backend}:{self.filter_mode or 'unfiltered'}"

    @property
    def counters(self) -> dict:
        """The predicted cost counters as a dict."""
        return dict(self.predicted_counters)

    def as_dict(self) -> dict:
        """JSON shape used in ``explain`` payloads and plan summaries."""
        out = {
            "plan": self.key,
            "backend": self.backend,
            "filter_mode": self.filter_mode,
            "predicted_ns": round(self.predicted_ns, 1),
            "predicted_counters": self.counters,
            "estimator": self.estimator,
        }
        if self.overfetch is not None:
            out["overfetch"] = self.overfetch
        if self.probe_budget is not None:
            out["probe_budget"] = self.probe_budget
        return out

    def summary(self) -> dict:
        """The compact hint scattered to federation members.

        Only the decisions that transfer across corpora are included —
        absolute sizes (``overfetch``, ``probe_budget``) are per-corpus and
        recomputed locally from the scattered mode.
        """
        return {"backend": self.backend, "filter_mode": self.filter_mode}


@dataclass(frozen=True)
class PlanChoice:
    """The planner's full decision: chosen plan + priced alternatives.

    ``forced`` marks decisions where the caller pinned the strategy (an
    explicit ``strategy="pre"``, a federation plan hint, a deprecated
    config override) — the alternatives were still priced for ``explain``,
    but pricing did not pick the winner.
    """

    chosen: PhysicalPlan
    rejected: "tuple[PhysicalPlan, ...]" = ()
    calibrated: bool = False
    forced: bool = False
    context: dict = field(default_factory=dict)

    def explain(self, *, measured_ns: "float | None" = None) -> dict:
        """The ``plan`` section of an ``explain=true`` response."""
        out = {
            "chosen": self.chosen.as_dict(),
            "rejected": [plan.as_dict() for plan in self.rejected],
            "calibrated": self.calibrated,
            "forced": self.forced,
        }
        if self.context:
            out["context"] = dict(self.context)
        if measured_ns is not None:
            out["measured_ns"] = round(float(measured_ns), 1)
        return out
