"""The cost-based query planner (ROADMAP: "one cost model ... that picks
linear vs MIH vs sharded, pre- vs post-filter, radius ladder depth, and
metadata intersection order per query").

:class:`QueryPlanner` enumerates the physical plans that can answer a
similarity query, prices each one with
:func:`repro.obs.calibrate.predict_cost_ns` over calibrated per-operator
unit costs, and returns a :class:`~repro.planner.plans.PlanChoice` whose
chosen plan the execution tiers obey.  Two estimators feed the counters
being priced:

* **workload** — live per-family cost means from
  :class:`repro.obs.workload.WorkloadStats`: once a (backend, strategy,
  selectivity-bucket) family has been observed a few times, its measured
  mean counters are the estimate.  Evidence beats modeling.
* **analytic** — a closed-form fallback for cold families.  Its first-order
  shape: an exact scan touches every (allowed) row; an MIH ladder touches
  ``~k / selectivity`` candidates plus per-table probe overhead.  The model
  is deliberately coarse — it only has to order plans, and it is monotone
  in the corpus size (more rows never price cheaper), which the pricing
  tests pin down.

The planner never trades correctness: every plan it can emit returns
byte-identical rankings (pre/post filtering and the MIH exact-scan
fallback are all result-preserving), so a bad estimate costs latency only.

Unit costs come from ``calibration.json`` (PR 8's ``repro calibrate``);
when no calibration is on disk the planner falls back to
:data:`DEFAULT_UNITS` and reports ``calibrated=False`` so operators can
see they are pricing with shipped defaults rather than garbage.
"""

from __future__ import annotations

import math
import os
import warnings

from ..config import IndexConfig, PlannerConfig
from ..errors import ValidationError
from ..obs.calibrate import (UNIT_KEYS, check_units, load_calibration,
                             predict_cost_ns)
from .plans import PhysicalPlan, PlanChoice

#: Built-in fallback unit costs (nanoseconds), used when no calibration has
#: been run.  The absolute values are rough; what matters is the *ratios* —
#: a vectorized scan row costs ~3 orders of magnitude less than a bucket
#: probe, and candidate verification sits in between — which is what the
#: pre/post and linear/MIH crossovers are priced from.
DEFAULT_UNITS = {
    "linear_scan_ns_per_row": 1.0,
    "mih_probe_ns_per_bucket": 400.0,
    "mih_verify_ns_per_candidate": 150.0,
    "intersect_ns_per_id": 15.0,
    "cache_lookup_ns": 800.0,
}

#: Fixed per-table ladder overhead (buckets probed at layer zero and flip
#: mask bookkeeping), charged to every MIH plan.
_MIH_TABLE_OVERHEAD_BUCKETS = 4

#: Families observed fewer times than this keep the analytic estimate.
_MIN_WORKLOAD_SAMPLES = 3

_STRATEGY_LABELS = {None: "unfiltered", "pre": "prefilter",
                    "post": "postfilter"}


def substring_probe_cost(num_bits: int, num_tables: int,
                         substring_radius: int) -> int:
    """Buckets an MIH search at ``substring_radius`` probes, mirroring
    :meth:`repro.index.mih.MultiIndexHashing._probe_cost` for even spans."""
    base = num_bits // num_tables
    extra = num_bits % num_tables
    total = 0
    for table in range(num_tables):
        width = base + (1 if table < extra else 0)
        total += sum(math.comb(width, i)
                     for i in range(min(substring_radius, width) + 1))
    return total


class QueryPlanner:
    """Enumerate, price, and choose physical plans for similarity queries.

    One planner instance is shared by a system's CBIR service, serving
    gateway, and federation facade; it is stateless apart from the unit
    table and an optional :class:`~repro.obs.workload.WorkloadStats`
    reference, so concurrent planning needs no locks.
    """

    def __init__(self, units: "dict | None" = None, *,
                 calibrated: bool = False, workload=None,
                 config: "PlannerConfig | None" = None) -> None:
        self.config = config or PlannerConfig()
        self.workload = workload
        self.units = dict(DEFAULT_UNITS)
        self.calibrated = False
        if units is not None:
            self.set_units(units, calibrated=calibrated)

    # ------------------------------------------------------------------ #
    # Calibration
    # ------------------------------------------------------------------ #

    def set_units(self, units: dict, *, calibrated: bool = True) -> None:
        """Install per-operator unit costs (validated positive + finite)."""
        check_units(units, required=UNIT_KEYS)
        self.units = {key: float(units[key]) for key in UNIT_KEYS}
        self.calibrated = bool(calibrated)

    def load_calibration_file(self, path: str) -> bool:
        """Install units from a calibration sidecar; ``False`` if absent or
        unreadable (the built-in defaults stay active)."""
        if not path or not os.path.exists(path):
            return False
        try:
            doc = load_calibration(path)
            self.set_units(doc["units"], calibrated=True)
            return True
        except (ValidationError, KeyError, OSError, ValueError) as exc:
            warnings.warn(f"ignoring unusable calibration at {path!r}: {exc}",
                          RuntimeWarning, stacklevel=2)
            return False

    @classmethod
    def from_config(cls, config: "PlannerConfig | None" = None, *,
                    workload=None) -> "QueryPlanner":
        """Build a planner from config, auto-loading ``calibration_path``."""
        planner = cls(config=config, workload=workload)
        if planner.config.calibration_path:
            planner.load_calibration_file(planner.config.calibration_path)
        return planner

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def price(self, counters: "dict | None") -> float:
        """Predicted nanoseconds for a counter profile under these units."""
        return predict_cost_ns(self.units, counters)

    def _workload_counters(self, backend: str, filter_mode: "str | None",
                           selectivity: "float | None") -> "dict | None":
        """Measured mean counters for this plan's query family, if the
        workload store has seen it often enough to trust."""
        if self.workload is None:
            return None
        from ..obs.costs import selectivity_bucket
        family = (backend, _STRATEGY_LABELS[filter_mode],
                  selectivity_bucket(selectivity))
        means = self.workload.cost_means(family)
        if not means or means.get("_count", 0) < _MIN_WORKLOAD_SAMPLES:
            return None
        return {key: value for key, value in means.items()
                if not key.startswith("_")}

    # ------------------------------------------------------------------ #
    # Analytic counter estimates
    # ------------------------------------------------------------------ #

    @staticmethod
    def _overfetch(k: int, corpus_size: int, filter_count: int,
                   factor: float) -> int:
        """Initial post-filter fetch: ``k / selectivity`` plus margin —
        exactly the legacy ``_initial_fetch`` formula, so post-filter plans
        execute identically to the pre-planner code."""
        estimated = math.ceil(k * corpus_size * factor / max(filter_count, 1))
        return min(corpus_size, max(k, estimated))

    def _linear_counters(self, filter_mode: "str | None", *, corpus_size: int,
                         filter_count: "int | None",
                         overfetch: "int | None") -> dict:
        if filter_mode == "pre":
            return {"rows_scanned": max(int(filter_count or 0), 1)}
        counters = {"rows_scanned": max(corpus_size, 1)}
        if filter_mode == "post" and overfetch:
            # Materializing + screening the over-fetched ranking.
            counters["candidates_verified"] = overfetch
        return counters

    def _mih_counters(self, filter_mode: "str | None", *, corpus_size: int,
                      k: "int | None", radius: "int | None",
                      selectivity: "float | None", overfetch: "int | None",
                      num_bits: int, num_tables: int) -> dict:
        overhead = _MIH_TABLE_OVERHEAD_BUCKETS * max(num_tables, 1)
        if radius is not None:
            buckets = substring_probe_cost(num_bits, num_tables,
                                           radius // max(num_tables, 1))
            # Uniform-model candidate mass: per-table substring ball hits.
            width = max(num_bits // max(num_tables, 1), 1)
            ball = sum(math.comb(width, i)
                       for i in range(min(radius // max(num_tables, 1),
                                          width) + 1))
            frac = min(1.0, num_tables * ball / float(2 ** min(width, 62)))
            gathered = min(corpus_size, max(1, math.ceil(corpus_size * frac)))
            verified = gathered
            if filter_mode == "pre" and selectivity is not None:
                verified = max(1, math.ceil(gathered * selectivity))
            return {"buckets_probed": overhead + buckets,
                    "candidates_verified": verified}
        # kNN ladder: must surface ~k/selectivity candidates before k
        # allowed survivors exist (selectivity 1.0 when unfiltered).
        k = int(k or 1)
        if filter_mode == "post":
            need = min(corpus_size, int(overfetch or k))
        elif filter_mode == "pre" and selectivity:
            need = min(corpus_size, math.ceil(k / max(selectivity, 1e-9)))
        else:
            need = min(corpus_size, k)
        verified = need
        if filter_mode == "pre" and selectivity is not None:
            # Disallowed candidates are dropped before verification.
            verified = max(k, math.ceil(need * selectivity))
        return {"buckets_probed": overhead + need,
                "candidates_verified": min(corpus_size, verified)}

    def _probe_budget_for(self, scan_rows: int) -> int:
        """Ladder depth as a probe budget: probing stops paying once the
        buckets cost more than scanning the rows the fallback would touch.
        Calibration-aware replacement for the row-count default budget."""
        probe_ns = max(self.units.get("mih_probe_ns_per_bucket", 1.0), 1e-9)
        scan_ns = self.units.get("linear_scan_ns_per_row", 1.0)
        return max(64, math.ceil(max(scan_rows, 1) * scan_ns / probe_ns))

    # ------------------------------------------------------------------ #
    # Plan enumeration + choice
    # ------------------------------------------------------------------ #

    def enumerate_plans(self, *, corpus_size: int, k: "int | None" = None,
                        radius: "int | None" = None,
                        selectivity: "float | None" = None,
                        filter_count: "int | None" = None,
                        num_bits: int = 128, num_tables: int = 4,
                        backends: "tuple[str, ...]" = ("mih", "linear"),
                        overfetch_factor: "float | None" = None,
                        ) -> "list[PhysicalPlan]":
        """Every candidate plan for one query, priced, cheapest first."""
        filtered = selectivity is not None
        modes = ("pre", "post") if filtered else (None,)
        factor = (overfetch_factor if overfetch_factor is not None
                  else self.config.overfetch_factor)
        plans = []
        for backend in backends:
            for mode in modes:
                overfetch = None
                if mode == "post" and k is not None:
                    overfetch = self._overfetch(k, corpus_size,
                                                int(filter_count or 0), factor)
                counters = self._workload_counters(backend, mode, selectivity)
                estimator = "workload"
                if counters is None:
                    estimator = "analytic"
                    if backend == "mih":
                        counters = self._mih_counters(
                            mode, corpus_size=corpus_size, k=k, radius=radius,
                            selectivity=selectivity, overfetch=overfetch,
                            num_bits=num_bits, num_tables=num_tables)
                    else:
                        counters = self._linear_counters(
                            mode, corpus_size=corpus_size,
                            filter_count=filter_count, overfetch=overfetch)
                probe_budget = None
                if backend == "linear":
                    probe_budget = 0  # force the exact-scan path
                elif backend == "mih":
                    scan_rows = (int(filter_count or 0) if mode == "pre"
                                 else corpus_size)
                    probe_budget = self._probe_budget_for(scan_rows)
                plans.append(PhysicalPlan(
                    backend=backend, filter_mode=mode, overfetch=overfetch,
                    probe_budget=probe_budget,
                    predicted_ns=self.price(counters),
                    predicted_counters=tuple(sorted(
                        (key, int(value)) for key, value in counters.items())),
                    estimator=estimator))
        plans.sort(key=lambda plan: (plan.predicted_ns, plan.key))
        return plans

    def plan_similarity(self, *, corpus_size: int, k: "int | None" = None,
                        radius: "int | None" = None,
                        selectivity: "float | None" = None,
                        filter_count: "int | None" = None,
                        num_bits: int = 128, num_tables: int = 4,
                        backends: "tuple[str, ...]" = ("mih", "linear"),
                        forced_mode: "str | None" = None,
                        forced_backend: "str | None" = None,
                        overfetch_factor: "float | None" = None,
                        ) -> PlanChoice:
        """Choose the cheapest plan (or honor a forced strategy/backend).

        ``forced_mode`` pins pre/post (an explicit ``strategy=``, a
        federation plan hint, or a deprecated config override);
        ``forced_backend`` pins the backend.  Alternatives are still priced
        and reported as rejected so ``explain`` shows the tradeoff.
        """
        plans = self.enumerate_plans(
            corpus_size=corpus_size, k=k, radius=radius,
            selectivity=selectivity, filter_count=filter_count,
            num_bits=num_bits, num_tables=num_tables, backends=backends,
            overfetch_factor=overfetch_factor)
        forced = forced_mode is not None or forced_backend is not None
        eligible = [plan for plan in plans
                    if (forced_mode is None or plan.filter_mode == forced_mode)
                    and (forced_backend is None
                         or plan.backend == forced_backend)]
        if not eligible:  # a hint named a backend this tier cannot run
            eligible, forced = plans, False
        chosen = eligible[0]
        rejected = tuple(plan for plan in plans if plan is not chosen)
        context = {"corpus_size": corpus_size}
        if selectivity is not None:
            context["selectivity"] = round(float(selectivity), 6)
        return PlanChoice(chosen=chosen, rejected=rejected,
                          calibrated=self.calibrated, forced=forced,
                          context=context)

    def describe(self) -> dict:
        """Operator-facing summary (``planner.calibrated`` gauge source)."""
        return {"enabled": self.config.enabled,
                "calibrated": self.calibrated,
                "units": dict(self.units),
                "workload_attached": self.workload is not None}


def deprecated_overrides(index_config: "IndexConfig | None",
                         *, warn: bool = True) -> dict:
    """Planner overrides carried by deprecated :class:`IndexConfig` knobs.

    ``prefilter_max_selectivity`` / ``postfilter_overfetch`` predate the
    planner; when a config sets them away from their defaults the planner
    honors them (threshold pins the pre/post choice, the over-fetch factor
    feeds the fetch formula) so existing deployments behave identically —
    but a :class:`DeprecationWarning` points at the planner config.
    """
    overrides: dict = {}
    if index_config is None:
        return overrides
    defaults = IndexConfig()
    if index_config.prefilter_max_selectivity != defaults.prefilter_max_selectivity:
        overrides["prefilter_max_selectivity"] = \
            index_config.prefilter_max_selectivity
    if index_config.postfilter_overfetch != defaults.postfilter_overfetch:
        overrides["overfetch_factor"] = index_config.postfilter_overfetch
    if overrides and warn:
        knobs = ", ".join(sorted(
            "IndexConfig.postfilter_overfetch" if key == "overfetch_factor"
            else f"IndexConfig.{key}" for key in overrides))
        warnings.warn(
            f"{knobs} are deprecated now that the query planner prices "
            f"pre/post-filtering; they are honored as planner overrides, "
            f"but prefer PlannerConfig (set enabled=False to keep the "
            f"legacy heuristics without warnings)",
            DeprecationWarning, stacklevel=3)
    return overrides
