"""Cost-based query planning (`repro.planner`).

One module owns every dispatch decision the query path used to scatter
across ad-hoc heuristics: linear vs MIH vs sharded backend, pre- vs
post-filter with over-fetch sizing, MIH radius-ladder depth, and columnar
intersection order.  Plans are priced with calibrated per-operator unit
costs (:mod:`repro.obs.calibrate`) refined by live workload statistics
(:mod:`repro.obs.workload`); the chosen :class:`PhysicalPlan` is obeyed by
the index, store, serving, and federation tiers and surfaced through
``explain=true``.
"""

from .planner import (DEFAULT_UNITS, QueryPlanner, deprecated_overrides,
                      substring_probe_cost)
from .plans import PhysicalPlan, PlanChoice
