"""Timing utilities used by services and benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with lap support.

    Example::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.total_seconds)

    Multiple ``with`` blocks accumulate; :attr:`laps` records each block's
    duration so benchmark harnesses can report percentiles.
    """

    total_seconds: float = 0.0
    laps: list[float] = field(default_factory=list)
    _started_at: float | None = None

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Stopwatch was not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.total_seconds += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def mean_seconds(self) -> float:
        """Mean lap duration (0.0 when no laps were recorded)."""
        return self.total_seconds / len(self.laps) if self.laps else 0.0


def format_seconds(seconds: float) -> str:
    """Render a duration with a unit suited to its magnitude."""
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"
