"""Small validation helpers used across the package.

These raise :class:`repro.errors.ValidationError` with messages that name the
parameter and the offending value, so call sites stay one-liners.
"""

from __future__ import annotations

from typing import Any, Iterable, Sized

from ..errors import ValidationError


def check_positive(name: str, value: "int | float") -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> None:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1)`` when not inclusive)."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        raise ValidationError(f"{name} must be a fraction in [0, 1], got {value!r}")


def check_in_range(name: str, value: "int | float", lo: "int | float", hi: "int | float") -> None:
    """Require ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValidationError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_non_empty(name: str, value: "Sized | Iterable[Any]") -> None:
    """Require a sized container to be non-empty."""
    try:
        size = len(value)  # type: ignore[arg-type]
    except TypeError:
        raise ValidationError(f"{name} must be a sized container") from None
    if size == 0:
        raise ValidationError(f"{name} must not be empty")


def check_type(name: str, value: Any, expected: "type | tuple[type, ...]") -> None:
    """Require ``isinstance(value, expected)``."""
    if not isinstance(value, expected):
        names = (expected.__name__ if isinstance(expected, type)
                 else " | ".join(t.__name__ for t in expected))
        raise ValidationError(f"{name} must be {names}, got {type(value).__name__}")
