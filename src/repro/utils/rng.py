"""Random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed or a
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps
experiments reproducible: a single seed at the top of a script determines the
whole pipeline, and independent sub-streams are derived with
:func:`spawn_rng` so that changing one component's draws does not perturb the
others.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

RngLike = "int | np.random.Generator | None"


def as_rng(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise ValidationError(f"seed must be an int, Generator, or None, got {type(seed).__name__}")


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``."""
    if n < 0:
        raise ValidationError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
