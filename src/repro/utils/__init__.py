"""Shared utilities: RNG plumbing, validation helpers, timing."""

from .rng import as_rng, spawn_rng
from .timing import Stopwatch, format_seconds
from .validation import (
    check_fraction,
    check_in_range,
    check_non_empty,
    check_positive,
    check_type,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "Stopwatch",
    "format_seconds",
    "check_fraction",
    "check_in_range",
    "check_non_empty",
    "check_positive",
    "check_type",
]
