"""Configuration dataclasses for every subsystem.

Configs are frozen dataclasses: they validate their fields on construction
(raising :class:`repro.errors.ValidationError` on bad input) and are safe to
share between threads and to use as dictionary keys.  Every knob the paper's
system exposes — hash code length, Hamming search radius, archive size,
training hyper-parameters — lives here, so experiments are reproducible from
a config object alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ValidationError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


@dataclass(frozen=True)
class ArchiveConfig:
    """Parameters of the synthetic BigEarthNet-like archive.

    The defaults mirror the real BigEarthNet layout described in the paper:
    12 Sentinel-2 bands at three resolutions plus Sentinel-1 VV/VH, images
    acquired over 10 European countries between June 2017 and May 2018, and
    1-5 CLC Level-3 labels per patch.
    """

    num_patches: int = 2000
    seed: int = 7
    min_labels: int = 1
    max_labels: int = 5
    patch_size_10m: int = 120
    patch_size_20m: int = 60
    patch_size_60m: int = 20
    noise_sigma: float = 0.035
    texture_smoothing: int = 9
    include_s1: bool = True
    start_date: str = "2017-06-01"
    end_date: str = "2018-05-31"

    def __post_init__(self) -> None:
        _require(self.num_patches > 0, f"num_patches must be > 0, got {self.num_patches}")
        _require(1 <= self.min_labels <= self.max_labels,
                 f"need 1 <= min_labels <= max_labels, got {self.min_labels}..{self.max_labels}")
        _require(self.patch_size_10m % 2 == 0 and self.patch_size_10m >= 8,
                 f"patch_size_10m must be even and >= 8, got {self.patch_size_10m}")
        _require(self.patch_size_20m * 2 == self.patch_size_10m,
                 "patch_size_20m must be half of patch_size_10m")
        _require(self.patch_size_60m * 6 == self.patch_size_10m,
                 "patch_size_60m must be one sixth of patch_size_10m")
        _require(self.noise_sigma >= 0.0, "noise_sigma must be non-negative")
        _require(self.texture_smoothing >= 1, "texture_smoothing must be >= 1")


@dataclass(frozen=True)
class FeatureConfig:
    """Feature extractor settings (the stand-in for the frozen CNN backbone)."""

    histogram_bins: int = 8
    include_spectral_indices: bool = True
    include_texture: bool = True
    include_s1: bool = True

    def __post_init__(self) -> None:
        _require(self.histogram_bins >= 2, f"histogram_bins must be >= 2, got {self.histogram_bins}")


@dataclass(frozen=True)
class MiLaNConfig:
    """MiLaN deep-hashing model and loss hyper-parameters.

    ``num_bits`` defaults to 128 as in the demo.  The three loss weights
    correspond to the triplet, bit-balance, and quantization losses of the
    paper; setting a weight to zero ablates that loss (used by experiment
    E10).
    """

    num_bits: int = 128
    hidden_sizes: tuple[int, ...] = (512, 256)
    triplet_margin: float = 1.0
    weight_triplet: float = 1.0
    weight_bit_balance: float = 0.1
    weight_independence: float = 0.05
    weight_quantization: float = 0.01
    dropout: float = 0.0

    def __post_init__(self) -> None:
        _require(self.num_bits > 0 and self.num_bits % 8 == 0,
                 f"num_bits must be a positive multiple of 8, got {self.num_bits}")
        _require(all(h > 0 for h in self.hidden_sizes), "hidden sizes must be positive")
        _require(self.triplet_margin > 0.0, "triplet_margin must be positive")
        for name in ("weight_triplet", "weight_bit_balance",
                     "weight_independence", "weight_quantization"):
            _require(getattr(self, name) >= 0.0, f"{name} must be non-negative")
        _require(0.0 <= self.dropout < 1.0, f"dropout must be in [0, 1), got {self.dropout}")


@dataclass(frozen=True)
class TrainConfig:
    """Optimization settings for MiLaN training."""

    epochs: int = 30
    batch_size: int = 64
    learning_rate: float = 1e-3
    weight_decay: float = 0.0
    triplets_per_epoch: int = 2048
    semi_hard: bool = True
    seed: int = 13
    log_every: int = 0
    early_stop_patience: int = 0

    def __post_init__(self) -> None:
        _require(self.epochs > 0, "epochs must be positive")
        _require(self.batch_size > 0, "batch_size must be positive")
        _require(self.learning_rate > 0.0, "learning_rate must be positive")
        _require(self.weight_decay >= 0.0, "weight_decay must be non-negative")
        _require(self.triplets_per_epoch >= self.batch_size,
                 "triplets_per_epoch must be at least batch_size")
        _require(self.early_stop_patience >= 0, "early_stop_patience must be >= 0")


@dataclass(frozen=True)
class IndexConfig:
    """Hash-index settings: Hamming radius, multi-index substring count,
    and the filtered-search pushdown policy.

    A metadata-filtered similarity query chooses between two plans by
    estimated selectivity (allowed rows / corpus):

    * **pre-filter** — restrict the Hamming scan / MIH verification to the
      allowed-row mask; cost scales with the allowed subset, so it wins
      when the filter is selective (``selectivity <=
      prefilter_max_selectivity``);
    * **post-filter** — run the unfiltered index search over-fetched by
      ``postfilter_overfetch / selectivity`` and refill adaptively until
      ``k`` allowed results are found; shares scans and cache entries with
      unfiltered traffic, so it wins for broad filters.

    Both plans return byte-identical rankings; the policy is cost-only.

    .. deprecated::
        ``prefilter_max_selectivity`` and ``postfilter_overfetch`` are
        superseded by the cost-based planner (:class:`PlannerConfig`).
        While the planner is enabled, setting them away from their
        defaults keeps the legacy behaviour (threshold pins the pre/post
        choice, the factor feeds the over-fetch formula) but emits a
        :class:`DeprecationWarning`.
    """

    hamming_radius: int = 2
    mih_tables: int = 4
    prefilter_max_selectivity: float = 0.1
    postfilter_overfetch: float = 2.0
    # Mutable-corpus lifecycle: a deleted/updated image tombstones its index
    # row (O(1), excluded from every search via the alive mask); once the
    # dead rows exceed max(compact_min_dead, compact_max_dead_fraction * N)
    # the row-aligned structures are compacted — dead rows physically
    # dropped, rows renumbered — in one coordinated rebuild.
    compact_min_dead: int = 64
    compact_max_dead_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require(self.hamming_radius >= 0, "hamming_radius must be >= 0")
        _require(self.mih_tables >= 1, "mih_tables must be >= 1")
        _require(0.0 <= self.prefilter_max_selectivity <= 1.0,
                 "prefilter_max_selectivity must be in [0, 1]")
        _require(self.postfilter_overfetch >= 1.0,
                 "postfilter_overfetch must be >= 1")
        _require(self.compact_min_dead >= 1, "compact_min_dead must be >= 1")
        _require(0.0 < self.compact_max_dead_fraction <= 1.0,
                 "compact_max_dead_fraction must be in (0, 1]")


@dataclass(frozen=True)
class ServingConfig:
    """Query-serving tier settings (:mod:`repro.serving`).

    Controls the scatter-gather shard layout, the micro-batch executor that
    coalesces concurrent CBIR queries into one vectorized scan, and the
    LRU+TTL result cache.  ``enabled`` is the single flag that routes
    :class:`~repro.earthqube.server.EarthQube` queries through the
    :class:`~repro.serving.gateway.ServingGateway` instead of the direct
    single-threaded path.
    """

    enabled: bool = False
    num_shards: int = 4
    shard_backend: str = "linear"
    mih_tables: int = 4
    max_workers: "int | None" = None
    batch_max_size: int = 16
    batch_max_delay_ms: float = 2.0
    scan_chunk_rows: int = 4096
    cache_entries: int = 1024
    cache_ttl_seconds: float = 300.0
    histogram_window: int = 4096

    def __post_init__(self) -> None:
        _require(self.num_shards >= 1, f"num_shards must be >= 1, got {self.num_shards}")
        _require(self.shard_backend in ("linear", "mih"),
                 f"shard_backend must be 'linear' or 'mih', got {self.shard_backend!r}")
        _require(self.mih_tables >= 1, "mih_tables must be >= 1")
        _require(self.max_workers is None or self.max_workers >= 1,
                 "max_workers must be None or >= 1")
        _require(self.batch_max_size >= 1, "batch_max_size must be >= 1")
        _require(self.batch_max_delay_ms >= 0.0, "batch_max_delay_ms must be >= 0")
        _require(self.scan_chunk_rows >= 1, "scan_chunk_rows must be >= 1")
        _require(self.cache_entries >= 0, "cache_entries must be >= 0")
        _require(self.cache_ttl_seconds > 0.0, "cache_ttl_seconds must be positive")
        _require(self.histogram_window >= 1, "histogram_window must be >= 1")


@dataclass(frozen=True)
class ObsConfig:
    """Observability settings (:mod:`repro.obs`).

    Controls end-to-end query tracing and the slow-query log:

    * ``enabled`` — master switch; when off, no request is ever traced and
      ``trace=true`` API requests are served without a span tree,
    * ``sample_rate`` — fraction of requests that get a root trace
      (deterministic credit sampling: ``0.1`` traces every 10th request);
      the default keeps tracing always-on at low cost,
    * ``slow_threshold_ms`` / ``slow_buffer_size`` — any request slower
      than the threshold is recorded in a bounded ring buffer served at
      ``GET /debug/slow_queries`` (with its span tree when sampled),
    * ``cost_tracking`` — attach operator cost counters (rows scanned,
      buckets probed, candidates verified, ...) and per-stage self-times
      to *every* root request via a cost-only ledger even when the request
      is not credit-sampled, so slow queries and the workload statistics
      are always attributed,
    * ``workload_enabled`` / ``workload_window`` — aggregate per-query-
      family (backend x strategy x selectivity-bucket) cost and latency
      histograms, served at ``GET /debug/workload`` and persistable as a
      JSON workload-profile sidecar at ``workload_profile_path``.
    """

    enabled: bool = True
    sample_rate: float = 0.1
    slow_threshold_ms: float = 100.0
    slow_buffer_size: int = 256
    cost_tracking: bool = True
    workload_enabled: bool = True
    workload_window: int = 512
    workload_profile_path: "str | None" = None

    def __post_init__(self) -> None:
        _require(0.0 <= self.sample_rate <= 1.0,
                 f"sample_rate must be in [0, 1], got {self.sample_rate}")
        _require(self.slow_threshold_ms >= 0.0,
                 "slow_threshold_ms must be >= 0")
        _require(self.slow_buffer_size >= 1, "slow_buffer_size must be >= 1")
        _require(self.workload_window >= 1, "workload_window must be >= 1")


@dataclass(frozen=True)
class FederationConfig:
    """Federation tier settings (:mod:`repro.federation`).

    Controls the scatter-gather executor that fans a query out to every
    registered :class:`~repro.federation.registry.FederatedNode`: per-node
    timeouts and bounded retries, the circuit breaker that ejects flapping
    nodes (and readmits them after a cooldown through a half-open probe),
    and how patch ids are namespaced when results from several archives are
    merged.

    ``namespace_results`` is one of:

    * ``"auto"`` — namespace ids as ``node/patch_name`` only when more than
      one node is registered, so a 1-node federation stays byte-identical
      to querying the node directly (the default),
    * ``"always"`` / ``"never"`` — force namespacing on or off.

    **Elastic mode** (``elastic=True``) turns the static registry into a
    replicated, rebalancing federation: every patch is placed on
    ``replication_factor`` nodes by a consistent-hash ring
    (:class:`~repro.federation.placement.PlacementRing` with
    ``virtual_nodes`` points per member), writes fan out to all replicas
    (missed writes are parked in a hint log), reads query one healthy
    replica per ring segment and fall back through the replica chain on
    failure, and nodes may join/leave live with shard handoff.  Elastic
    federations treat the members as replicas of *one* logical corpus, so
    ``namespace_results`` must not be forced ``"always"`` (replica answers
    deduplicate by bare patch identity).  ``ring_partitions`` buckets
    patches for the anti-entropy digest comparison;
    ``repair_interval_s > 0`` starts the background read-repair daemon.
    """

    node_timeout_s: float = 5.0
    max_retries: int = 1
    breaker_failure_threshold: int = 3
    breaker_cooldown_s: float = 30.0
    namespace_results: str = "auto"
    histogram_window: int = 1024
    elastic: bool = False
    replication_factor: int = 1
    virtual_nodes: int = 64
    ring_partitions: int = 32
    repair_interval_s: float = 0.0
    obs: ObsConfig = field(default_factory=ObsConfig)

    def __post_init__(self) -> None:
        _require(self.node_timeout_s > 0.0,
                 f"node_timeout_s must be positive, got {self.node_timeout_s}")
        _require(self.max_retries >= 0, f"max_retries must be >= 0, got {self.max_retries}")
        _require(self.breaker_failure_threshold >= 1,
                 "breaker_failure_threshold must be >= 1")
        _require(self.breaker_cooldown_s >= 0.0,
                 "breaker_cooldown_s must be >= 0")
        _require(self.namespace_results in ("auto", "always", "never"),
                 f"namespace_results must be 'auto', 'always', or 'never', "
                 f"got {self.namespace_results!r}")
        _require(self.histogram_window >= 1, "histogram_window must be >= 1")
        _require(self.replication_factor >= 1,
                 f"replication_factor must be >= 1, got {self.replication_factor}")
        _require(self.elastic or self.replication_factor == 1,
                 "replication_factor > 1 requires elastic=True")
        _require(self.virtual_nodes >= 1,
                 f"virtual_nodes must be >= 1, got {self.virtual_nodes}")
        _require(self.ring_partitions >= 1,
                 f"ring_partitions must be >= 1, got {self.ring_partitions}")
        _require(self.repair_interval_s >= 0.0,
                 "repair_interval_s must be >= 0")
        _require(not (self.elastic and self.namespace_results == "always"),
                 "elastic federations hold replicas of one logical corpus; "
                 "namespace_results='always' would break replica dedup")


@dataclass(frozen=True)
class DurabilityConfig:
    """Crash-safety settings (:mod:`repro.store.wal` /
    :mod:`repro.store.snapshot` / :class:`~repro.earthqube.durability.DurableEarthQube`).

    ``directory`` roots the WAL file and the checkpoint sidecars; ``None``
    disables durability entirely (the seed behaviour).  ``fsync`` trades
    write latency for crash-loss window:

    * ``"always"`` — fsync every WAL record; nothing acknowledged is lost,
    * ``"interval"`` — fsync every ``fsync_interval`` records (default);
      a crash loses at most the un-synced tail the OS had not flushed,
    * ``"off"`` — never fsync from the WAL (benchmarks only).

    ``auto_checkpoint_records`` triggers a checkpoint automatically once
    the WAL holds that many records (0 = manual checkpoints only).
    ``verify_on_load`` re-extracts a sample of ``verify_sample`` patches on
    recovery and checks their hash codes against the snapshot matrix — a
    debug oracle, off by default because it re-runs feature extraction.
    """

    directory: "str | None" = None
    fsync: str = "interval"
    fsync_interval: int = 8
    auto_checkpoint_records: int = 0
    verify_on_load: bool = False
    verify_sample: int = 16

    def __post_init__(self) -> None:
        _require(self.fsync in ("always", "interval", "off"),
                 f"fsync must be 'always', 'interval', or 'off', got {self.fsync!r}")
        _require(self.fsync_interval >= 1,
                 f"fsync_interval must be >= 1, got {self.fsync_interval}")
        _require(self.auto_checkpoint_records >= 0,
                 "auto_checkpoint_records must be >= 0")
        _require(self.verify_sample >= 1, "verify_sample must be >= 1")


@dataclass(frozen=True)
class PlannerConfig:
    """Cost-based query-planner settings (:mod:`repro.planner`).

    * ``enabled`` — when on, ``strategy="auto"`` similarity queries are
      planned by :class:`~repro.planner.QueryPlanner`: candidate physical
      plans (backend, pre/post filter, over-fetch, MIH ladder depth) are
      priced with calibrated unit costs plus live workload statistics and
      the cheapest wins.  When off, the legacy scattered heuristics
      (``IndexConfig.prefilter_max_selectivity`` et al.) apply unchanged.
    * ``calibration_path`` — calibration sidecar auto-loaded at system
      construction (``repro calibrate --out calibration.json``); when the
      file is missing the planner prices with built-in default units and
      reports ``calibrated=False`` (the ``planner.calibrated`` gauge).
    * ``overfetch_factor`` — safety margin on the ``k / selectivity``
      initial fetch of post-filter plans (same formula the legacy
      ``IndexConfig.postfilter_overfetch`` knob fed).

    Every plan in the planner's search space returns byte-identical
    rankings; this config only moves latency around.
    """

    enabled: bool = True
    calibration_path: "str | None" = "calibration.json"
    overfetch_factor: float = 2.0

    def __post_init__(self) -> None:
        _require(self.overfetch_factor >= 1.0,
                 "overfetch_factor must be >= 1")


@dataclass(frozen=True)
class GeoIndexConfig:
    """Geohash 2D-index settings for the document store (data tier)."""

    precision: int = 5

    def __post_init__(self) -> None:
        _require(1 <= self.precision <= 12,
                 f"geohash precision must be in [1, 12], got {self.precision}")


@dataclass(frozen=True)
class EarthQubeConfig:
    """Top-level EarthQube system configuration (ties all tiers together)."""

    archive: ArchiveConfig = field(default_factory=ArchiveConfig)
    features: FeatureConfig = field(default_factory=FeatureConfig)
    milan: MiLaNConfig = field(default_factory=MiLaNConfig)
    train: TrainConfig = field(default_factory=TrainConfig)
    index: IndexConfig = field(default_factory=IndexConfig)
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    geo_index: GeoIndexConfig = field(default_factory=GeoIndexConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    obs: ObsConfig = field(default_factory=ObsConfig)
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    max_rendered_images: int = 1000
    cart_page_limit: int = 50

    def __post_init__(self) -> None:
        _require(self.max_rendered_images > 0, "max_rendered_images must be positive")
        _require(self.cart_page_limit > 0, "cart_page_limit must be positive")
