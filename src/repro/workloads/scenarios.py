"""The paper's three demonstration scenarios as programmatic workloads
(paper, Section 4).  Each returns a :class:`ScenarioResult` capturing what a
demo visitor would see, so examples, tests, and benchmarks all replay the
same flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bigearthnet.patch import Patch
from ..bigearthnet.synthesis import PatchSynthesizer
from ..errors import ValidationError
from ..geo.bbox import BoundingBox
from ..geo.shapes import Rectangle
from ..earthqube.label_filter import LabelOperator
from ..earthqube.query import QuerySpec
from ..earthqube.server import EarthQube
from ..earthqube.statistics import LabelStatistics
from ..utils.rng import as_rng

# The paper's scenario 1 labels: industrial areas adjacent to inland waters.
INDUSTRIAL_LABEL = "Industrial or commercial units"
INLAND_WATER_LABELS = ("Water bodies", "Water courses")
AGRICULTURE_NATURAL_LABEL = ("Land principally occupied by agriculture, "
                             "with significant areas of natural vegetation")

# Scenario 2's geospatial query: the southwestern tip of Portugal.
SW_PORTUGAL = Rectangle(BoundingBox(west=-9.5, south=37.0, east=-8.0, north=38.6))


@dataclass
class ScenarioResult:
    """What the visitor saw: matches, statistics, and CBIR neighbours."""

    scenario: str
    total_matches: int
    returned_names: list[str]
    statistics: "LabelStatistics | None" = None
    query_name: "str | None" = None
    neighbor_names: list[str] = field(default_factory=list)
    notes: dict = field(default_factory=dict)


def run_label_exploration(system: EarthQube, *, limit: int = 50) -> ScenarioResult:
    """Scenario 1 — label-based exploration.

    "Visitors can search for industrial areas adjacent to inland water
    bodies using the label filtering functionality ... By inspecting the
    label statistics view, visitors can discover other land cover classes
    that fit the query description."
    """
    spec = QuerySpec(
        labels=(INDUSTRIAL_LABEL,) + INLAND_WATER_LABELS,
        label_operator=LabelOperator.SOME,
        limit=limit,
    )
    response = system.search(spec)
    stats = system.statistics_for(response.documents)
    # The paper's follow-up observation: agriculture near polluted waters.
    agriculture_count = stats.counts.get(AGRICULTURE_NATURAL_LABEL, 0)
    return ScenarioResult(
        scenario="label_exploration",
        total_matches=response.total_matches,
        returned_names=response.names,
        statistics=stats,
        notes={
            "operator": spec.label_operator.value,
            "selected_labels": list(spec.labels or ()),
            "agriculture_cooccurrence": agriculture_count,
        },
    )


def run_spatial_query_by_example(system: EarthQube, *, k: int = 10,
                                 render_limit: int = 20) -> ScenarioResult:
    """Scenario 2 — spatial exploration + query-by-existing-example.

    "Visitors can submit a geospatial query covering the southwestern tip of
    Portugal ... visualize the images ... select an image and perform
    content-based image retrieval to display similar images in the 10
    countries."
    """
    spec = QuerySpec(shape=SW_PORTUGAL)
    response = system.search(spec)
    if not response.documents:
        raise ValidationError(
            "spatial scenario found no images in SW Portugal; "
            "archive too small — increase num_patches")
    renders = system.render_many(response.names[:render_limit])
    query_name = response.names[0]
    similar = system.similar_images(query_name, k=k)
    neighbor_docs = system.documents_for(similar.names)
    countries = sorted({d["properties"]["country"] for d in neighbor_docs})
    return ScenarioResult(
        scenario="spatial_query_by_example",
        total_matches=response.total_matches,
        returned_names=response.names,
        query_name=query_name,
        neighbor_names=similar.names,
        statistics=system.statistics_for(neighbor_docs),
        notes={
            "rendered": len(renders),
            "neighbor_countries": countries,
            "radius_used": similar.radius_used,
        },
    )


def run_query_by_new_example(system: EarthQube, *,
                             labels: "tuple[str, ...] | None" = None,
                             k: int = 10,
                             seed: int = 999) -> ScenarioResult:
    """Scenario 3 — query-by-new-example.

    "Sentinel satellites constantly collect new images ... these newly
    collected images do not have any land cover class labels ... visitors
    can upload such images to EarthQube to search for other images with
    similar semantic content.  Based on the semantic search results, one
    could design an automatic labeling process."

    We synthesize a fresh, *unindexed* patch with known (hidden) labels,
    query by it, and vote labels from the neighbours — the automatic
    labeling process the paper sketches.
    """
    labels = labels or ("Coniferous forest", "Water bodies")
    rng = as_rng(seed)
    synthesizer = PatchSynthesizer(system.config.archive)
    s2, s1 = synthesizer.synthesize(labels, "Summer", rng)
    uploaded = Patch(
        name="UPLOAD_0001",
        labels=labels,  # ground truth, hidden from the system
        country="Portugal",
        bbox=BoundingBox(west=-8.9, south=38.5, east=-8.888, north=38.511),
        acquisition_date=__import__("datetime").datetime(2018, 6, 15, 10, 30),
        season="Summer",
        s2_bands=s2,
        s1_bands=s1,
    )
    similar = system.similar_to_new_image(uploaded, k=k)
    neighbor_docs = system.documents_for(similar.names)
    stats = system.statistics_for(neighbor_docs)
    # Automatic labeling: labels occurring in a majority of neighbours.
    majority = max(1, len(neighbor_docs) // 2)
    predicted = [bar.label for bar in stats if bar.count >= majority]
    recovered = sorted(set(predicted) & set(labels))
    return ScenarioResult(
        scenario="query_by_new_example",
        total_matches=len(similar),
        returned_names=similar.names,
        query_name=uploaded.name,
        neighbor_names=similar.names,
        statistics=stats,
        notes={
            "true_labels": list(labels),
            "predicted_labels": predicted,
            "recovered_labels": recovered,
        },
    )
