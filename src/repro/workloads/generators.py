"""Random query workloads for the data-tier and retrieval benchmarks.

Generates realistic :class:`~repro.earthqube.query.QuerySpec` mixes — the
kind of spatial, temporal, and label queries the demo visitors issue —
deterministically from a seed, so benchmark runs are comparable.
"""

from __future__ import annotations

import numpy as np

from ..bigearthnet.clc import get_nomenclature
from ..bigearthnet.countries import COUNTRIES
from ..bigearthnet.seasons import SEASONS
from ..errors import ValidationError
from ..geo.bbox import BoundingBox
from ..geo.shapes import Circle, Rectangle
from ..earthqube.label_filter import LabelOperator
from ..earthqube.query import QuerySpec
from ..utils.rng import as_rng


class QueryWorkloadGenerator:
    """Seeded generator of query-panel workloads."""

    def __init__(self, seed: "int | np.random.Generator | None" = 0) -> None:
        self._rng = as_rng(seed)
        self._nomenclature = get_nomenclature()

    def random_rectangle(self, *, max_extent_deg: float = 3.0) -> Rectangle:
        """A rectangle selection inside a random country's bounding box."""
        if max_extent_deg <= 0:
            raise ValidationError(f"max_extent_deg must be positive, got {max_extent_deg}")
        rng = self._rng
        country = COUNTRIES[int(rng.integers(len(COUNTRIES)))]
        box = country.bbox
        width = float(rng.uniform(0.2, max_extent_deg))
        height = float(rng.uniform(0.2, max_extent_deg))
        lon = float(rng.uniform(box.west, box.east))
        lat = float(rng.uniform(box.south, box.north))
        return Rectangle(BoundingBox.from_center(lon, lat, width, height))

    def random_circle(self, *, max_radius_km: float = 150.0) -> Circle:
        """A circle selection centered in a random country."""
        rng = self._rng
        country = COUNTRIES[int(rng.integers(len(COUNTRIES)))]
        box = country.bbox
        return Circle(
            lon=float(rng.uniform(box.west, box.east)),
            lat=float(rng.uniform(box.south, box.north)),
            radius_km=float(rng.uniform(10.0, max_radius_km)),
        )

    def random_labels(self, count: "int | None" = None) -> tuple[str, ...]:
        """A random label selection of 1-3 classes."""
        rng = self._rng
        if count is None:
            count = int(rng.integers(1, 4))
        names = self._nomenclature.names
        chosen = rng.choice(len(names), size=min(count, len(names)), replace=False)
        return tuple(names[i] for i in sorted(chosen))

    def spatial_query(self) -> QuerySpec:
        """A pure spatial query (rectangle or circle, 50/50)."""
        shape = self.random_rectangle() if self._rng.random() < 0.5 else self.random_circle()
        return QuerySpec(shape=shape)

    def label_query(self, operator: "LabelOperator | None" = None) -> QuerySpec:
        """A pure label query with a random (or given) operator."""
        if operator is None:
            operator = [LabelOperator.SOME, LabelOperator.EXACTLY,
                        LabelOperator.AT_LEAST_AND_MORE][int(self._rng.integers(3))]
        return QuerySpec(labels=self.random_labels(), label_operator=operator)

    def mixed_query(self) -> QuerySpec:
        """Spatial + temporal + label query, the 'power user' pattern."""
        rng = self._rng
        seasons = None
        if rng.random() < 0.4:
            seasons = tuple(np.random.default_rng(int(rng.integers(1 << 31)))
                            .choice(SEASONS, size=int(rng.integers(1, 3)), replace=False))
        return QuerySpec(
            shape=self.random_rectangle(max_extent_deg=5.0),
            date_from="2017-06-01",
            date_to="2018-05-31",
            seasons=seasons,
            labels=self.random_labels() if rng.random() < 0.5 else None,
            label_operator=LabelOperator.SOME,
        )

    def batch(self, count: int, kind: str = "mixed") -> list[QuerySpec]:
        """``count`` queries of a kind: 'spatial', 'label', or 'mixed'."""
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")
        maker = {
            "spatial": self.spatial_query,
            "label": self.label_query,
            "mixed": self.mixed_query,
        }.get(kind)
        if maker is None:
            raise ValidationError(f"unknown workload kind {kind!r}")
        return [maker() for _ in range(count)]
