"""Query workloads and the paper's three demo scenarios."""

from .generators import QueryWorkloadGenerator
from .scenarios import (
    ScenarioResult,
    run_label_exploration,
    run_query_by_new_example,
    run_spatial_query_by_example,
)

__all__ = [
    "QueryWorkloadGenerator",
    "ScenarioResult",
    "run_label_exploration",
    "run_spatial_query_by_example",
    "run_query_by_new_example",
]
