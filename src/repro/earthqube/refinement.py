"""Relevance-feedback query refinement (CBIR extension).

A natural next step the demo's interaction model invites: after a similarity
search, the user marks some results as relevant and others as irrelevant;
the query is refined and re-run.  We implement Rocchio refinement in the
*continuous* code space (before binarization):

    q' = alpha * q + beta * mean(relevant) - gamma * mean(irrelevant)

The refined continuous code is binarized and searched like any other query.
Because MiLaN's metric space is label-semantic, a couple of feedback rounds
sharpen the query toward the labels the user actually wants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.binarize import binarize_continuous
from ..errors import ValidationError
from ..index.codes import pack_bits
from .cbir import CBIRService, SimilarityResponse


@dataclass(frozen=True)
class RocchioWeights:
    """Rocchio coefficients; defaults follow the classic text-IR values."""

    alpha: float = 1.0
    beta: float = 0.75
    gamma: float = 0.25

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.gamma < 0:
            raise ValidationError("Rocchio weights must be non-negative")
        if self.alpha == 0 and self.beta == 0:
            raise ValidationError("alpha and beta cannot both be zero")


class RelevanceFeedbackSession:
    """One interactive refinement session over a CBIR service.

    Keeps the current continuous query vector; :meth:`refine` folds marked
    results in and re-queries.
    """

    def __init__(self, cbir: CBIRService, initial_features: np.ndarray,
                 weights: "RocchioWeights | None" = None) -> None:
        initial_features = np.asarray(initial_features, dtype=np.float64)
        if initial_features.ndim != 1:
            raise ValidationError(
                f"initial_features must be 1D, got shape {initial_features.shape}")
        self.cbir = cbir
        self.weights = weights or RocchioWeights()
        self._query_continuous = cbir.hasher.hash_continuous(
            initial_features[None, :])[0]
        self.rounds = 0

    @classmethod
    def from_archive_image(cls, cbir: CBIRService, system_features: np.ndarray,
                           row: int, weights: "RocchioWeights | None" = None,
                           ) -> "RelevanceFeedbackSession":
        """Start a session from an archive image's feature row."""
        return cls(cbir, np.asarray(system_features)[row], weights)

    @property
    def query_code(self) -> np.ndarray:
        """The current packed query code."""
        return pack_bits(binarize_continuous(self._query_continuous))

    def search(self, k: int = 10) -> SimilarityResponse:
        """Search with the current (possibly refined) query."""
        results = self.cbir._index.search_knn(self.query_code, k)
        max_distance = results[-1].distance if results else 0
        return SimilarityResponse(None, results, max_distance)

    def _codes_for(self, names: "list[str]") -> np.ndarray:
        from ..index.codes import unpack_bits
        codes = [self.cbir.code_of(name) for name in names]
        bits = unpack_bits(np.stack(codes), self.cbir.hasher.num_bits)
        return bits.astype(np.float64) * 2.0 - 1.0  # back to ±1 space

    def refine(self, relevant: "list[str]", irrelevant: "list[str] | None" = None,
               k: int = 10) -> SimilarityResponse:
        """Apply one Rocchio round and re-search.

        ``relevant``/``irrelevant`` are archive image names from previous
        results.  Returns the refreshed ranking.
        """
        if not relevant and not irrelevant:
            raise ValidationError("refine needs at least one marked result")
        w = self.weights
        updated = w.alpha * self._query_continuous
        if relevant:
            updated = updated + w.beta * self._codes_for(relevant).mean(axis=0)
        if irrelevant:
            updated = updated - w.gamma * self._codes_for(irrelevant).mean(axis=0)
        norm = np.abs(updated).max()
        if norm > 0:
            updated = updated / norm  # keep within the tanh range
        self._query_continuous = updated
        self.rounds += 1
        return self.search(k)
