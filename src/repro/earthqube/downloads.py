"""Download services for the result panel.

The paper's result panel lets users "download the names of the retrieved
images as a plain text file", download any single "image as a zip", and
download the cart "together as a single collection" (Section 3.1).  This
module implements those exports against the image-data collection:

* :func:`names_as_text` — the plain-text name list,
* :func:`export_patch_zip` — one image's bands as an in-memory zip of
  ``.npy`` band files plus a JSON metadata entry,
* :func:`export_collection_zip` — a cart's worth of images in one archive.
"""

from __future__ import annotations

import io
import json
import zipfile
from typing import Iterable

import numpy as np

from ..errors import UnknownPatchError, ValidationError
from ..store.database import Database, IMAGE_DATA, METADATA


def names_as_text(names: Iterable[str]) -> str:
    """The retrieved-names text file: one patch name per line."""
    lines = [name for name in names if name]
    return "\n".join(lines) + ("\n" if lines else "")


def _band_arrays(db: Database, name: str) -> dict[str, np.ndarray]:
    image_data = db[IMAGE_DATA]
    try:
        doc = image_data.get(name)
    except Exception:
        raise UnknownPatchError(f"no stored image data for {name!r}") from None
    bands = {}
    for band_name, entry in doc["bands"].items():
        bands[band_name] = np.frombuffer(
            entry["data"], dtype=entry["dtype"]).reshape(entry["shape"])
    return bands


def _metadata_entry(db: Database, name: str) -> dict:
    metadata = db[METADATA]
    try:
        return metadata.get(name)
    except Exception:
        raise UnknownPatchError(f"no metadata for {name!r}") from None


def _write_patch(zf: zipfile.ZipFile, db: Database, name: str) -> None:
    for band_name, array in _band_arrays(db, name).items():
        buffer = io.BytesIO()
        np.save(buffer, array)
        zf.writestr(f"{name}/{band_name}.npy", buffer.getvalue())
    zf.writestr(f"{name}/metadata.json", json.dumps(_metadata_entry(db, name)))


def export_patch_zip(db: Database, name: str) -> bytes:
    """One image as an in-memory zip: per-band ``.npy`` files + metadata."""
    if not name:
        raise ValidationError("patch name must be non-empty")
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        _write_patch(zf, db, name)
    return buffer.getvalue()


def export_collection_zip(db: Database, names: Iterable[str]) -> bytes:
    """A cart download: many images in one zip, plus the name manifest."""
    name_list = list(dict.fromkeys(n for n in names if n))
    if not name_list:
        raise ValidationError("collection export needs at least one name")
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", compression=zipfile.ZIP_DEFLATED) as zf:
        zf.writestr("names.txt", names_as_text(name_list))
        for name in name_list:
            _write_patch(zf, db, name)
    return buffer.getvalue()


def read_band_from_zip(payload: bytes, name: str, band: str) -> np.ndarray:
    """Client-side helper: read one band back out of an exported zip."""
    with zipfile.ZipFile(io.BytesIO(payload)) as zf:
        with zf.open(f"{name}/{band}.npy") as handle:
            return np.load(handle)
