"""The query panel model.

A :class:`QuerySpec` captures everything the EarthQube query panel can
express (paper, Section 3.1): a spatial selection (rectangle, circle, or
polygon — drawn or typed), an acquisition date range, satellites, seasons,
and the label filter with its three operators.  The label switch button is
modelled by ``labels=None`` (switch on: no label filtering) versus a list of
selected labels (switch off: full control).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

from ..bigearthnet.clc import get_nomenclature
from ..bigearthnet.seasons import validate_season
from ..errors import ValidationError
from ..geo.shapes import Shape
from .label_filter import LabelOperator

_VALID_SATELLITES = ("S1", "S2")


@dataclass(frozen=True)
class QuerySpec:
    """One EarthQube query, validated at construction."""

    shape: "Shape | None" = None
    date_from: "str | None" = None
    date_to: "str | None" = None
    seasons: "tuple[str, ...] | None" = None
    satellites: "tuple[str, ...] | None" = None
    labels: "tuple[str, ...] | None" = None
    label_operator: LabelOperator = LabelOperator.SOME
    limit: "int | None" = None
    skip: int = 0

    def __post_init__(self) -> None:
        if self.shape is not None and not isinstance(self.shape, Shape):
            raise ValidationError(
                f"shape must be a geo Shape, got {type(self.shape).__name__}")
        for name in ("date_from", "date_to"):
            value = getattr(self, name)
            if value is not None:
                try:
                    date.fromisoformat(value)
                except ValueError:
                    raise ValidationError(f"{name} must be ISO YYYY-MM-DD, got {value!r}") from None
        if self.date_from and self.date_to and self.date_from > self.date_to:
            raise ValidationError(
                f"date_from {self.date_from!r} is after date_to {self.date_to!r}")
        if self.seasons is not None:
            object.__setattr__(self, "seasons",
                               tuple(validate_season(s) for s in self.seasons))
        if self.satellites is not None:
            for sat in self.satellites:
                if sat not in _VALID_SATELLITES:
                    raise ValidationError(
                        f"unknown satellite {sat!r}; expected one of {_VALID_SATELLITES}")
        if self.labels is not None:
            if not self.labels:
                raise ValidationError(
                    "labels must be None (filtering off) or a non-empty selection")
            try:
                validated = get_nomenclature().validate_names(list(self.labels))
            except Exception as exc:
                raise ValidationError(str(exc)) from exc
            object.__setattr__(self, "labels", tuple(validated))
        if not isinstance(self.label_operator, LabelOperator):
            raise ValidationError(
                f"label_operator must be a LabelOperator, got {self.label_operator!r}")
        if self.limit is not None and self.limit <= 0:
            raise ValidationError(f"limit must be positive, got {self.limit}")
        if self.skip < 0:
            raise ValidationError(f"skip must be >= 0, got {self.skip}")

    @property
    def label_filtering_enabled(self) -> bool:
        """True when the label switch is off and a selection applies."""
        return self.labels is not None

    def describe(self) -> str:
        """One-line human-readable summary (used by logs and examples)."""
        parts: list[str] = []
        if self.shape is not None:
            parts.append(type(self.shape).__name__.lower())
        if self.date_from or self.date_to:
            parts.append(f"dates[{self.date_from or '..'} .. {self.date_to or '..'}]")
        if self.seasons:
            parts.append("seasons=" + ",".join(self.seasons))
        if self.satellites:
            parts.append("satellites=" + ",".join(self.satellites))
        if self.labels:
            parts.append(f"{self.label_operator.value}({len(self.labels)} labels)")
        return " ".join(parts) if parts else "match-all"
