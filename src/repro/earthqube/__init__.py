"""EarthQube: the browser/search-engine tier of the reproduction.

"EarthQube follows a three-tier architecture consisting of a data tier, a
back-end server, and a user interface" (paper, Section 3.2).  This package
is the back-end server plus headless equivalents of every UI behaviour:

* :mod:`repro.earthqube.query` — the query panel model (shape, date range,
  satellites, seasons, labels + operator),
* :mod:`repro.earthqube.label_filter` — the three label operators (*Some*,
  *Exactly*, *At least & more*) in both raw-string and char-codec form,
* :mod:`repro.earthqube.ingest` — archive -> MongoDB-style collections,
* :mod:`repro.earthqube.search` — geospatial + attribute search service,
* :mod:`repro.earthqube.cbir` — MiLaN-backed content-based image retrieval,
* :mod:`repro.earthqube.statistics` — the label-statistics bar chart data,
* :mod:`repro.earthqube.markers` — map-view marker clustering,
* :mod:`repro.earthqube.rendering` — RGB rendering of patches,
* :mod:`repro.earthqube.cart` — the download cart,
* :mod:`repro.earthqube.feedback` — anonymous user feedback,
* :mod:`repro.earthqube.server` — :class:`EarthQube`, the bootstrapped
  system facade used by examples and benchmarks.
"""

from .api import EarthQubeAPI, parse_query_request
from .cart import DownloadCart
from .cbir import CBIRService, RowFilter, SimilarityResponse
from .durability import DurableEarthQube
from .feedback import FeedbackService
from .refinement import RelevanceFeedbackSession, RocchioWeights
from .ingest import ingest_archive, metadata_document
from .label_filter import LabelFilter, LabelOperator
from .markers import Marker, MarkerCluster, MarkerClusterer
from .query import QuerySpec
from .rendering import render_rgb
from .search import SearchResponse, SearchService
from .server import EarthQube
from .statistics import LabelStatistics, label_statistics

__all__ = [
    "EarthQube",
    "DurableEarthQube",
    "EarthQubeAPI",
    "parse_query_request",
    "RelevanceFeedbackSession",
    "RocchioWeights",
    "QuerySpec",
    "LabelOperator",
    "LabelFilter",
    "SearchService",
    "SearchResponse",
    "CBIRService",
    "RowFilter",
    "SimilarityResponse",
    "LabelStatistics",
    "label_statistics",
    "Marker",
    "MarkerCluster",
    "MarkerClusterer",
    "DownloadCart",
    "FeedbackService",
    "ingest_archive",
    "metadata_document",
    "render_rgb",
]
