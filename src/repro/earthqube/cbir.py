"""Content-based image retrieval: the MiLaN integration (paper, Section 3.3).

"To perform a similarity search based on an archive image, we maintain an
in-memory hash table that maps each image patch name to the corresponding
binary code.  For queries based on an external image, the deep learning
model produces a binary code for the query on-the-fly.  Given the binary
code of the query image, EarthQube retrieves all images with binary codes
within a small hamming radius."

:class:`CBIRService` implements exactly that: a name -> packed-code map for
archive queries, on-the-fly feature extraction + hashing for new images, and
a Hamming index (MIH by default) for the radius/kNN search.

Filtered similarity (EarthQube's *combined* queries — metadata constraints
joined with content similarity) runs through the same entry points: every
query method accepts ``filter`` — a :class:`RowFilter`, an iterable of
allowed patch names, or a :class:`~repro.earthqube.query.QuerySpec` when a
``spec_resolver`` is attached (the bootstrapped system wires it to the
metadata search service).  The service picks **pre-filter** (restrict the
Hamming scan / MIH verification to the allowed-row mask) or **post-filter**
(adaptively over-fetched unfiltered search + client-side refill) from the
filter's estimated selectivity; both plans return byte-identical rankings
equal to a brute-force filter-then-rank oracle.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..bigearthnet.patch import Patch
from ..config import IndexConfig
from ..core.hasher import MiLaNHasher
from ..errors import UnknownPatchError, ValidationError
from ..features.extractor import FeatureExtractor
from ..index.hamming import TombstoneSet
from ..index.mih import MultiIndexHashing
from ..index.results import SearchResult
from ..obs import tracing
from ..planner import PhysicalPlan, PlanChoice, QueryPlanner, \
    deprecated_overrides
from .query import QuerySpec

_FILTER_MODES = ("auto", "pre", "post")


@dataclass(frozen=True)
class RowFilter:
    """An allowed-row view of the archive for one metadata filter.

    ``mask`` is a boolean array over index insertion rows (aligned with
    :meth:`CBIRService.indexed_items`), ``names`` the same selection as a
    frozenset of patch names (for post-filter result screening), ``count``
    the number of allowed rows, and ``fingerprint`` a hashable identity
    used in cache keys and micro-batch grouping.
    """

    mask: np.ndarray
    names: frozenset
    count: int
    fingerprint: "Hashable | None" = None

    def selectivity(self, corpus_size: int) -> float:
        """Allowed fraction of the corpus (0 when the corpus is empty)."""
        return self.count / corpus_size if corpus_size else 0.0


@dataclass
class SimilarityResponse:
    """A ranked CBIR result: neighbor names with Hamming distances."""

    query_name: "str | None"
    results: list[SearchResult]
    radius_used: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def names(self) -> list[str]:
        """Neighbor patch names, nearest first."""
        return [str(r.item_id) for r in self.results]

    def excluding_query(self) -> "SimilarityResponse":
        """Drop the query itself from the ranking (self-match at distance 0)."""
        if self.query_name is None:
            return self
        filtered = [r for r in self.results if r.item_id != self.query_name]
        return SimilarityResponse(self.query_name, filtered, self.radius_used)


def shape_name_response(name: str, results: "list[SearchResult]", used: int,
                        k: "int | None") -> SimilarityResponse:
    """Query-by-name response shaping, shared by every query path.

    The index was asked for one extra neighbor (the query matches itself
    at distance 0); drop that self-match and truncate back to ``k``.  The
    single-query, batch, and gateway paths must all shape identically or
    their byte-for-byte equivalence breaks.
    """
    response = SimilarityResponse(name, results, used).excluding_query()
    if k is not None and len(response.results) > k:
        response.results = response.results[:k]
    return response


class CBIRService:
    """MiLaN-backed similarity search over an indexed archive."""

    def __init__(self, hasher: MiLaNHasher, extractor: FeatureExtractor,
                 config: "IndexConfig | None" = None, *,
                 planner: "QueryPlanner | None" = None) -> None:
        if not hasher.is_fitted:
            raise ValidationError("CBIRService requires a fitted MiLaNHasher")
        self.hasher = hasher
        self.extractor = extractor
        self.config = config or IndexConfig()
        # The cost-based query planner; the system facade replaces this with
        # its shared (calibration-loaded, workload-fed) instance.
        self.planner = planner if planner is not None else QueryPlanner()
        # Deprecated IndexConfig knobs become planner overrides (one
        # DeprecationWarning at construction, silent when planner disabled).
        self._planner_overrides = deprecated_overrides(
            self.config, warn=self.planner.config.enabled)
        self._index = MultiIndexHashing(hasher.num_bits, self.config.mih_tables)
        # The paper's in-memory hash table: patch name -> packed binary code.
        self._code_by_name: dict[str, np.ndarray] = {}
        # Row-aligned snapshot of the same codes: _names[i] owns _codes[i].
        # Kept so indexed_items() hands out O(1) views instead of
        # re-stacking every stored code; online adds buffer in _pending
        # and fold in one vstack at the next snapshot.
        words = -(-hasher.num_bits // 64)
        self._names: list[str] = []
        self._codes: np.ndarray = np.empty((0, words), dtype=np.uint64)
        self._pending: list[np.ndarray] = []
        self._row_by_name: dict[str, int] = {}
        # Tombstoned rows (deleted/superseded images): still present in the
        # row-aligned store so filters stay row-stable, but dead in the
        # index and dropped by compact().
        self._tombstones = TombstoneSet()
        # Optional QuerySpec -> RowFilter resolver, attached by the system
        # facade so `filter=QuerySpec(...)` works at this level too.
        self.spec_resolver = None

    def use_planner(self, planner: QueryPlanner) -> None:
        """Adopt a shared planner instance (the system facade's
        calibration-loaded, workload-fed one).  Deprecated-knob overrides
        are recomputed against the new planner without re-warning — the
        construction-time warning already fired."""
        self.planner = planner
        self._planner_overrides = deprecated_overrides(self.config, warn=False)

    def __len__(self) -> int:
        return len(self._code_by_name)

    def build(self, names: Sequence[str], features: np.ndarray) -> None:
        """Hash archive features and build the retrieval index."""
        if len(names) != len(set(names)):
            raise ValidationError("archive names must be unique")
        codes = self.hasher.hash_packed(features)
        if codes.shape[0] != len(names):
            raise ValidationError(
                f"features rows ({codes.shape[0]}) must match names ({len(names)})")
        self._code_by_name = {name: codes[i] for i, name in enumerate(names)}
        self._names = list(names)
        self._row_by_name = {name: i for i, name in enumerate(names)}
        self._codes = codes
        self._pending = []
        self._tombstones.clear()
        self._index.build(list(names), codes)

    def code_of(self, name: str) -> np.ndarray:
        """The stored packed code of an archive image."""
        try:
            return self._code_by_name[name]
        except KeyError:
            raise UnknownPatchError(f"no indexed image named {name!r}") from None

    def has(self, name: str) -> bool:
        """Is an image of that name indexed? (Owner lookup for federation.)"""
        return name in self._code_by_name

    def indexed_items(self) -> "tuple[list[str], np.ndarray]":
        """Names and packed codes in insertion (index row) order.

        The serving tier builds its sharded index from this snapshot; the
        row order matches the retrieval index's insertion order, so both
        tiers share the same deterministic (distance, row) tie-break.

        The code matrix is the service's row-aligned store itself (a view,
        not a copy): after pending online adds are folded in — one vstack
        amortized over all adds since the last snapshot — this is O(1) in
        archive size, where re-stacking N stored codes per call was O(N).

        The snapshot is **canonical**: if any rows are tombstoned the
        service compacts first, so the returned rows are exactly the
        surviving corpus and align with every mask :meth:`make_filter`
        hands out afterwards.  A serving tier built earlier must be
        rebuilt/compacted in the same step (see
        :meth:`~repro.earthqube.server.EarthQube.compact_index`).
        """
        if len(self._tombstones):
            self.compact()
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        return list(self._names), self._codes

    def add_image(self, name: str, features: np.ndarray) -> np.ndarray:
        """Online ingestion: hash and index one new image.

        Returns the packed code.  The image becomes retrievable immediately
        (the MIH substring tables are updated in place) — the extension the
        paper's query-by-new-example scenario motivates: newly acquired
        Sentinel images flow into the index without a rebuild.
        """
        if name in self._code_by_name:
            raise ValidationError(f"image {name!r} is already indexed")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValidationError(f"features must be 1D, got shape {features.shape}")
        code = self.hasher.hash_packed(features[None, :])[0]
        self._code_by_name[name] = code
        self._row_by_name[name] = len(self._names)
        self._names.append(name)
        self._pending.append(code)
        self._index.add(name, code)
        return code

    def add_code(self, name: str, code: np.ndarray) -> np.ndarray:
        """Index an already-hashed packed code (replication shard import).

        The federation's shard handoff ships codes between replicas; the
        receiving node must index the *identical* bits, so this skips
        feature extraction and hashing entirely (replicas share one
        trained hasher — re-hashing would only cost time, but importing
        the shipped code makes the copy bit-exact by construction).
        """
        if name in self._code_by_name:
            raise ValidationError(f"image {name!r} is already indexed")
        code = np.ascontiguousarray(np.asarray(code, dtype=np.uint64))
        words = -(-self.hasher.num_bits // 64)
        if code.shape != (words,):
            raise ValidationError(
                f"packed code must have shape ({words},), got {code.shape}")
        self._code_by_name[name] = code
        self._row_by_name[name] = len(self._names)
        self._names.append(name)
        self._pending.append(code)
        self._index.add(name, code)
        return code

    # ------------------------------------------------------------------ #
    # Deletion / update lifecycle
    # ------------------------------------------------------------------ #

    def remove_image(self, name: str) -> np.ndarray:
        """Remove one image from the archive index (tombstone, O(1)).

        The image stops appearing in every query path immediately; its row
        is physically dropped at the next :meth:`compact`.  Returns the
        packed code that was removed.
        """
        code = self._code_by_name.pop(name, None)
        if code is None:
            raise UnknownPatchError(f"no indexed image named {name!r}")
        self._tombstones.mark(self._row_by_name.pop(name))
        self._index.remove(name)
        return code

    def update_image(self, name: str, features: np.ndarray) -> np.ndarray:
        """Re-embed an existing image (e.g. a reprocessed acquisition).

        The old code is tombstoned and the new one appended under the same
        name, so the image re-enters the insertion order at the end —
        exactly as if it had been deleted and re-ingested.  Returns the
        new packed code.
        """
        if name not in self._code_by_name:
            raise UnknownPatchError(f"no indexed image named {name!r}")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValidationError(f"features must be 1D, got shape {features.shape}")
        # Hash before mutating anything: a bad feature vector must leave
        # the old embedding fully intact.
        code = self.hasher.hash_packed(features[None, :])[0]
        self._tombstones.mark(self._row_by_name.pop(name))
        self._index.remove(name)
        self._code_by_name[name] = code
        self._row_by_name[name] = len(self._names)
        self._names.append(name)
        self._pending.append(code)
        self._index.add(name, code)
        return code

    @property
    def dead_rows(self) -> int:
        """Tombstoned rows awaiting compaction."""
        return len(self._tombstones)

    def compaction_due(self) -> bool:
        """Have dead rows crossed the configured compaction threshold?"""
        return self._tombstones.due(len(self._names),
                                    self.config.compact_min_dead,
                                    self.config.compact_max_dead_fraction)

    def compact(self) -> None:
        """Physically drop tombstoned rows and rebuild the index.

        Surviving rows keep their relative order, so every query result is
        byte-identical before and after.  Rows are renumbered: previously
        issued :class:`RowFilter` masks are stale after this call — the
        serving tier must be compacted in the same step
        (:meth:`~repro.earthqube.server.EarthQube.compact_index`).
        """
        if not len(self._tombstones):
            return
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        keep = np.flatnonzero(self._tombstones.alive_mask(len(self._names)))
        self._names = [self._names[int(row)] for row in keep]
        self._codes = self._codes[keep]
        self._row_by_name = {name: i for i, name in enumerate(self._names)}
        # Re-point the name->code map at the compacted matrix: the old
        # entries are views into the pre-compact matrix and would pin the
        # dead rows' memory for as long as any name is held.
        self._code_by_name = {name: self._codes[i]
                              for i, name in enumerate(self._names)}
        self._tombstones.clear()
        self._index.build(list(self._names), self._codes)

    # ------------------------------------------------------------------ #
    # Durability: physical-state capture and restore
    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> dict:
        """Row-aligned physical state for a checkpoint.

        Unlike :meth:`indexed_items` this does **not** compact: the
        checkpoint captures the exact physical layout — tombstoned rows in
        place, marked dead in the ``alive`` mask — so a restored node
        reproduces pre-crash query results byte-for-byte, including the
        (distance, insertion row) tie-break.  Pending online adds are
        folded in (cheap; one vstack).

        Returns ``{"names": list[str], "codes": (N, W) uint64,
        "alive": (N,) bool}``, all row-aligned.
        """
        if self._pending:
            self._codes = np.vstack([self._codes, np.stack(self._pending)])
            self._pending = []
        alive = np.ones(len(self._names), dtype=bool)
        for row in self._tombstones.dead:
            alive[row] = False
        return {"names": list(self._names), "codes": self._codes,
                "alive": alive}

    def restore_state(self, names: Sequence[str], codes: np.ndarray,
                      alive: np.ndarray) -> None:
        """Rebuild from a checkpoint's physical state (no re-hashing).

        ``codes`` may be an mmapped read-only matrix straight from a
        snapshot sidecar — this is what makes restart O(corpus read)
        instead of O(re-embed + rebuild).  A name may appear on several
        rows (an updated image keeps its dead predecessor row until
        compaction) but at most the *last* occurrence may be alive; the
        name maps are rebuilt from alive rows only.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        alive = np.asarray(alive, dtype=bool)
        names = list(names)
        words = -(-self.hasher.num_bits // 64)
        if codes.ndim != 2 or codes.shape != (len(names), words):
            raise ValidationError(
                f"restore needs ({len(names)}, {words}) codes, got "
                f"{codes.shape}")
        if alive.shape != (len(names),):
            raise ValidationError(
                f"alive mask shape {alive.shape} must be ({len(names)},)")
        row_by_name: dict[str, int] = {}
        code_by_name: dict[str, np.ndarray] = {}
        for row, name in enumerate(names):
            if alive[row]:
                if name in row_by_name:
                    raise ValidationError(
                        f"snapshot has {name!r} alive on rows "
                        f"{row_by_name[name]} and {row}")
                row_by_name[name] = row
                code_by_name[name] = codes[row]
        self._names = names
        self._codes = codes
        self._pending = []
        self._row_by_name = row_by_name
        self._code_by_name = code_by_name
        self._tombstones.clear()
        dead_rows = np.flatnonzero(~alive)
        for row in dead_rows:
            self._tombstones.mark(int(row))
        self._index.restore(names, codes, dead_rows)

    # ------------------------------------------------------------------ #
    # Filters
    # ------------------------------------------------------------------ #

    def make_filter(self, names: Iterable[str], *,
                    fingerprint: "Hashable | None" = None) -> RowFilter:
        """Build a :class:`RowFilter` from allowed patch names.

        Names not indexed by this archive are ignored (a federation-wide
        filter intersects naturally with each member's corpus).
        """
        mask = np.zeros(len(self._names), dtype=bool)
        allowed: list[str] = []
        for name in names:
            row = self._row_by_name.get(name)
            if row is not None and not mask[row]:
                mask[row] = True
                allowed.append(name)
        return RowFilter(mask=mask, names=frozenset(allowed),
                         count=len(allowed), fingerprint=fingerprint)

    def _coerce_filter(self, filter: object) -> "RowFilter | None":
        if filter is None or isinstance(filter, RowFilter):
            return filter
        if isinstance(filter, QuerySpec):
            if self.spec_resolver is None:
                raise ValidationError(
                    "QuerySpec filters need a metadata tier; attach a "
                    "spec_resolver or pass a RowFilter / name iterable")
            with tracing.span("cbir.filter_resolve") as resolve_span:
                row_filter = self.spec_resolver(filter)
                resolve_span.annotate(allowed=row_filter.count)
            return row_filter
        if isinstance(filter, (list, tuple, set, frozenset)):
            return self.make_filter(filter)
        raise ValidationError(
            f"filter must be a RowFilter, QuerySpec, or iterable of names, "
            f"got {type(filter).__name__}")

    def _filter_mode(self, row_filter: RowFilter, strategy: str) -> str:
        """Resolve ``auto`` to pre/post from estimated selectivity."""
        if strategy not in _FILTER_MODES:
            raise ValidationError(
                f"strategy must be one of {_FILTER_MODES}, got {strategy!r}")
        if strategy != "auto":
            return strategy
        threshold = self.config.prefilter_max_selectivity
        return ("pre" if row_filter.selectivity(len(self._names)) <= threshold
                else "post")

    def _initial_fetch(self, k: int, row_filter: RowFilter) -> int:
        """First post-filter over-fetch: ``k / selectivity`` plus margin."""
        n = len(self._names)
        estimated = math.ceil(k * n * self.config.postfilter_overfetch
                              / max(row_filter.count, 1))
        return min(n, max(k, estimated))

    def _postfilter_knn(self, code: np.ndarray, k: int,
                        row_filter: RowFilter,
                        *, start_fetch: "int | None" = None,
                        probe_budget: "int | None" = None,
                        ) -> list[SearchResult]:
        """Adaptive over-fetch + refill: unfiltered kNN, screened by name.

        The unfiltered ranking is a deterministic (distance, insertion
        row) order, so the first ``k`` allowed survivors are exactly the
        filtered top-k; when the screen comes up short the fetch grows
        geometrically until it is satisfied or the corpus is exhausted.
        """
        n = len(self._names)
        fetch = start_fetch if start_fetch is not None else \
            self._initial_fetch(k, row_filter)
        while True:
            results = self._index.search_knn(code, fetch,
                                             probe_budget=probe_budget)
            kept = [r for r in results if r.item_id in row_filter.names]
            if len(kept) >= k or fetch >= n:
                return kept[:k]
            fetch = min(n, fetch * 4)

    def _plan_for(self, row_filter: "RowFilter | None", *, k: "int | None",
                  radius: "int | None", strategy: str,
                  plan_hint: "dict | None" = None) -> PlanChoice:
        """Choose the physical plan for one (possibly filtered) query.

        With the planner enabled, candidate plans (linear vs MIH backend,
        pre vs post filtering, calibrated probe budget, over-fetch size)
        are priced and the cheapest wins; an explicit ``strategy=``, a
        federation ``plan_hint``, or a deprecated config override pins the
        corresponding dimension.  With the planner disabled the legacy
        selectivity-threshold heuristics produce the (single) plan, so
        pre-planner deployments behave identically.
        """
        n = len(self._names)
        forced_mode = None
        selectivity = filter_count = None
        if row_filter is not None:
            if strategy not in _FILTER_MODES:
                raise ValidationError(
                    f"strategy must be one of {_FILTER_MODES}, got {strategy!r}")
            if strategy != "auto":
                forced_mode = strategy
            selectivity = row_filter.selectivity(n)
            filter_count = row_filter.count
        if not self.planner.config.enabled:
            mode = overfetch = None
            if row_filter is not None:
                mode = self._filter_mode(row_filter, strategy)
                if mode == "post" and k is not None:
                    overfetch = self._initial_fetch(k, row_filter)
            return PlanChoice(
                chosen=PhysicalPlan(backend="mih", filter_mode=mode,
                                    overfetch=overfetch, estimator="legacy"),
                forced=True, context={"corpus_size": n})
        forced_backend = None
        if plan_hint:
            forced_backend = plan_hint.get("backend")
            if forced_backend not in ("mih", "linear"):
                # The hint came from a tier with a different backend menu
                # (e.g. a gateway's "sharded"); keep the transferable part.
                forced_backend = None
            if forced_mode is None and row_filter is not None:
                forced_mode = plan_hint.get("filter_mode")
        overrides = self._planner_overrides
        threshold = overrides.get("prefilter_max_selectivity")
        if forced_mode is None and row_filter is not None and \
                threshold is not None:
            forced_mode = "pre" if selectivity <= threshold else "post"
        return self.planner.plan_similarity(
            corpus_size=n, k=k, radius=radius, selectivity=selectivity,
            filter_count=filter_count, num_bits=self.hasher.num_bits,
            num_tables=self.config.mih_tables, forced_mode=forced_mode,
            forced_backend=forced_backend,
            overfetch_factor=overrides.get("overfetch_factor"))

    def plan_query(self, row_filter: "RowFilter | None" = None, *,
                   k: "int | None" = None, radius: "int | None" = None,
                   strategy: str = "auto") -> PlanChoice:
        """The planner's decision for one query, without executing it.

        The federation front-end calls this on a query's owning node and
        scatters the chosen plan's summary so every member executes one
        consistent strategy (results are byte-identical either way — the
        hint only pins latency behavior).
        """
        return self._plan_for(row_filter, k=k, radius=radius,
                              strategy=strategy)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query(self, query, *, k: "int | None" = 10,
              radius: "int | None" = None, filter: object = None,
              strategy: str = "auto") -> SimilarityResponse:
        """Unified (optionally filtered) CBIR entry point.

        ``query`` is an archive image name (``str``), an external
        :class:`~repro.bigearthnet.patch.Patch`, or a 1-D feature vector.
        ``filter`` restricts results to metadata-matching images (see the
        module docstring); ``strategy`` forces the pre/post plan (tests and
        benchmarks — ``"auto"`` is the cost-based default).
        """
        if isinstance(query, str):
            return self.query_by_name(query, k=k, radius=radius,
                                      filter=filter, strategy=strategy)
        if isinstance(query, Patch):
            return self.query_by_patch(query, k=k, radius=radius,
                                       filter=filter, strategy=strategy)
        return self.query_by_features(query, k=k, radius=radius,
                                      filter=filter, strategy=strategy)

    def query_by_name(self, name: str, *, k: "int | None" = 10,
                      radius: "int | None" = None, filter: object = None,
                      strategy: str = "auto") -> SimilarityResponse:
        """Query-by-existing-example: similarity search from an archive image.

        Either ``k`` (nearest neighbors, radius grown as needed) or an
        explicit Hamming ``radius``.
        """
        code = self.code_of(name)
        # Request one extra result: the query matches itself at distance 0
        # and is dropped from the response.
        results, used = self._run(code, k=None if k is None else k + 1,
                                  radius=radius, filter=filter,
                                  strategy=strategy)
        return shape_name_response(name, results, used, k)

    def query_by_patch(self, patch: Patch, *, k: "int | None" = 10,
                       radius: "int | None" = None, filter: object = None,
                       strategy: str = "auto") -> SimilarityResponse:
        """Query-by-new-example: hash an external image on the fly."""
        features = self.extractor.extract(patch)
        return self.query_by_features(features, k=k, radius=radius,
                                      filter=filter, strategy=strategy)

    def query_by_features(self, features: np.ndarray, *, k: "int | None" = 10,
                          radius: "int | None" = None, filter: object = None,
                          strategy: str = "auto") -> SimilarityResponse:
        """Similarity search from a raw feature vector."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValidationError(f"query features must be 1D, got shape {features.shape}")
        code = self.hasher.hash_packed(features[None, :])[0]
        results, used = self._run(code, k=k, radius=radius, filter=filter,
                                  strategy=strategy)
        return SimilarityResponse(None, results, used)

    def query_batch(self, queries: Sequence, *, k: "int | None" = 10,
                    radius: "int | None" = None, filter: object = None,
                    strategy: str = "auto") -> list[SimilarityResponse]:
        """Batch CBIR: one ranked response per query, in request order.

        Each query is either an archive image name (``str``, matching
        :meth:`query_by_name` semantics: self-match dropped, truncated to
        ``k``) or a 1-D feature vector (matching :meth:`query_by_features`).
        The whole batch runs through the index's native batch path — one
        vectorized probe/verify pass instead of a Python loop — and the
        responses are byte-identical to looping the single-query methods.
        ``filter`` (shared by the whole batch) restricts every query to the
        metadata-matching images.
        """
        queries = list(queries)
        responses: "list[SimilarityResponse | None]" = [None] * len(queries)
        name_positions: list[int] = []
        name_codes: list[np.ndarray] = []
        feature_positions: list[int] = []
        feature_codes: list[np.ndarray] = []
        for position, query in enumerate(queries):
            if isinstance(query, str):
                name_positions.append(position)
                name_codes.append(self.code_of(query))
            else:
                features = np.asarray(query, dtype=np.float64)
                if features.ndim != 1:
                    raise ValidationError(
                        f"query features must be 1D, got shape {features.shape}")
                feature_positions.append(position)
                # Hashed exactly as the single-query path hashes it, so a
                # batched feature query maps to the identical code.
                feature_codes.append(self.hasher.hash_packed(features[None, :])[0])
        if name_positions:
            # One extra neighbor per name query: the self-match at
            # distance 0 is dropped from the response.
            batches, used_list = self._run_batch(
                np.stack(name_codes), k=None if k is None else k + 1,
                radius=radius, filter=filter, strategy=strategy)
            for position, results, used in zip(name_positions, batches, used_list):
                responses[position] = shape_name_response(
                    queries[position], results, used, k)
        if feature_positions:
            batches, used_list = self._run_batch(
                np.stack(feature_codes), k=k, radius=radius, filter=filter,
                strategy=strategy)
            for position, results, used in zip(feature_positions, batches,
                                               used_list):
                responses[position] = SimilarityResponse(None, results, used)
        return responses  # type: ignore[return-value]

    def query_code(self, code: np.ndarray, *, k: "int | None" = None,
                   radius: "int | None" = None, filter: object = None,
                   strategy: str = "auto", plan_hint: "dict | None" = None,
                   ) -> "tuple[list[SearchResult], int]":
        """Raw packed-code search: ``(results, radius_used)``.

        The federation tier's per-node entry point — a remote peer resolves
        a query to a code once, then every member archive answers the same
        code (each applying ``filter`` against its own metadata).
        ``plan_hint`` carries the owner node's plan summary so federation
        members make one consistent pre/post decision instead of each
        re-planning from local statistics.  Semantics match :meth:`_run`
        exactly (no self-match handling; response shaping is the caller's
        job).
        """
        return self._run(np.asarray(code, dtype=np.uint64), k=k, radius=radius,
                         filter=filter, strategy=strategy,
                         plan_hint=plan_hint)

    def query_codes_batch(self, codes: np.ndarray, *, k: "int | None" = None,
                          radius: "int | None" = None, filter: object = None,
                          strategy: str = "auto",
                          plan_hint: "dict | None" = None,
                          ) -> "list[tuple[list[SearchResult], int]]":
        """Batch :meth:`query_code`: one ``(results, radius_used)`` per row."""
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.ndim != 2:
            raise ValidationError(
                f"batch code query expects (Q, W) packed codes, got {codes.shape}")
        batches, used_list = self._run_batch(codes, k=k, radius=radius,
                                             filter=filter, strategy=strategy,
                                             plan_hint=plan_hint)
        return list(zip(batches, used_list))

    @staticmethod
    def _validate_params(k: "int | None", radius: "int | None") -> None:
        if radius is not None:
            if radius < 0:
                raise ValidationError(f"radius must be >= 0, got {radius}")
        elif k is None or k <= 0:
            raise ValidationError("provide k > 0 or an explicit radius")

    @staticmethod
    def _used_radius(results: "list[SearchResult]",
                     radius: "int | None") -> int:
        if radius is not None:
            return radius
        return results[-1].distance if results else 0

    def _annotate_plan_family(self, choice: PlanChoice,
                              row_filter: "RowFilter | None") -> None:
        """Annotate the request's query family from the chosen plan."""
        plan = choice.chosen
        tracing.annotate(backend=plan.backend)
        if row_filter is not None:
            mode = plan.filter_mode
            tracing.annotate(
                filter_mode=mode, filter_count=row_filter.count,
                strategy="prefilter" if mode == "pre" else "postfilter",
                selectivity=row_filter.selectivity(len(self._names)))

    def _run_batch(self, codes: np.ndarray, *, k: "int | None",
                   radius: "int | None", filter: object = None,
                   strategy: str = "auto", plan_hint: "dict | None" = None,
                   ) -> "tuple[list[list[SearchResult]], list[int]]":
        self._validate_params(k, radius)
        row_filter = self._coerce_filter(filter)
        if row_filter is not None and row_filter.count == 0:
            tracing.annotate(backend="mih")
            batches = [[] for _ in range(codes.shape[0])]
            return batches, [self._used_radius(results, radius)
                             for results in batches]
        choice = self._plan_for(row_filter, k=k, radius=radius,
                                strategy=strategy, plan_hint=plan_hint)
        plan = choice.chosen
        self._annotate_plan_family(choice, row_filter)
        budget = plan.probe_budget
        started = time.perf_counter_ns()
        if row_filter is None:
            if radius is not None:
                batches = self._index.search_radius_batch(
                    codes, radius, probe_budget=budget)
            else:
                batches = self._index.search_knn_batch(
                    codes, k, probe_budget=budget)
        elif radius is not None:
            if plan.filter_mode == "pre":
                batches = self._index.search_radius_batch(
                    codes, radius, allowed=row_filter.mask,
                    probe_budget=budget)
            else:
                batches = [
                    [r for r in results if r.item_id in row_filter.names]
                    for results in self._index.search_radius_batch(
                        codes, radius, probe_budget=budget)]
        elif plan.filter_mode == "pre":
            batches = self._index.search_knn_batch(
                codes, k, allowed=row_filter.mask, probe_budget=budget)
        else:
            # One shared over-fetch pass for the whole batch, then
            # per-query refill for the (rare) under-filled screens.
            n = len(self._names)
            fetch = plan.overfetch if plan.overfetch is not None else \
                self._initial_fetch(k, row_filter)
            fetched = self._index.search_knn_batch(codes, fetch,
                                                   probe_budget=budget)
            batches = []
            for position, results in enumerate(fetched):
                kept = [r for r in results
                        if r.item_id in row_filter.names]
                if len(kept) >= k or fetch >= n:
                    batches.append(kept[:k])
                else:
                    batches.append(self._postfilter_knn(
                        codes[position], k, row_filter,
                        start_fetch=min(n, fetch * 4), probe_budget=budget))
        tracing.annotate(plan=choice.explain(
            measured_ns=time.perf_counter_ns() - started))
        return batches, [self._used_radius(results, radius)
                         for results in batches]

    def _run(self, code: np.ndarray, *, k: "int | None",
             radius: "int | None", filter: object = None,
             strategy: str = "auto", plan_hint: "dict | None" = None,
             ) -> tuple[list[SearchResult], int]:
        self._validate_params(k, radius)
        row_filter = self._coerce_filter(filter)
        if row_filter is not None and row_filter.count == 0:
            tracing.annotate(backend="mih")
            return [], self._used_radius([], radius)
        choice = self._plan_for(row_filter, k=k, radius=radius,
                                strategy=strategy, plan_hint=plan_hint)
        plan = choice.chosen
        self._annotate_plan_family(choice, row_filter)
        budget = plan.probe_budget
        started = time.perf_counter_ns()
        if row_filter is None:
            if radius is not None:
                results = self._index.search_radius(code, radius,
                                                    probe_budget=budget)
            else:
                results = self._index.search_knn(code, k, probe_budget=budget)
        elif radius is not None:
            if plan.filter_mode == "pre":
                results = self._index.search_radius(
                    code, radius, allowed=row_filter.mask,
                    probe_budget=budget)
            else:
                results = [r for r in self._index.search_radius(
                               code, radius, probe_budget=budget)
                           if r.item_id in row_filter.names]
        elif plan.filter_mode == "pre":
            results = self._index.search_knn(code, k, allowed=row_filter.mask,
                                             probe_budget=budget)
        else:
            results = self._postfilter_knn(code, k, row_filter,
                                           start_fetch=plan.overfetch,
                                           probe_budget=budget)
        tracing.annotate(plan=choice.explain(
            measured_ns=time.perf_counter_ns() - started))
        return results, self._used_radius(results, radius)
