"""Content-based image retrieval: the MiLaN integration (paper, Section 3.3).

"To perform a similarity search based on an archive image, we maintain an
in-memory hash table that maps each image patch name to the corresponding
binary code.  For queries based on an external image, the deep learning
model produces a binary code for the query on-the-fly.  Given the binary
code of the query image, EarthQube retrieves all images with binary codes
within a small hamming radius."

:class:`CBIRService` implements exactly that: a name -> packed-code map for
archive queries, on-the-fly feature extraction + hashing for new images, and
a Hamming index (MIH by default) for the radius/kNN search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..bigearthnet.patch import Patch
from ..config import IndexConfig
from ..core.hasher import MiLaNHasher
from ..errors import UnknownPatchError, ValidationError
from ..features.extractor import FeatureExtractor
from ..index.mih import MultiIndexHashing
from ..index.results import SearchResult


@dataclass
class SimilarityResponse:
    """A ranked CBIR result: neighbor names with Hamming distances."""

    query_name: "str | None"
    results: list[SearchResult]
    radius_used: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def names(self) -> list[str]:
        """Neighbor patch names, nearest first."""
        return [str(r.item_id) for r in self.results]

    def excluding_query(self) -> "SimilarityResponse":
        """Drop the query itself from the ranking (self-match at distance 0)."""
        if self.query_name is None:
            return self
        filtered = [r for r in self.results if r.item_id != self.query_name]
        return SimilarityResponse(self.query_name, filtered, self.radius_used)


class CBIRService:
    """MiLaN-backed similarity search over an indexed archive."""

    def __init__(self, hasher: MiLaNHasher, extractor: FeatureExtractor,
                 config: "IndexConfig | None" = None) -> None:
        if not hasher.is_fitted:
            raise ValidationError("CBIRService requires a fitted MiLaNHasher")
        self.hasher = hasher
        self.extractor = extractor
        self.config = config or IndexConfig()
        self._index = MultiIndexHashing(hasher.num_bits, self.config.mih_tables)
        # The paper's in-memory hash table: patch name -> packed binary code.
        self._code_by_name: dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._code_by_name)

    def build(self, names: Sequence[str], features: np.ndarray) -> None:
        """Hash archive features and build the retrieval index."""
        if len(names) != len(set(names)):
            raise ValidationError("archive names must be unique")
        codes = self.hasher.hash_packed(features)
        if codes.shape[0] != len(names):
            raise ValidationError(
                f"features rows ({codes.shape[0]}) must match names ({len(names)})")
        self._code_by_name = {name: codes[i] for i, name in enumerate(names)}
        self._index.build(list(names), codes)

    def code_of(self, name: str) -> np.ndarray:
        """The stored packed code of an archive image."""
        try:
            return self._code_by_name[name]
        except KeyError:
            raise UnknownPatchError(f"no indexed image named {name!r}") from None

    def indexed_items(self) -> "tuple[list[str], np.ndarray]":
        """Names and packed codes in insertion (index row) order.

        The serving tier builds its sharded index from this snapshot; the
        row order matches the retrieval index's insertion order, so both
        tiers share the same deterministic (distance, row) tie-break.
        """
        names = list(self._code_by_name)
        if not names:
            words = -(-self.hasher.num_bits // 64)
            return [], np.empty((0, words), dtype=np.uint64)
        return names, np.stack([self._code_by_name[name] for name in names])

    def add_image(self, name: str, features: np.ndarray) -> np.ndarray:
        """Online ingestion: hash and index one new image.

        Returns the packed code.  The image becomes retrievable immediately
        (the MIH substring tables are updated in place) — the extension the
        paper's query-by-new-example scenario motivates: newly acquired
        Sentinel images flow into the index without a rebuild.
        """
        if name in self._code_by_name:
            raise ValidationError(f"image {name!r} is already indexed")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValidationError(f"features must be 1D, got shape {features.shape}")
        code = self.hasher.hash_packed(features[None, :])[0]
        self._code_by_name[name] = code
        self._index.add(name, code)
        return code

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def query_by_name(self, name: str, *, k: "int | None" = 10,
                      radius: "int | None" = None) -> SimilarityResponse:
        """Query-by-existing-example: similarity search from an archive image.

        Either ``k`` (nearest neighbors, radius grown as needed) or an
        explicit Hamming ``radius``.
        """
        code = self.code_of(name)
        # Request one extra result: the query matches itself at distance 0
        # and is dropped from the response.
        results, used = self._run(code, k=None if k is None else k + 1,
                                  radius=radius)
        response = SimilarityResponse(name, results, used).excluding_query()
        if k is not None and len(response.results) > k:
            response.results = response.results[:k]
        return response

    def query_by_patch(self, patch: Patch, *, k: "int | None" = 10,
                       radius: "int | None" = None) -> SimilarityResponse:
        """Query-by-new-example: hash an external image on the fly."""
        features = self.extractor.extract(patch)
        return self.query_by_features(features, k=k, radius=radius)

    def query_by_features(self, features: np.ndarray, *, k: "int | None" = 10,
                          radius: "int | None" = None) -> SimilarityResponse:
        """Similarity search from a raw feature vector."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 1:
            raise ValidationError(f"query features must be 1D, got shape {features.shape}")
        code = self.hasher.hash_packed(features[None, :])[0]
        results, used = self._run(code, k=k, radius=radius)
        return SimilarityResponse(None, results, used)

    def _run(self, code: np.ndarray, *, k: "int | None",
             radius: "int | None") -> tuple[list[SearchResult], int]:
        if radius is not None:
            if radius < 0:
                raise ValidationError(f"radius must be >= 0, got {radius}")
            return self._index.search_radius(code, radius), radius
        if k is None or k <= 0:
            raise ValidationError("provide k > 0 or an explicit radius")
        results = self._index.search_knn(code, k)
        max_distance = results[-1].distance if results else 0
        return results, max_distance
