"""Anonymous user feedback, stored in the ``feedback`` collection.

"The collection feedback stores anonymous user-provided text feedback, such
as public reactions and comments" (paper, Section 3.2).
"""

from __future__ import annotations

from datetime import datetime, timezone

from ..errors import ValidationError
from ..store.database import Database, FEEDBACK

_MAX_FEEDBACK_CHARS = 4000


class FeedbackService:
    """Validated writes/reads against the feedback collection."""

    def __init__(self, db: Database) -> None:
        self._collection = db[FEEDBACK]

    def submit(self, text: str, *, category: str = "comment") -> int:
        """Store one feedback entry; returns the document id.

        Entries are anonymous by design: no user identifier is accepted or
        stored, only the text, a category, and a UTC timestamp.
        """
        if not isinstance(text, str) or not text.strip():
            raise ValidationError("feedback text must be a non-empty string")
        if len(text) > _MAX_FEEDBACK_CHARS:
            raise ValidationError(
                f"feedback text exceeds {_MAX_FEEDBACK_CHARS} characters")
        if category not in ("comment", "reaction", "bug"):
            raise ValidationError(f"unknown feedback category {category!r}")
        return self._collection.insert_one({
            "text": text.strip(),
            "category": category,
            "submitted_at": datetime.now(timezone.utc).isoformat(),
        })

    def count(self) -> int:
        """Number of stored feedback entries."""
        return len(self._collection)

    def recent(self, limit: int = 10) -> list[dict]:
        """The most recent entries, newest first."""
        if limit <= 0:
            raise ValidationError(f"limit must be positive, got {limit}")
        return self._collection.find(
            {}, sort="submitted_at", descending=True, limit=limit).documents
