"""Label statistics: the data behind the result panel's bar chart.

"The view Label statistics summarizes the occurrence of land cover labels in
the retrieved images ... a bar chart that shows the number of occurrences of
each label present in the retrieval.  To facilitate the identification of
dominant land types ... we map each label to a predefined color" (paper,
Section 3.1, Figure 2-4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..bigearthnet.clc import get_nomenclature
from ..errors import ValidationError


@dataclass(frozen=True)
class LabelBar:
    """One bar of the chart: label, occurrence count, display color."""

    label: str
    count: int
    color: str


@dataclass
class LabelStatistics:
    """The full bar chart, sorted by descending count."""

    bars: list[LabelBar]
    total_images: int

    def __len__(self) -> int:
        return len(self.bars)

    def __iter__(self):
        return iter(self.bars)

    @property
    def labels(self) -> list[str]:
        return [bar.label for bar in self.bars]

    @property
    def counts(self) -> dict[str, int]:
        return {bar.label: bar.count for bar in self.bars}

    def dominant(self, top: int = 3) -> list[str]:
        """The ``top`` most frequent labels in the retrieval."""
        if top <= 0:
            raise ValidationError(f"top must be positive, got {top}")
        return [bar.label for bar in self.bars[:top]]

    def as_rows(self) -> list[tuple[str, int, str]]:
        """``(label, count, color)`` rows, chart-ready."""
        return [(bar.label, bar.count, bar.color) for bar in self.bars]


def label_statistics(documents: Iterable[Mapping]) -> LabelStatistics:
    """Aggregate label occurrences over metadata documents.

    Accepts any iterable of metadata documents (as returned by the search
    service); labels are read from ``properties.labels``.
    """
    nomenclature = get_nomenclature()
    counts: dict[str, int] = {}
    total = 0
    for doc in documents:
        total += 1
        labels = doc.get("properties", {}).get("labels", [])
        for label in labels:
            counts[label] = counts.get(label, 0) + 1
    bars = [
        LabelBar(label=label, count=count, color=nomenclature.color_of(label))
        for label, count in counts.items()
    ]
    bars.sort(key=lambda bar: (-bar.count, bar.label))
    return LabelStatistics(bars=bars, total_images=total)
