"""RGB rendering: Sentinel-2 bands -> displayable uint8 images.

"We acquire those images by combining the RGB bands" (paper, Section 3.2).
True-color composites use B04/B03/B02 with a percentile contrast stretch —
raw reflectances are dark and low-contrast, so linear min/max scaling wastes
the dynamic range on outliers.
"""

from __future__ import annotations

import numpy as np

from ..bigearthnet.patch import Patch, RGB_BANDS
from ..errors import ValidationError


def percentile_stretch(band: np.ndarray, lower: float = 2.0,
                       upper: float = 98.0) -> np.ndarray:
    """Linearly stretch ``[p_lower, p_upper]`` to ``[0, 1]``, clipping tails."""
    if not 0.0 <= lower < upper <= 100.0:
        raise ValidationError(f"need 0 <= lower < upper <= 100, got {lower}, {upper}")
    band = np.asarray(band, dtype=np.float64)
    lo, hi = np.percentile(band, [lower, upper])
    if hi - lo < 1e-12:
        return np.zeros_like(band)
    return np.clip((band - lo) / (hi - lo), 0.0, 1.0)


def render_rgb(patch: Patch, *, lower: float = 2.0, upper: float = 98.0) -> np.ndarray:
    """``(H, W, 3)`` uint8 true-color rendering of a patch."""
    channels = [percentile_stretch(patch.s2_bands[b], lower, upper) for b in RGB_BANDS]
    stacked = np.stack(channels, axis=-1)
    return (stacked * 255.0).round().astype(np.uint8)


def render_false_color(patch: Patch, *, lower: float = 2.0,
                       upper: float = 98.0) -> np.ndarray:
    """``(H, W, 3)`` uint8 false-color (NIR/red/green) rendering.

    The standard vegetation-emphasis composite; included because it is the
    second view EO analysts reach for when inspecting retrieval results.
    """
    nir = percentile_stretch(patch.s2_bands["B08"], lower, upper)
    red = percentile_stretch(patch.s2_bands["B04"], lower, upper)
    green = percentile_stretch(patch.s2_bands["B03"], lower, upper)
    stacked = np.stack([nir, red, green], axis=-1)
    return (stacked * 255.0).round().astype(np.uint8)
