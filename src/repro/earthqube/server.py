"""The EarthQube system facade: all three tiers bootstrapped and wired.

:meth:`EarthQube.bootstrap` stands up the whole demo system from one config:

1. generate the synthetic archive (data substitute for BigEarthNet),
2. create the MongoDB-style database with the paper's four collections and
   indexes, and ingest the archive,
3. extract features, train MiLaN, hash the archive, build the Hamming index,
4. expose the back-end services: :meth:`search`, :meth:`similar_images`,
   :meth:`similar_to_new_image`, :meth:`statistics_for`, :meth:`render`,
   :meth:`markers_for`, :meth:`new_cart`, :meth:`submit_feedback`.

Every method returns plain data (documents, arrays, dataclasses) — exactly
what the browser UI would render.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..bigearthnet.archive import SyntheticArchive
from ..bigearthnet.labels import LabelCharCodec
from ..bigearthnet.patch import Patch
from ..config import EarthQubeConfig, ServingConfig
from ..core.hasher import MiLaNHasher
from ..errors import UnknownPatchError, ValidationError
from ..features.extractor import FeatureExtractor
from ..obs import Observability
from ..planner import QueryPlanner
from ..store.database import Database, IMAGE_DATA, METADATA, RENDERED_IMAGES
from .cart import DownloadCart
from .cbir import CBIRService, SimilarityResponse
from .feedback import FeedbackService
from .ingest import decode_rendered_document, ingest_archive
from .markers import MarkerClusterer, markers_from_documents
from .query import QuerySpec
from .search import SearchResponse, SearchService
from .statistics import LabelStatistics, label_statistics


class EarthQube:
    """The assembled system (data tier + back-end services)."""

    def __init__(self, config: EarthQubeConfig, archive: SyntheticArchive,
                 db: Database, codec: LabelCharCodec, extractor: FeatureExtractor,
                 hasher: MiLaNHasher, cbir: CBIRService, features: np.ndarray) -> None:
        self.config = config
        self.archive = archive
        self.db = db
        self.codec = codec
        self.extractor = extractor
        self.hasher = hasher
        self.cbir = cbir
        self.features = features
        self.search_service = SearchService(db, codec)
        self.feedback_service = FeedbackService(db)
        # Let CBIR resolve QuerySpec filters against the metadata tier
        # (filtered-similarity pushdown).
        self.cbir.spec_resolver = self.row_filter_for
        # The optional serving tier (sharding + batching + caching); routed
        # to by search/similar_images when enabled.  See repro.serving.
        self.gateway = None
        # The optional durability tier; set by DurableEarthQube when it
        # attaches (WAL + checkpoints + crash recovery).  See
        # repro.earthqube.durability.
        self.durability = None
        # End-to-end query tracing + slow-query log + structured logs.  A
        # request on a thread that already carries a trace (a federation
        # scatter into this node) degrades to a child span, stitching the
        # node's work into the caller's tree.  See repro.obs.
        self.obs = Observability(config.obs)
        # The shared cost-based query planner (repro.planner): auto-loads
        # calibration.json when present (falling back to shipped default
        # units), reads live workload statistics, and is consulted by the
        # CBIR service, the serving gateway, and the federation facade so
        # every tier prices plans with the same units.
        self.planner = QueryPlanner.from_config(
            config.planner, workload=self.obs.workload)
        self.cbir.use_planner(self.planner)

    # ------------------------------------------------------------------ #
    # Bootstrap
    # ------------------------------------------------------------------ #

    @classmethod
    def bootstrap(cls, config: "EarthQubeConfig | None" = None,
                  *, store_images: bool = True, verbose: bool = False) -> "EarthQube":
        """Build the full system from a config (see class docstring)."""
        config = config or EarthQubeConfig()

        def log(message: str) -> None:
            if verbose:
                print(f"[earthqube] {message}")

        log(f"generating archive of {config.archive.num_patches} patches ...")
        archive = SyntheticArchive.generate(config.archive)
        codec = LabelCharCodec()

        log("ingesting into the data tier ...")
        db = Database.earthqube_schema(geo_precision=config.geo_index.precision)
        ingest_archive(db, archive, codec,
                       store_images=store_images, store_renders=store_images)

        log("extracting features ...")
        extractor = FeatureExtractor(config.features)
        features = extractor.extract_many(archive.patches)

        log("training MiLaN ...")
        hasher = MiLaNHasher(config.milan, config.train)
        hasher.fit(features, archive.label_matrix())

        log("hashing archive and building the Hamming index ...")
        cbir = CBIRService(hasher, extractor, config.index)
        cbir.build(archive.names, features)
        system = cls(config, archive, db, codec, extractor, hasher, cbir, features)
        if config.serving.enabled:
            log(f"enabling serving tier ({config.serving.num_shards} shards) ...")
            system.enable_serving()
        log("ready")
        return system

    def attach_database(self, db: Database) -> None:
        """Swap in a restored database and rewire every service bound to it.

        The durability tier's recovery path replaces the document store
        with one rebuilt from a checkpoint; the search/feedback services
        hold a reference to the old database and must be rebound in the
        same step or metadata queries would keep answering from pre-crash
        state.
        """
        self.db = db
        self.search_service = SearchService(db, self.codec)
        self.feedback_service = FeedbackService(db)
        self.cbir.spec_resolver = self.row_filter_for

    # ------------------------------------------------------------------ #
    # Serving tier (repro.serving): concurrent sharded query execution
    # ------------------------------------------------------------------ #

    def enable_serving(self, config: "ServingConfig | None" = None):
        """Route queries through a :class:`~repro.serving.ServingGateway`.

        Uses ``self.config.serving`` unless an explicit config is given.
        Returns the gateway (also available as ``self.gateway``).
        """
        from ..serving.gateway import ServingGateway

        if self.gateway is not None:
            self.gateway.close()
        self.gateway = ServingGateway(self, config)
        return self.gateway

    def disable_serving(self) -> None:
        """Tear down the serving tier and fall back to the direct path."""
        if self.gateway is not None:
            self.gateway.close()
            self.gateway = None

    # ------------------------------------------------------------------ #
    # Federation tier (repro.federation): multi-node scatter-gather
    # ------------------------------------------------------------------ #

    @staticmethod
    def federate(nodes: "dict[str, EarthQube]", config=None):
        """Assemble a :class:`~repro.federation.FederatedEarthQube`.

        ``nodes`` maps federation-unique node names to bootstrapped
        systems; ``config`` is an optional
        :class:`~repro.config.FederationConfig`.  Each node keeps its own
        serving tier (cache, batching, shards) — the federation scatters
        to it and merges deterministically across nodes.
        """
        from ..federation.facade import FederatedEarthQube

        return FederatedEarthQube(nodes, config)

    # ------------------------------------------------------------------ #
    # Query panel / result panel services
    # ------------------------------------------------------------------ #

    def search(self, spec: QuerySpec) -> SearchResponse:
        """Execute a query-panel search."""
        with self.obs.request("search", served=self.gateway is not None):
            if self.gateway is not None:
                return self.gateway.search(spec)
            return self.search_service.search(spec)

    def count(self, spec: QuerySpec) -> int:
        """Total number of image patches matching the query criteria."""
        return self.search_service.count(spec)

    def row_filter_for(self, spec: "QuerySpec | None"):
        """Resolve a metadata :class:`QuerySpec` to a CBIR row filter.

        Runs the spec through the search service's zero-copy name
        projection (pagination ignored — a filter selects *all* matching
        images) and maps the names onto index rows.  Returns ``None`` for
        ``spec=None`` so call sites can pass filters through untouched.
        """
        if spec is None:
            return None
        names = self.search_service.matching_names(spec)
        return self.cbir.make_filter(names, fingerprint=repr(spec))

    def similar_images(self, name: str, *, k: "int | None" = 10,
                       radius: "int | None" = None,
                       filter: "QuerySpec | None" = None) -> SimilarityResponse:
        """CBIR from an archive image (the result panel's 'retrieve similar
        images' button).

        ``filter`` joins a metadata query with the similarity search: only
        images matching the spec are ranked, with a cost-based pre-filter
        (masked scan) vs post-filter (over-fetch + refill) plan choice.
        """
        if radius is None and k is None:
            radius = self.config.index.hamming_radius
        with self.obs.request("similar", served=self.gateway is not None):
            if self.gateway is not None:
                return self.gateway.similar_images(name, k=k, radius=radius,
                                                   filter=filter)
            return self.cbir.query_by_name(name, k=k, radius=radius,
                                           filter=self.row_filter_for(filter))

    def similar_images_batch(self, names: "list[str]", *,
                             k: "int | None" = 10,
                             radius: "int | None" = None,
                             filter: "QuerySpec | None" = None,
                             ) -> list[SimilarityResponse]:
        """Batch CBIR: one ranked response per archive image name.

        Routed through the serving tier's batch pipeline when enabled;
        either way the responses are byte-identical to calling
        :meth:`similar_images` per name.  ``filter`` applies to the whole
        batch.
        """
        if radius is None and k is None:
            radius = self.config.index.hamming_radius
        names = list(names)
        with self.obs.request("similar_batch", queries=len(names),
                              served=self.gateway is not None):
            if self.gateway is not None:
                return self.gateway.similar_images_batch(
                    names, k=k, radius=radius, filter=filter)
            return self.cbir.query_batch(names, k=k, radius=radius,
                                         filter=self.row_filter_for(filter))

    def similar_to_new_image(self, patch: Patch, *, k: "int | None" = 10,
                             radius: "int | None" = None,
                             filter: "QuerySpec | None" = None) -> SimilarityResponse:
        """CBIR from an uploaded image (query-by-new-example)."""
        with self.obs.request("similar_new", served=self.gateway is not None):
            if self.gateway is not None:
                return self.gateway.similar_to_new_image(
                    patch, k=k, radius=radius, filter=filter)
            return self.cbir.query_by_patch(patch, k=k, radius=radius,
                                            filter=self.row_filter_for(filter))

    def documents_for(self, names: "list[str]") -> list[dict]:
        """Metadata documents for a list of patch names (ranked order kept)."""
        metadata = self.db[METADATA]
        return [metadata.get(name) for name in names]

    def statistics_for(self, documents_or_names) -> LabelStatistics:
        """Label statistics for search results or a list of names."""
        items = list(documents_or_names)
        if items and isinstance(items[0], str):
            items = self.documents_for(items)
        return label_statistics(items)

    def render(self, name: str) -> np.ndarray:
        """The stored RGB rendering of a patch as an (H, W, 3) uint8 array."""
        rendered = self.db[RENDERED_IMAGES]
        try:
            doc = rendered.get(name)
        except Exception:
            raise UnknownPatchError(f"no rendered image for {name!r}") from None
        return decode_rendered_document(doc)

    def render_many(self, names: "list[str]") -> dict[str, np.ndarray]:
        """Render up to ``max_rendered_images`` results on the map."""
        limit = self.config.max_rendered_images
        if len(names) > limit:
            names = names[:limit]
        return {name: self.render(name) for name in names}

    def markers_for(self, response: "SearchResponse | list[dict]",
                    zoom: "int | None" = None):
        """Markers (or cluster groups at a zoom level) for search results."""
        documents = response.documents if isinstance(response, SearchResponse) else response
        markers = markers_from_documents(documents)
        if zoom is None:
            return markers
        return MarkerClusterer(zoom).cluster(markers)

    def new_cart(self) -> DownloadCart:
        """A fresh download cart honoring the configured page limit."""
        return DownloadCart(page_limit=self.config.cart_page_limit)

    def submit_feedback(self, text: str, *, category: str = "comment") -> int:
        """Store anonymous user feedback."""
        return self.feedback_service.submit(text, category=category)

    # ------------------------------------------------------------------ #
    # Online ingestion (extension motivated by demo scenario 3)
    # ------------------------------------------------------------------ #

    def auto_label(self, patch: Patch, *, k: int = 10,
                   min_votes: "int | None" = None) -> list[str]:
        """Predict CLC labels for an unlabeled image by neighbour voting.

        The "automatic labeling process" the paper sketches: retrieve the
        ``k`` most similar archive images and keep every label that occurs
        in at least ``min_votes`` of them (default: half).
        """
        if k <= 0:
            raise ValidationError(f"k must be positive, got {k}")
        similar = self.cbir.query_by_patch(patch, k=k)
        documents = self.documents_for(similar.names)
        if not documents:
            return []
        threshold = min_votes if min_votes is not None else max(1, len(documents) // 2)
        from .statistics import label_statistics
        stats = label_statistics(documents)
        return [bar.label for bar in stats if bar.count >= threshold]

    def ingest_new_patch(self, patch: Patch, *, auto_label_if_missing: bool = True,
                         k: int = 10) -> dict:
        """Add a newly acquired image to the live system.

        Inserts the metadata/image/rendered documents, hashes the image, and
        updates the Hamming index in place — no rebuild.  When the patch
        carries no trusted labels and ``auto_label_if_missing`` is set, the
        neighbour-voting annotator supplies them first.

        Returns a summary dict (name, labels used, whether they were
        auto-assigned).
        """
        if patch.name in self.archive:
            raise ValidationError(f"patch {patch.name!r} already exists in the archive")
        auto_labeled = False
        labels = patch.labels
        if auto_label_if_missing:
            predicted = self.auto_label(patch, k=k)
            if predicted:
                labels = tuple(predicted)
                auto_labeled = True
        stored = Patch(
            name=patch.name, labels=labels, country=patch.country,
            bbox=patch.bbox, acquisition_date=patch.acquisition_date,
            season=patch.season, s2_bands=patch.s2_bands,
            s1_bands=patch.s1_bands)

        from .ingest import image_data_document, metadata_document, rendered_image_document
        self.db[METADATA].insert_one(metadata_document(stored, self.codec))
        if RENDERED_IMAGES in self.db and len(self.db[RENDERED_IMAGES]) > 0:
            self.db["image_data"].insert_one(image_data_document(stored))
            self.db[RENDERED_IMAGES].insert_one(rendered_image_document(stored))

        features = self.extractor.extract(stored)
        code = self.cbir.add_image(stored.name, features)
        if self.gateway is not None:
            self.gateway.on_ingest(stored.name, code)
        self.features = np.vstack([self.features, features[None, :]])
        self.archive.patches.append(stored)
        self.archive._by_name[stored.name] = stored
        self.archive._index_by_name[stored.name] = len(self.archive.patches) - 1
        return {"name": stored.name, "labels": list(labels),
                "auto_labeled": auto_labeled}

    # ------------------------------------------------------------------ #
    # Deletion / update lifecycle (the mutable-corpus workload)
    # ------------------------------------------------------------------ #

    def delete_image(self, name: str) -> dict:
        """Remove an image from the *whole* live system.

        One call removes the store documents (metadata, image data,
        rendering) *and* the retrieval code: after it returns, the image is
        gone from every query path — metadata search, similarity search
        (direct, serving-tier, and federated), statistics, rendering — and
        a persisted snapshot no longer contains it.  The pair is atomic:
        existence is validated before either side mutates, and neither
        removal can fail afterwards, so the store and the index can never
        disagree about the image.

        The index row is tombstoned (O(1)); once dead rows cross the
        configured threshold the row-aligned structures are compacted in
        one coordinated step (service + serving tier together).  The
        archive/features bookkeeping (training-side artifacts, not serving
        state) is O(N) per delete — acceptable because no query path
        touches it; only re-training iterates those rows.  Returns a
        summary dict (name, documents deleted, whether compaction ran).
        """
        if not self.cbir.has(name):
            raise UnknownPatchError(f"no indexed image named {name!r}")
        documents_deleted = self.db[METADATA].delete_one({"name": name})
        for collection_name in (IMAGE_DATA, RENDERED_IMAGES):
            if collection_name in self.db:
                documents_deleted += self.db[collection_name].delete_one(
                    {"name": name})
        self.cbir.remove_image(name)
        if self.gateway is not None:
            self.gateway.on_delete(name)
        if name in self.archive:
            position = self.archive.remove(name)
            if position < self.features.shape[0]:
                self.features = np.delete(self.features, position, axis=0)
        compacted = self.maybe_compact_index()
        return {"name": name, "documents_deleted": documents_deleted,
                "compacted": compacted}

    def update_image(self, name: str, features: np.ndarray) -> dict:
        """Re-embed an existing image from new features (reprocessed or
        corrected acquisition).

        The old code is tombstoned and the new one indexed under the same
        name — the image re-enters the insertion order at the end, exactly
        as if deleted and re-ingested — and the serving tier mirrors the
        swap.  Metadata documents are untouched (use the store's
        ``update_one`` for those).
        """
        if not self.cbir.has(name):
            raise UnknownPatchError(f"no indexed image named {name!r}")
        features = np.asarray(features, dtype=np.float64)
        code = self.cbir.update_image(name, features)
        if self.gateway is not None:
            self.gateway.on_update(name, code)
        if name in self.archive:
            position = self.archive.index_of(name)
            if (position < self.features.shape[0]
                    and self.features.shape[1] == features.shape[0]):
                self.features[position] = features
        compacted = self.maybe_compact_index()
        return {"name": name, "compacted": compacted}

    def compact_index(self) -> None:
        """Compact the retrieval tier now: drop tombstoned rows everywhere.

        The CBIR service and the serving tier renumber their rows in one
        coordinated step, so row-aligned filter masks never cross a layout
        boundary.  Query results are byte-identical before and after.
        """
        self.cbir.compact()
        if self.gateway is not None:
            self.gateway.on_compact()

    def maybe_compact_index(self) -> bool:
        """Run :meth:`compact_index` if the dead-row threshold is crossed."""
        if self.cbir.compaction_due():
            self.compact_index()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Replication: empty clones, shard export/import, digests
    # ------------------------------------------------------------------ #

    def empty_clone(self, *, serving: bool = False) -> "EarthQube":
        """A fresh data-less node sharing this system's trained models.

        Elastic-federation replicas must produce *bit-identical* hash
        codes, so the clone shares the trained hasher, the feature
        extractor, and the label codec by reference; everything data-bound
        (database, archive, CBIR index, feature matrix) starts empty and
        is populated by fan-out ingest or shard handoff.
        """
        db = Database.earthqube_schema(
            geo_precision=self.config.geo_index.precision)
        archive = SyntheticArchive.empty(self.config.archive)
        cbir = CBIRService(self.hasher, self.extractor, self.config.index)
        cbir.build([], np.empty((0, self.extractor.dimension)))
        features = np.empty((0, self.extractor.dimension))
        clone = type(self)(self.config, archive, db, self.codec,
                           self.extractor, self.hasher, cbir, features)
        if serving:
            clone.enable_serving()
        return clone

    def export_shard(self, names: "list[str]") -> dict:
        """Package patches for replication handoff: codes plus documents.

        Entries keep the caller's order — the importer relies on it to
        reproduce the global insertion sequence on the receiving node.
        """
        entries = []
        for name in names:
            code = self.cbir.code_of(name)
            documents: dict[str, dict] = {}
            for collection_name in (METADATA, IMAGE_DATA, RENDERED_IMAGES):
                if collection_name in self.db:
                    doc = self.db[collection_name].find_one({"name": name})
                    if doc is not None:
                        documents[collection_name] = doc
            entries.append({"name": name, "code": code, "documents": documents})
        return {"entries": entries, "num_bits": self.hasher.num_bits}

    def import_shard(self, shard: dict, *,
                     realign: "dict[str, int] | None" = None) -> dict:
        """Apply a shard produced by :meth:`export_shard` to this node.

        Idempotent per patch (an already-indexed name is skipped), so a
        retried handoff or a replayed WAL record converges.  ``realign``
        maps patch names to their federation-wide insertion sequence;
        when given, the index rows are re-sorted to that order afterwards
        (see :meth:`realign_index_rows` for why replicas must agree on
        row order).
        """
        num_bits = shard.get("num_bits")
        if num_bits is not None and int(num_bits) != self.hasher.num_bits:
            raise ValidationError(
                f"shard code width {num_bits} does not match this node's "
                f"{self.hasher.num_bits}")
        imported = 0
        for entry in shard["entries"]:
            name = entry["name"]
            if self.cbir.has(name):
                continue
            for collection_name, doc in entry["documents"].items():
                if collection_name in self.db and \
                        self.db[collection_name].find_one({"name": name}) is None:
                    self.db[collection_name].insert_one(dict(doc))
            code = self.cbir.add_code(name, np.asarray(entry["code"],
                                                       dtype=np.uint64))
            if self.gateway is not None:
                self.gateway.on_ingest(name, code)
            imported += 1
        if realign:
            self.realign_index_rows(realign)
        return {"imported": imported,
                "skipped": len(shard["entries"]) - imported}

    def realign_index_rows(self, seq_of: "dict[str, int]") -> bool:
        """Re-sort the CBIR rows to the global insertion-sequence order.

        kNN truncates each node's ranking at ``k`` using the local
        ``(distance, row)`` tie-break; replicas only produce byte-identical
        federated results when every node's local row order is a
        subsequence of the *global* insertion order.  Handoff into a
        non-empty node appends rows at the end and can interleave
        sequences — this rebuilds the rows sorted by ``seq_of[name]``
        (unknown names keep their relative position, after known ones).
        Returns whether a reorder was needed.
        """
        names, codes = self.cbir.indexed_items()

        def key(pair: "tuple[int, str]") -> "tuple[int, int]":
            position, name = pair
            seq = seq_of.get(name)
            return (0, seq) if seq is not None else (1, position)

        order = sorted(range(len(names)), key=lambda i: key((i, names[i])))
        if order == list(range(len(names))):
            return False
        reordered_names = [names[i] for i in order]
        reordered_codes = np.ascontiguousarray(codes[order])
        self.cbir.restore_state(reordered_names, reordered_codes,
                                np.ones(len(order), dtype=bool))
        if self.gateway is not None:
            self.gateway.on_compact()
        return True

    def shard_digest(self, names: "list[str]") -> str:
        """Content digest of this node's copies of ``names``.

        Anti-entropy read-repair compares this digest across replicas:
        equal digests mean every listed patch is present with identical
        code bits; a missing patch contributes an explicit marker so
        presence differences change the digest too.
        """
        digest = hashlib.blake2b(digest_size=16)
        for name in sorted(names):
            digest.update(name.encode("utf-8"))
            if self.cbir.has(name):
                digest.update(self.cbir.code_of(name).tobytes())
            else:
                digest.update(b"\x00missing")
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def describe(self) -> dict:
        """System summary (sizes, code length, index settings)."""
        summary = {
            "archive_patches": len(self.archive),
            "indexed_images": len(self.cbir),
            "index_dead_rows": self.cbir.dead_rows,
            "feature_dimension": self.extractor.dimension,
            "code_bits": self.hasher.num_bits,
            "hamming_radius": self.config.index.hamming_radius,
            "mih_tables": self.config.index.mih_tables,
            "collections": self.db.collection_names(),
            "metadata_documents": len(self.db[METADATA]),
        }
        summary["planner"] = self.planner.describe()
        summary["serving"] = (self.gateway.describe()
                              if self.gateway is not None else None)
        return summary
