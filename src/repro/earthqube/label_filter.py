"""The three label filtering operators (paper, Section 3.1).

* **Some** — "retrieves all relevant images that have at least one of the
  selected labels" (set intersection non-empty),
* **Exactly** — "returns images with the exact same labels as the selected
  ones" (set equality),
* **At least & more** — "retrieves images that have all the selected labels
  and potentially some additional ones" (superset).

Each operator is implemented three ways, all equivalent and cross-tested:

1. :meth:`LabelFilter.matches_names` — set algebra over full label strings
   (the naive path),
2. :meth:`LabelFilter.matches_chars` — single-character set algebra via the
   :class:`~repro.bigearthnet.labels.LabelCharCodec` (the paper's
   optimization, benchmarked against (1) in experiment E12),
3. :meth:`LabelFilter.store_query` — a document-store query that exploits
   the metadata indexes (used by the search service).
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping

from ..bigearthnet.labels import LabelCharCodec
from ..errors import ValidationError


class LabelOperator(enum.Enum):
    """The query panel's three label operators."""

    SOME = "some"
    EXACTLY = "exactly"
    AT_LEAST_AND_MORE = "at_least_and_more"


class LabelFilter:
    """A selection of labels plus an operator, applied three ways."""

    def __init__(self, labels: Iterable[str], operator: LabelOperator,
                 codec: "LabelCharCodec | None" = None) -> None:
        self.labels = tuple(dict.fromkeys(labels))  # de-dup, keep order
        if not self.labels:
            raise ValidationError("label filter needs at least one label")
        if not isinstance(operator, LabelOperator):
            raise ValidationError(f"operator must be a LabelOperator, got {operator!r}")
        self.operator = operator
        self.codec = codec or LabelCharCodec()
        self._selected_set = frozenset(self.labels)
        self._selected_chars = self.codec.encode(self.labels)

    # ------------------------------------------------------------------ #
    # Path 1: raw label-name strings
    # ------------------------------------------------------------------ #

    def matches_names(self, image_labels: Iterable[str]) -> bool:
        """Evaluate the operator over full label-name strings."""
        image_set = frozenset(image_labels)
        if self.operator is LabelOperator.SOME:
            return not self._selected_set.isdisjoint(image_set)
        if self.operator is LabelOperator.EXACTLY:
            return image_set == self._selected_set
        return self._selected_set <= image_set

    # ------------------------------------------------------------------ #
    # Path 2: char codec
    # ------------------------------------------------------------------ #

    def matches_chars(self, image_chars: str) -> bool:
        """Evaluate the operator over an encoded char string."""
        if self.operator is LabelOperator.SOME:
            return self.codec.intersects(image_chars, self._selected_chars)
        if self.operator is LabelOperator.EXACTLY:
            return self.codec.equals(image_chars, self._selected_chars)
        return self.codec.contains_all(image_chars, self._selected_chars)

    # ------------------------------------------------------------------ #
    # Path 3: store query
    # ------------------------------------------------------------------ #

    def store_query(self, *, use_codec: bool = True) -> Mapping[str, object]:
        """The document-store condition for this filter.

        With ``use_codec`` the *Exactly* operator becomes a single indexed
        string equality on ``properties.label_chars`` — the payoff of the
        paper's char mapping.  *Some* compiles to an indexed ``$in`` and
        *At least & more* to ``$all`` on the multikey label index.
        """
        if self.operator is LabelOperator.SOME:
            return {"properties.labels": {"$in": list(self.labels)}}
        if self.operator is LabelOperator.EXACTLY:
            if use_codec:
                return {"properties.label_chars": self._selected_chars}
            return {"$and": [
                {"properties.labels": {"$all": list(self.labels)}},
                {"properties.labels": {"$size": len(self.labels)}},
            ]}
        return {"properties.labels": {"$all": list(self.labels)}}
