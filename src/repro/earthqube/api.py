"""JSON-level request API: the back-end server's wire format.

"The back-end server provides the means to submit geospatial queries,
filter the images based on different search criteria, and perform CBIR.
To this end, EarthQube invokes different services that validate and process
the user query" (paper, Section 3.2).

:class:`EarthQubeAPI` is that validation/processing layer: it accepts plain
``dict`` requests (what an HTTP handler would deserialize), validates every
field into typed query objects, dispatches to the system services, and
returns plain JSON-compatible ``dict`` responses.  All validation failures
surface as structured error responses instead of exceptions, mirroring a
well-behaved HTTP 400.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..errors import ReproError, ValidationError
from ..geo.bbox import BoundingBox
from ..geo.shapes import Circle, Polygon, Rectangle, Shape
from .label_filter import LabelOperator
from .query import QuerySpec
from .server import EarthQube

_OPERATORS = {op.value: op for op in LabelOperator}


def _parse_shape(payload: "Mapping[str, Any] | None") -> "Shape | None":
    """Parse the query panel's shape payload.

    Formats (mirroring the coordinates subsection / drawn shapes):
      {"type": "rectangle", "west": .., "south": .., "east": .., "north": ..}
      {"type": "circle", "lon": .., "lat": .., "radius_km": ..}
      {"type": "polygon", "coordinates": [[lon, lat], ...]}
    """
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise ValidationError("shape must be an object")
    kind = payload.get("type")
    if kind == "rectangle":
        try:
            return Rectangle(BoundingBox(
                west=float(payload["west"]), south=float(payload["south"]),
                east=float(payload["east"]), north=float(payload["north"])))
        except KeyError as missing:
            raise ValidationError(f"rectangle shape is missing {missing}") from None
    if kind == "circle":
        try:
            return Circle(lon=float(payload["lon"]), lat=float(payload["lat"]),
                          radius_km=float(payload["radius_km"]))
        except KeyError as missing:
            raise ValidationError(f"circle shape is missing {missing}") from None
    if kind == "polygon":
        coords = payload.get("coordinates")
        if not isinstance(coords, (list, tuple)):
            raise ValidationError("polygon shape needs a coordinates list")
        return Polygon.from_coords(coords)
    raise ValidationError(
        f"unknown shape type {kind!r}; expected rectangle, circle, or polygon")


def parse_query_request(payload: Mapping[str, Any]) -> QuerySpec:
    """Validate a raw search request into a :class:`QuerySpec`."""
    if not isinstance(payload, Mapping):
        raise ValidationError("request body must be an object")
    unknown = set(payload) - {"shape", "date_from", "date_to", "seasons",
                              "satellites", "labels", "label_operator",
                              "limit", "skip"}
    if unknown:
        raise ValidationError(f"unknown request fields: {sorted(unknown)}")
    operator_name = payload.get("label_operator", "some")
    operator = _OPERATORS.get(operator_name)
    if operator is None:
        raise ValidationError(
            f"unknown label_operator {operator_name!r}; "
            f"expected one of {sorted(_OPERATORS)}")
    labels = payload.get("labels")
    return QuerySpec(
        shape=_parse_shape(payload.get("shape")),
        date_from=payload.get("date_from"),
        date_to=payload.get("date_to"),
        seasons=tuple(payload["seasons"]) if payload.get("seasons") else None,
        satellites=tuple(payload["satellites"]) if payload.get("satellites") else None,
        labels=tuple(labels) if labels else None,
        label_operator=operator,
        limit=payload.get("limit"),
        skip=payload.get("skip", 0),
    )


class EarthQubeAPI:
    """Dict-in/dict-out facade over a bootstrapped :class:`EarthQube`."""

    def __init__(self, system: EarthQube) -> None:
        self.system = system

    @staticmethod
    def _error(exc: Exception) -> dict:
        return {"ok": False, "error": type(exc).__name__, "message": str(exc)}

    def search(self, request: Mapping[str, Any]) -> dict:
        """POST /search — query-panel search."""
        try:
            spec = parse_query_request(request)
            response = self.system.search(spec)
        except ReproError as exc:
            return self._error(exc)
        return {
            "ok": True,
            "total_matches": response.total_matches,
            "plan": response.plan,
            "names": response.names,
            "documents": response.documents,
        }

    def similar(self, request: Mapping[str, Any]) -> dict:
        """POST /similar — CBIR from an archive image name."""
        try:
            if not isinstance(request, Mapping) or "name" not in request:
                raise ValidationError("similar request needs a 'name' field")
            k = request.get("k", 10)
            radius = request.get("radius")
            if radius is not None:
                result = self.system.similar_images(str(request["name"]),
                                                    k=None, radius=int(radius))
            else:
                result = self.system.similar_images(str(request["name"]), k=int(k))
        except ReproError as exc:
            return self._error(exc)
        return {
            "ok": True,
            "query": result.query_name,
            "radius_used": result.radius_used,
            "results": [{"name": str(r.item_id), "distance": r.distance}
                        for r in result.results],
        }

    def similar_batch(self, request: Mapping[str, Any]) -> dict:
        """POST /similar/batch — CBIR for many archive images in one call.

        Request: ``{"names": [...], "k": 10}`` or
        ``{"names": [...], "radius": 2}``.  The whole batch executes one
        coalesced index pass; the response carries one entry per name, in
        request order, each shaped exactly like a ``/similar`` response.
        """
        try:
            if not isinstance(request, Mapping):
                raise ValidationError("similar_batch request must be an object")
            names = request.get("names")
            if not isinstance(names, (list, tuple)) or not names:
                raise ValidationError(
                    "similar_batch request needs a non-empty 'names' list")
            k = request.get("k", 10)
            radius = request.get("radius")
            if radius is not None:
                responses = self.system.similar_images_batch(
                    [str(name) for name in names], k=None, radius=int(radius))
            else:
                responses = self.system.similar_images_batch(
                    [str(name) for name in names], k=int(k))
        except ReproError as exc:
            return self._error(exc)
        return {
            "ok": True,
            "count": len(responses),
            "queries": [{
                "query": response.query_name,
                "radius_used": response.radius_used,
                "results": [{"name": str(r.item_id), "distance": r.distance}
                            for r in response.results],
            } for response in responses],
        }

    def statistics(self, request: Mapping[str, Any]) -> dict:
        """POST /statistics — label statistics for a list of names."""
        try:
            names = request.get("names") if isinstance(request, Mapping) else None
            if not isinstance(names, (list, tuple)) or not names:
                raise ValidationError("statistics request needs a non-empty 'names' list")
            stats = self.system.statistics_for(list(names))
        except ReproError as exc:
            return self._error(exc)
        return {
            "ok": True,
            "total_images": stats.total_images,
            "bars": [{"label": b.label, "count": b.count, "color": b.color}
                     for b in stats],
        }

    def feedback(self, request: Mapping[str, Any]) -> dict:
        """POST /feedback — store anonymous feedback."""
        try:
            if not isinstance(request, Mapping) or "text" not in request:
                raise ValidationError("feedback request needs a 'text' field")
            self.system.submit_feedback(str(request["text"]),
                                        category=request.get("category", "comment"))
        except ReproError as exc:
            return self._error(exc)
        return {"ok": True}

    def describe(self) -> dict:
        """GET /describe — system summary."""
        return {"ok": True, **self.system.describe()}

    def metrics(self) -> dict:
        """GET /metrics — serving-tier observability snapshot.

        Latency percentiles, QPS, cache hit ratios, and shard occupancy
        when the serving tier is enabled; ``serving: null`` otherwise.
        """
        gateway = self.system.gateway
        if gateway is None:
            return {"ok": True, "serving": None}
        return {"ok": True, "serving": gateway.metrics_snapshot()}
